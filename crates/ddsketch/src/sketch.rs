//! The DDSketch itself (paper Section 2).

use crate::mapping::{IndexMapping, MappingKind};
use crate::store::{BinIter, Count, Store};
use sketch_core::{target_rank, MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// A quantile sketch with relative-error guarantees over all of ℝ.
///
/// Values are routed to one of three sub-structures (paper Section 2.2):
///
/// * positives → `positive` store, bucketed by `mapping.index(x)`;
/// * negatives → `negative` store, bucketed by `mapping.index(-x)` (so for
///   bounded stores, "collapses start from the highest indices" — use a
///   highest-collapsing store for `SN`);
/// * zero and anything smaller than the mapping's minimum indexable value
///   → an exact `zero_count` bucket.
///
/// The sketch additionally tracks `min`, `max`, and `sum` (the paper:
/// "like most sketch implementations, it is useful to keep separate track
/// of the minimum and maximum values") — exact on insert-only streams, and
/// kept tight through deletions by re-deriving the touched extreme from
/// the surviving buckets. That also lets quantile estimates be clamped
/// into `[min, max]` — a strict improvement that preserves the α guarantee
/// since the true quantile always lies in that interval.
///
/// Type parameters select the bucket-index scheme (`M`) and the backing
/// stores for the positive (`SP`) and negative (`SN`) halves; see the
/// [`crate::presets`] constructors for the standard combinations.
#[derive(Debug, Clone)]
pub struct DDSketch<M: IndexMapping, SP: Store, SN: Store<Count = SP::Count> = SP> {
    mapping: M,
    positive: SP,
    negative: SN,
    zero_count: SP::Count,
    min: f64,
    max: f64,
    sum: f64,
    scratch: Scratch,
}

/// Reusable buffers for [`DDSketch::add_slice`]: contents are transient
/// (cleared on every call), only the capacity persists, so repeated batch
/// ingestion allocates nothing in steady state.
#[derive(Debug, Default)]
struct Scratch {
    /// Positive values of the current batch.
    pos: Vec<f64>,
    /// Magnitudes of the negative values of the current batch.
    neg: Vec<f64>,
    /// Bucket indices computed by `IndexMapping::index_batch`.
    indices: Vec<i32>,
}

impl Clone for Scratch {
    /// Scratch contents are transient and its capacity is a private
    /// ingest-side optimization, so a cloned sketch starts with fresh
    /// (empty) buffers. This keeps snapshot clones — e.g. a concurrent
    /// shard copied under its lock — a pure bin copy.
    fn clone(&self) -> Self {
        Scratch::default()
    }
}

impl Scratch {
    /// Retained heap capacity, counted by [`DDSketch::memory_bytes`].
    fn heap_bytes(&self) -> usize {
        (self.pos.capacity() + self.neg.capacity()) * std::mem::size_of::<f64>()
            + self.indices.capacity() * std::mem::size_of::<i32>()
    }
}

/// Block width of the dense column walk: wide enough that the per-shard
/// slice additions vectorize, small enough that the block buffer lives in
/// L1 alongside the shard windows being summed.
const COLUMN_BLOCK: usize = 256;

/// One side's reusable dense-window buffer: `(borrowed counters, first
/// index)` pairs. Parked with a `'static` placeholder lifetime between
/// calls — the buffer is always **empty** at rest, so no borrow actually
/// outlives the call that pushed it.
type WindowBuf = Vec<(&'static [u64], i64)>;

/// Re-lifetime an **empty** dense-window buffer so its capacity can be
/// reused for the current call's borrows (and parked again afterwards).
fn recycle_windows<'dst>(mut buf: Vec<(&[u64], i64)>) -> Vec<(&'dst [u64], i64)> {
    buf.clear();
    // SAFETY: the vector was just emptied, so no `&'src [u64]` value is
    // reinterpreted at the new lifetime; `Vec<(&[u64], i64)>` has one
    // layout regardless of the slice lifetime (lifetimes are erased at
    // monomorphization), so only the allocation's capacity crosses over.
    unsafe { std::mem::transmute(buf) }
}

/// Reusable buffers for [`DDSketch::merged_quantiles_into`] (and its
/// [`crate::AnyDDSketch`] counterpart): holding one of these across calls
/// makes repeated merged-quantile walks over dense-store sketches
/// allocation-free at steady state — the backbone of the sliding-window
/// read path, where a p99 is asked of the same window shape every tick.
///
/// Contents are transient (cleared on every call); only capacity persists.
/// Sparse-store walks keep their per-call iterator allocations and ignore
/// the window buffers.
#[derive(Debug, Default)]
pub struct MergedQuantileScratch {
    /// Requested-quantile slots in ascending-rank visit order.
    order: Vec<usize>,
    /// Dense counter windows for the positive-store walk.
    pos_windows: WindowBuf,
    /// Dense counter windows for the negative-store walk.
    neg_windows: WindowBuf,
}

/// Monotone cursor over the (virtual) merge of several stores' bins: a
/// k-way walk that answers ascending rank queries with the effective
/// bucket index the materialized merge would report, without building it.
///
/// `descending = false` walks bins in ascending index order (the
/// positive-store walk); `descending = true` walks them in descending
/// order (the negative-store walk from the most negative value). The
/// clamp maps each raw index to the bucket a real merge would fold it
/// into ([`Store::merge_clamp`]); clamping is monotone, so sub-bins of
/// one effective bucket are always consumed consecutively and the
/// cumulative-count stopping rule matches the merged store's
/// `key_at_rank` exactly.
///
/// Two strategies behind one face: all-dense shard sets (the contiguous
/// store families) walk **columns** — per-block vectorized slice sums of
/// the shards' borrowed counter windows, the same arithmetic a
/// materialized merge would do but with no allocation, no store
/// bookkeeping, and early exit at the last requested rank. Sparse (or
/// mixed) sets fall back to a per-bin smallest/largest-head scan, which
/// is proportional to *non-empty* bins — exactly the regime sparse
/// stores are chosen for.
// The size gap between variants is deliberate: the cursor is a
// short-lived stack local of the quantile walk, and boxing the dense
// variant would put an allocation on the hot read path.
#[allow(clippy::large_enum_variant)]
enum KWayRankCursor<'a> {
    Dense(DenseColumnCursor<'a>),
    /// The heads walk plus the (empty) window buffer it was handed, so
    /// the buffer's capacity can be recovered by the caller's scratch.
    Generic(GenericRankCursor<BinIter<'a>>, Vec<(&'a [u64], i64)>),
}

impl<'a> KWayRankCursor<'a> {
    /// Build a cursor over `stores`' bins. The shards of one merge share a
    /// store type, so their iterators share a `BinIter` variant; only the
    /// dense families take the column walk, whose borrowed counter windows
    /// land in `windows` — a reusable scratch buffer, so the dense path
    /// performs **no** heap allocation. Sparse (or mixed-orientation) sets
    /// fall back to the per-bin heads walk, which allocates its iterator
    /// and head vectors.
    fn for_stores<S: Store<Count = u64> + 'a>(
        stores: impl Iterator<Item = &'a S> + Clone,
        descending: bool,
        clamp: (i32, i32),
        mut windows: Vec<(&'a [u64], i64)>,
    ) -> Self {
        windows.clear();
        let mut mirrored: Option<bool> = None;
        let mut all_dense = true;
        for store in stores.clone() {
            let (counts, first, is_mirrored) = match store.bin_iter() {
                BinIter::Dense { counts, first } => (counts, first, false),
                BinIter::DenseNeg { counts, first } => (counts, first, true),
                BinIter::Sparse(_) => {
                    all_dense = false;
                    break;
                }
            };
            if counts.is_empty() {
                continue;
            }
            if *mirrored.get_or_insert(is_mirrored) != is_mirrored {
                all_dense = false;
                break;
            }
            windows.push((counts, first));
        }
        if all_dense {
            KWayRankCursor::Dense(DenseColumnCursor::new(
                windows,
                mirrored.unwrap_or(false),
                descending,
                clamp,
            ))
        } else {
            windows.clear();
            let iters: Vec<BinIter<'a>> = stores.map(|s| s.bin_iter()).collect();
            KWayRankCursor::Generic(GenericRankCursor::new(iters, descending, clamp), windows)
        }
    }

    /// Advance until the cumulative count exceeds `rank` (ranks must be
    /// presented in ascending order) and return the effective bucket index
    /// there — or stay on the last bucket when floating-point rounding
    /// pushes `rank` past the total, matching `key_at_rank`'s fallback.
    fn advance_to(&mut self, rank: f64) -> Option<i32> {
        match self {
            KWayRankCursor::Dense(cursor) => cursor.advance_to(rank),
            KWayRankCursor::Generic(cursor, _) => cursor.advance_to(rank),
        }
    }

    /// Hand the (emptied) dense-window buffer back for scratch reuse.
    fn recover_windows(self) -> Vec<(&'a [u64], i64)> {
        match self {
            KWayRankCursor::Dense(cursor) => {
                let mut windows = cursor.windows;
                windows.clear();
                windows
            }
            KWayRankCursor::Generic(_, windows) => windows,
        }
    }
}

/// The all-dense strategy: per-block column sums over the shards'
/// borrowed counter windows.
///
/// Walk order and index signs are normalized into *storage* coordinates:
/// a mirrored window (the highest-collapsing store's negated inner array)
/// reports index `-g` for storage index `g` and therefore walks storage
/// in the direction opposite to the requested output order.
struct DenseColumnCursor<'a> {
    windows: Vec<(&'a [u64], i64)>,
    /// Output index = `sign * storage index` (−1 for mirrored windows).
    sign: i64,
    /// Storage-order step per consumed column (+1 or −1).
    dir: i64,
    clamp: (i32, i32),
    /// Next storage index to consume.
    g: i64,
    /// Final storage index (inclusive) in walk direction.
    last: i64,
    exhausted: bool,
    /// Column sums for storage indices `[buf_lo, buf_lo + COLUMN_BLOCK)`.
    buf: [u64; COLUMN_BLOCK],
    buf_lo: i64,
    buf_filled: bool,
    cum: u64,
    cursor: Option<i32>,
}

impl<'a> DenseColumnCursor<'a> {
    fn new(
        windows: Vec<(&'a [u64], i64)>,
        mirrored: bool,
        descending: bool,
        clamp: (i32, i32),
    ) -> Self {
        // Output ascending walks plain windows upward and mirrored
        // windows downward; output descending mirrors both.
        let dir = match (mirrored, descending) {
            (false, false) | (true, true) => 1,
            (false, true) | (true, false) => -1,
        };
        let sign = if mirrored { -1 } else { 1 };
        let lo = windows.iter().map(|&(_, first)| first).min();
        let hi = windows
            .iter()
            .map(|&(counts, first)| first + counts.len() as i64 - 1)
            .max();
        let (g, last, exhausted) = match (lo, hi) {
            (Some(lo), Some(hi)) if dir > 0 => (lo, hi, false),
            (Some(lo), Some(hi)) => (hi, lo, false),
            _ => (0, 0, true),
        };
        Self {
            windows,
            sign,
            dir,
            clamp,
            g,
            last,
            exhausted,
            buf: [0; COLUMN_BLOCK],
            buf_lo: 0,
            buf_filled: false,
            cum: 0,
            cursor: None,
        }
    }

    /// Sum every shard's overlap with the block containing `g` (aligned
    /// so the block extends in walk direction) — contiguous slice adds,
    /// the vectorizable core of the walk.
    fn fill_block(&mut self, g: i64) {
        let lo = if self.dir > 0 {
            g
        } else {
            g - (COLUMN_BLOCK as i64 - 1)
        };
        self.buf = [0; COLUMN_BLOCK];
        for &(counts, first) in &self.windows {
            let overlap_lo = lo.max(first);
            let overlap_hi = (lo + COLUMN_BLOCK as i64).min(first + counts.len() as i64);
            if overlap_lo < overlap_hi {
                let dst = (overlap_lo - lo) as usize..(overlap_hi - lo) as usize;
                let src = (overlap_lo - first) as usize..(overlap_hi - first) as usize;
                for (d, s) in self.buf[dst].iter_mut().zip(&counts[src]) {
                    *d += s;
                }
            }
        }
        self.buf_lo = lo;
        self.buf_filled = true;
    }

    fn advance_to(&mut self, rank: f64) -> Option<i32> {
        while (self.cum as f64) <= rank && !self.exhausted {
            if !self.buf_filled
                || self.g < self.buf_lo
                || self.g >= self.buf_lo + COLUMN_BLOCK as i64
            {
                self.fill_block(self.g);
            }
            // Consume columns inside the current block.
            loop {
                let column = self.buf[(self.g - self.buf_lo) as usize];
                if column > 0 {
                    self.cum += column;
                    let out = (self.sign * self.g) as i32;
                    self.cursor = Some(out.clamp(self.clamp.0, self.clamp.1));
                }
                if self.g == self.last {
                    self.exhausted = true;
                    break;
                }
                self.g += self.dir;
                if (self.cum as f64) > rank
                    || self.g < self.buf_lo
                    || self.g >= self.buf_lo + COLUMN_BLOCK as i64
                {
                    break;
                }
            }
        }
        self.cursor
    }
}

/// The fallback strategy: per-bin smallest/largest-head scan across any
/// double-ended bin iterators (store [`BinIter`]s for live shards, the
/// codec's `ViewBinIter`s for encoded payloads — the mixed-source walk in
/// [`crate::codec`] instantiates it over an either-enum of both).
pub(crate) struct GenericRankCursor<I> {
    iters: Vec<I>,
    heads: Vec<Option<(i32, u64)>>,
    descending: bool,
    clamp: (i32, i32),
    cum: u64,
    cursor: Option<i32>,
}

impl<I: DoubleEndedIterator<Item = (i32, u64)>> GenericRankCursor<I> {
    fn new(iters: Vec<I>, descending: bool, clamp: (i32, i32)) -> Self {
        let heads = Vec::with_capacity(iters.len());
        Self::with_buffers(iters, heads, descending, clamp)
    }

    /// Build the cursor on caller-provided buffers (`heads` is cleared and
    /// refilled), so a scratch-reusing walk performs no allocation.
    pub(crate) fn with_buffers(
        mut iters: Vec<I>,
        mut heads: Vec<Option<(i32, u64)>>,
        descending: bool,
        clamp: (i32, i32),
    ) -> Self {
        heads.clear();
        heads.extend(iters.iter_mut().map(|iter| {
            if descending {
                iter.next_back()
            } else {
                iter.next()
            }
        }));
        Self {
            iters,
            heads,
            descending,
            clamp,
            cum: 0,
            cursor: None,
        }
    }

    /// Hand the (emptied) buffers back for scratch reuse.
    pub(crate) fn into_buffers(self) -> (Vec<I>, Vec<Option<(i32, u64)>>) {
        let (mut iters, mut heads) = (self.iters, self.heads);
        iters.clear();
        heads.clear();
        (iters, heads)
    }

    pub(crate) fn advance_to(&mut self, rank: f64) -> Option<i32> {
        while (self.cum as f64) <= rank {
            let mut best: Option<usize> = None;
            for (k, head) in self.heads.iter().enumerate() {
                if let Some((idx, _)) = *head {
                    best = Some(match best {
                        None => k,
                        Some(b) => {
                            let (best_idx, _) = self.heads[b].expect("best head is live");
                            let take = if self.descending {
                                idx > best_idx
                            } else {
                                idx < best_idx
                            };
                            if take {
                                k
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            let Some(k) = best else { break };
            let (idx, count) = self.heads[k].take().expect("best head is live");
            self.heads[k] = if self.descending {
                self.iters[k].next_back()
            } else {
                self.iters[k].next()
            };
            self.cum += count;
            self.cursor = Some(idx.clamp(self.clamp.0, self.clamp.1));
        }
        self.cursor
    }
}

/// The decayed-read counterpart of [`KWayRankCursor`]: the same two
/// strategies (vectorized dense column walk / per-bin heads walk), with
/// every shard's cumulative counts scaled by a caller-supplied weight —
/// the sliding-window plane's "recent-biased" read path, where slot
/// sketches age at query time. Weights are query-time data: nothing in
/// the shards is mutated, copied, or re-bucketed. The dense column
/// strategy matters just as much here: a 3600-slot decayed window walks
/// 3600 shards, and an O(shards)-per-bin heads scan would turn a
/// sub-millisecond read into seconds.
#[allow(clippy::large_enum_variant)]
enum WeightedRankCursor<'a> {
    Dense(WeightedColumnCursor<'a>),
    Generic(WeightedHeadsCursor<'a>),
}

impl<'a> WeightedRankCursor<'a> {
    fn new(
        sources: impl Iterator<Item = (BinIter<'a>, f64)> + Clone,
        descending: bool,
        clamp: (i32, i32),
    ) -> Self {
        let mut windows: Vec<(&[u64], i64, f64)> = Vec::new();
        let mut mirrored: Option<bool> = None;
        let mut all_dense = true;
        for (iter, weight) in sources.clone() {
            let (counts, first, is_mirrored) = match iter {
                BinIter::Dense { counts, first } => (counts, first, false),
                BinIter::DenseNeg { counts, first } => (counts, first, true),
                BinIter::Sparse(_) => {
                    all_dense = false;
                    break;
                }
            };
            if counts.is_empty() {
                continue;
            }
            if *mirrored.get_or_insert(is_mirrored) != is_mirrored {
                all_dense = false;
                break;
            }
            windows.push((counts, first, weight));
        }
        if all_dense {
            WeightedRankCursor::Dense(WeightedColumnCursor::new(
                windows,
                mirrored.unwrap_or(false),
                descending,
                clamp,
            ))
        } else {
            WeightedRankCursor::Generic(WeightedHeadsCursor::new(sources, descending, clamp))
        }
    }

    fn advance_to(&mut self, rank: f64) -> Option<i32> {
        match self {
            WeightedRankCursor::Dense(cursor) => cursor.advance_to(rank),
            WeightedRankCursor::Generic(cursor) => cursor.advance_to(rank),
        }
    }
}

/// Weighted variant of [`DenseColumnCursor`]: per-block column sums of
/// `weight × count` over the shards' borrowed counter windows. For
/// integer weights the f64 sums are exact, so the walk is bit-identical
/// to an unweighted walk over weight-many copies of each shard.
struct WeightedColumnCursor<'a> {
    windows: Vec<(&'a [u64], i64, f64)>,
    sign: i64,
    dir: i64,
    clamp: (i32, i32),
    g: i64,
    last: i64,
    exhausted: bool,
    buf: [f64; COLUMN_BLOCK],
    buf_lo: i64,
    buf_filled: bool,
    cum: f64,
    cursor: Option<i32>,
}

impl<'a> WeightedColumnCursor<'a> {
    fn new(
        windows: Vec<(&'a [u64], i64, f64)>,
        mirrored: bool,
        descending: bool,
        clamp: (i32, i32),
    ) -> Self {
        let dir = match (mirrored, descending) {
            (false, false) | (true, true) => 1,
            (false, true) | (true, false) => -1,
        };
        let sign = if mirrored { -1 } else { 1 };
        let lo = windows.iter().map(|&(_, first, _)| first).min();
        let hi = windows
            .iter()
            .map(|&(counts, first, _)| first + counts.len() as i64 - 1)
            .max();
        let (g, last, exhausted) = match (lo, hi) {
            (Some(lo), Some(hi)) if dir > 0 => (lo, hi, false),
            (Some(lo), Some(hi)) => (hi, lo, false),
            _ => (0, 0, true),
        };
        Self {
            windows,
            sign,
            dir,
            clamp,
            g,
            last,
            exhausted,
            buf: [0.0; COLUMN_BLOCK],
            buf_lo: 0,
            buf_filled: false,
            cum: 0.0,
            cursor: None,
        }
    }

    /// Weighted mirror of [`DenseColumnCursor::fill_block`].
    fn fill_block(&mut self, g: i64) {
        let lo = if self.dir > 0 {
            g
        } else {
            g - (COLUMN_BLOCK as i64 - 1)
        };
        self.buf = [0.0; COLUMN_BLOCK];
        for &(counts, first, weight) in &self.windows {
            let overlap_lo = lo.max(first);
            let overlap_hi = (lo + COLUMN_BLOCK as i64).min(first + counts.len() as i64);
            if overlap_lo < overlap_hi {
                let dst = (overlap_lo - lo) as usize..(overlap_hi - lo) as usize;
                let src = (overlap_lo - first) as usize..(overlap_hi - first) as usize;
                for (d, s) in self.buf[dst].iter_mut().zip(&counts[src]) {
                    *d += weight * *s as f64;
                }
            }
        }
        self.buf_lo = lo;
        self.buf_filled = true;
    }

    fn advance_to(&mut self, rank: f64) -> Option<i32> {
        while self.cum <= rank && !self.exhausted {
            if !self.buf_filled
                || self.g < self.buf_lo
                || self.g >= self.buf_lo + COLUMN_BLOCK as i64
            {
                self.fill_block(self.g);
            }
            loop {
                let column = self.buf[(self.g - self.buf_lo) as usize];
                if column > 0.0 {
                    self.cum += column;
                    let out = (self.sign * self.g) as i32;
                    self.cursor = Some(out.clamp(self.clamp.0, self.clamp.1));
                }
                if self.g == self.last {
                    self.exhausted = true;
                    break;
                }
                self.g += self.dir;
                if self.cum > rank
                    || self.g < self.buf_lo
                    || self.g >= self.buf_lo + COLUMN_BLOCK as i64
                {
                    break;
                }
            }
        }
        self.cursor
    }
}

/// Weighted fallback strategy for the sparse (or mixed) families: the
/// per-bin smallest/largest-head scan of [`GenericRankCursor`] with a
/// weighted cumulative count.
struct WeightedHeadsCursor<'a> {
    iters: Vec<BinIter<'a>>,
    weights: Vec<f64>,
    heads: Vec<Option<(i32, u64)>>,
    descending: bool,
    clamp: (i32, i32),
    cum: f64,
    cursor: Option<i32>,
}

impl<'a> WeightedHeadsCursor<'a> {
    fn new(
        sources: impl Iterator<Item = (BinIter<'a>, f64)>,
        descending: bool,
        clamp: (i32, i32),
    ) -> Self {
        let mut iters = Vec::new();
        let mut weights = Vec::new();
        let mut heads = Vec::new();
        for (mut iter, weight) in sources {
            heads.push(if descending {
                iter.next_back()
            } else {
                iter.next()
            });
            iters.push(iter);
            weights.push(weight);
        }
        Self {
            iters,
            weights,
            heads,
            descending,
            clamp,
            cum: 0.0,
            cursor: None,
        }
    }

    fn advance_to(&mut self, rank: f64) -> Option<i32> {
        while self.cum <= rank {
            let mut best: Option<usize> = None;
            for (k, head) in self.heads.iter().enumerate() {
                if let Some((idx, _)) = *head {
                    best = Some(match best {
                        None => k,
                        Some(b) => {
                            let (best_idx, _) = self.heads[b].expect("best head is live");
                            let take = if self.descending {
                                idx > best_idx
                            } else {
                                idx < best_idx
                            };
                            if take {
                                k
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            let Some(k) = best else { break };
            let (idx, count) = self.heads[k].take().expect("best head is live");
            self.heads[k] = if self.descending {
                self.iters[k].next_back()
            } else {
                self.iters[k].next()
            };
            self.cum += self.weights[k] * count as f64;
            self.cursor = Some(idx.clamp(self.clamp.0, self.clamp.1));
        }
        self.cursor
    }
}

/// The count-generic surface: everything here works for any store count
/// type ([`Count`]), so a `u64`-counted sketch and an `f64`-counted
/// (weighted) sketch share one implementation. The `u64`-specific block
/// below keeps the historical integer-count API bit-identical.
impl<M: IndexMapping, SP: Store, SN: Store<Count = SP::Count>> DDSketch<M, SP, SN> {
    /// Assemble a sketch from a mapping and two (empty) stores.
    pub fn from_parts(mapping: M, positive: SP, negative: SN) -> Self {
        Self {
            mapping,
            positive,
            negative,
            zero_count: SP::Count::ZERO,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            scratch: Scratch::default(),
        }
    }

    /// The index mapping in use.
    pub fn mapping(&self) -> &M {
        &self.mapping
    }

    /// The relative accuracy `α` guaranteed for quantiles backed by
    /// non-collapsed buckets.
    pub fn relative_accuracy(&self) -> f64 {
        self.mapping.relative_accuracy()
    }

    /// Insert `count` occurrences of `value` in O(1), where `count` is
    /// whatever the stores count in — a `u64` multiplicity or, for the
    /// weighted (`f64`-counted) configurations, a fractional weight.
    ///
    /// For integer counts this is **bit-identical** to `count` repeated
    /// [`Self::add`] calls (property-tested across every preset and both
    /// count types). Invalid counts — NaN, infinite, or negative `f64`
    /// weights — are rejected with `InvalidConfig` before any state
    /// changes; a zero count is an accepted no-op.
    pub fn add_with_count(&mut self, value: f64, count: SP::Count) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if !count.is_valid() {
            return Err(SketchError::InvalidConfig(format!(
                "count must be finite and non-negative, got {count:?}"
            )));
        }
        if count == SP::Count::ZERO {
            return Ok(());
        }
        let magnitude = value.abs();
        if magnitude > self.mapping.max_indexable_value() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if magnitude < self.mapping.min_indexable_value() {
            // Within floating-point distance of zero (paper §2.2): exact
            // zero bucket.
            self.zero_count += count;
        } else if value > 0.0 {
            self.positive.add_n(self.mapping.index(value), count);
        } else {
            self.negative.add_n(self.mapping.index(magnitude), count);
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value * count.to_f64();
        Ok(())
    }

    /// Bulk-insert `(value, count)` pairs through [`Self::add_with_count`].
    ///
    /// The whole batch is validated up front, so a rejected pair (NaN or
    /// out-of-range value, invalid count) leaves the sketch exactly as it
    /// was — the weighted counterpart of [`Self::add_slice`]'s atomicity.
    pub fn add_weighted_slice(&mut self, pairs: &[(f64, SP::Count)]) -> Result<(), SketchError> {
        let max_indexable = self.mapping.max_indexable_value();
        for &(value, count) in pairs {
            let magnitude = value.abs();
            // Negated comparison (rather than `>`) so NaN also lands here.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(magnitude <= max_indexable) {
                return Err(SketchError::UnsupportedValue(value));
            }
            if !count.is_valid() {
                return Err(SketchError::InvalidConfig(format!(
                    "count must be finite and non-negative, got {count:?}"
                )));
            }
        }
        for &(value, count) in pairs {
            self.add_with_count(value, count)?;
        }
        Ok(())
    }

    /// Subtract `other`'s contents bucket-by-bucket, flooring every bucket
    /// at zero ([`Store::remove_up_to`]) — the bulk generalization of
    /// [`Self::delete`] for weighted/decayed planes, where a whole interval
    /// sketch is retired from a running aggregate at once.
    ///
    /// `sum` is adjusted by each removed bucket's representative value (it
    /// is α-approximate after subtraction, exactly as after collapses);
    /// `min`/`max` are re-tightened to the surviving buckets' bounds, and
    /// subtracting to empty resets the summary state entirely.
    ///
    /// # Errors
    ///
    /// `IncompatibleMerge` when the mappings cannot merge; the check runs
    /// before any mutation.
    pub fn sub_sketch(&mut self, other: &Self) -> Result<(), SketchError> {
        if !self.mapping.is_mergeable_with(&other.mapping) {
            return Err(SketchError::IncompatibleMerge(format!(
                "mapping {} (α={}) vs {} (α={})",
                self.mapping.name(),
                self.mapping.relative_accuracy(),
                other.mapping.name(),
                other.mapping.relative_accuracy()
            )));
        }
        let mut removed_sum = 0.0;
        for (idx, count) in other.positive.bin_iter() {
            let removed = self.positive.remove_up_to(idx, count);
            removed_sum += self.mapping.value(idx) * removed.to_f64();
        }
        for (idx, count) in other.negative.bin_iter() {
            let removed = self.negative.remove_up_to(idx, count);
            removed_sum -= self.mapping.value(idx) * removed.to_f64();
        }
        self.zero_count = self.zero_count.sub_clamped(other.zero_count);
        self.sum -= removed_sum;
        if self.is_empty() {
            // Fully drained: drop every summary so the next add is exact
            // again (mirroring delete-to-empty).
            self.min = f64::INFINITY;
            self.max = f64::NEG_INFINITY;
            self.sum = 0.0;
        } else {
            // Tighten-only: the surviving buckets' bounds are always valid
            // bounds on the remaining data.
            self.min = self.min.max(self.surviving_lower_bound());
            self.max = self.max.min(self.surviving_upper_bound());
        }
        Ok(())
    }

    /// Scale every stored count by `factor` — ingest-time exponential
    /// decay ([`Store::scale_counts`]). `u64` counts round to nearest (a
    /// bucket decaying below half an occurrence empties); `f64` counts
    /// scale exactly. `sum` scales with the counts; `min`/`max` are
    /// unchanged while data survives (decay does not move the support),
    /// and scaling to empty resets the summary state.
    ///
    /// # Errors
    ///
    /// `InvalidConfig` for a NaN, infinite, or negative factor.
    pub fn scale_counts(&mut self, factor: f64) -> Result<(), SketchError> {
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(SketchError::InvalidConfig(format!(
                "scale factor must be finite and non-negative, got {factor}"
            )));
        }
        self.positive.scale_counts(factor);
        self.negative.scale_counts(factor);
        self.zero_count = self.zero_count.scale(factor);
        self.sum *= factor;
        if self.is_empty() {
            self.min = f64::INFINITY;
            self.max = f64::NEG_INFINITY;
            self.sum = 0.0;
        } else {
            self.min = self.min.max(self.surviving_lower_bound());
            self.max = self.max.min(self.surviving_upper_bound());
        }
        Ok(())
    }

    /// Total stored weight as `f64`: the count-type-agnostic form of
    /// [`DDSketch::count`] (exact for integer counts below 2⁵³).
    pub fn weighted_count(&self) -> f64 {
        self.zero_count.to_f64()
            + self.positive.total_count().to_f64()
            + self.negative.total_count().to_f64()
    }

    /// Weight in the exact zero bucket, in the stores' count type (the
    /// count-generic form of [`DDSketch::zero_count`]).
    pub fn zero_weight(&self) -> SP::Count {
        self.zero_count
    }

    /// Whether the sketch holds no data.
    pub fn is_empty(&self) -> bool {
        self.zero_count == SP::Count::ZERO
            && self.positive.total_count() == SP::Count::ZERO
            && self.negative.total_count() == SP::Count::ZERO
    }

    /// Exact sum of inserted values (weighted).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact weighted mean, or `None` if empty.
    pub fn average(&self) -> Option<f64> {
        let n = self.weighted_count();
        (n > 0.0).then(|| self.sum / n)
    }

    /// The tracked minimum: exact for insert-only streams. After a
    /// [`Self::delete`] at the minimum it is re-tightened to the surviving
    /// buckets' lower bound, so it is always a valid lower bound within
    /// one bucket's relative error of the true surviving minimum — never a
    /// fully-deleted value.
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// The tracked maximum: exact for insert-only streams; after deletions
    /// a tight upper bound (see [`Self::min`] for the symmetric contract).
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Number of non-empty buckets across both stores plus the zero bucket
    /// (the "bins" of the paper's Figure 7).
    pub fn num_bins(&self) -> usize {
        self.positive.num_bins()
            + self.negative.num_bins()
            + usize::from(self.zero_count > SP::Count::ZERO)
    }

    /// Whether any store has collapsed buckets, i.e. whether the lowest
    /// quantiles may no longer carry the α guarantee (Proposition 4).
    pub fn has_collapsed(&self) -> bool {
        self.positive.has_collapsed() || self.negative.has_collapsed()
    }

    /// A lower bound on the smallest value still stored, from the
    /// surviving buckets: the most-negative bucket's magnitude bound, the
    /// exact zero bucket, or the lowest positive bucket's lower edge.
    fn surviving_lower_bound(&self) -> f64 {
        if let Some(idx) = self.negative.max_index() {
            -self.mapping.upper_bound(idx)
        } else if self.zero_count > SP::Count::ZERO {
            0.0
        } else if let Some(idx) = self.positive.min_index() {
            self.mapping.lower_bound(idx)
        } else {
            f64::INFINITY
        }
    }

    /// Mirror of [`Self::surviving_lower_bound`]: an upper bound on the
    /// largest value still stored.
    fn surviving_upper_bound(&self) -> f64 {
        if let Some(idx) = self.positive.max_index() {
            self.mapping.upper_bound(idx)
        } else if self.zero_count > SP::Count::ZERO {
            0.0
        } else if let Some(idx) = self.negative.min_index() {
            -self.mapping.lower_bound(idx)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Merge another sketch into this one (Algorithm 4). Bucket-exact: the
    /// result is identical to a single sketch over the union of the inputs.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        self.merge_many(&[other])
    }

    /// Merge any number of compatible sketches into this one in a single
    /// k-way pass.
    ///
    /// Equivalent — bins, count, `sum`, `min`, `max`, and the collapse
    /// flag, all bit-identical — to folding [`Self::merge_from`] over
    /// `others` in order, but each store makes its capacity and collapse
    /// decisions **once** for the whole union ([`Store::merge_many`]): one
    /// reallocation and at most one fold instead of up to k of each. This
    /// is the aggregation-plane workhorse behind shard snapshots and
    /// time-series rollups.
    ///
    /// # Errors
    ///
    /// `IncompatibleMerge` if any sketch's mapping cannot merge with this
    /// one's; the check runs before any mutation, so a failed call leaves
    /// the sketch untouched.
    pub fn merge_many(&mut self, others: &[&Self]) -> Result<(), SketchError> {
        for other in others {
            if !self.mapping.is_mergeable_with(&other.mapping) {
                return Err(SketchError::IncompatibleMerge(format!(
                    "mapping {} (α={}) vs {} (α={})",
                    self.mapping.name(),
                    self.mapping.relative_accuracy(),
                    other.mapping.name(),
                    other.mapping.relative_accuracy()
                )));
            }
        }
        let positives: Vec<&SP> = others.iter().map(|s| &s.positive).collect();
        self.positive.merge_many(&positives);
        let negatives: Vec<&SN> = others.iter().map(|s| &s.negative).collect();
        self.negative.merge_many(&negatives);
        for other in others {
            self.zero_count += other.zero_count;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
            self.sum += other.sum;
        }
        Ok(())
    }

    /// Reset to empty, retaining allocations.
    pub fn clear(&mut self) {
        self.positive.clear();
        self.negative.clear();
        self.zero_count = SP::Count::ZERO;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.sum = 0.0;
    }

    /// Free the batched-ingestion scratch buffers.
    ///
    /// [`Self::add_slice`] retains its scratch capacity (proportional to
    /// the largest batch seen) so steady-state ingestion allocates
    /// nothing; that capacity is real resident memory and is counted by
    /// [`Self::memory_bytes`]. Call this when switching from ingestion to
    /// a query-only phase — or before measuring sketch size — to drop it.
    /// The buffers regrow transparently on the next `add_slice`.
    pub fn release_scratch(&mut self) {
        self.scratch = Scratch::default();
    }

    /// Structural memory footprint in bytes, including the batched-ingest
    /// scratch buffers (whose capacity persists across `add_slice` calls).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<SP>() - std::mem::size_of::<SN>()
            + self.positive.memory_bytes()
            + self.negative.memory_bytes()
            + self.scratch.heap_bytes()
    }

    /// Access the positive-value store (read-only; used by the codec and
    /// the evaluation harness).
    pub fn positive_store(&self) -> &SP {
        &self.positive
    }

    /// Access the negative-value store.
    pub fn negative_store(&self) -> &SN {
        &self.negative
    }

    /// Internal: merge decoded state into the live sketch — one bulk
    /// [`Store::add_bins`] pass per store (a single capacity/collapse
    /// decision each), with the summary statistics folded the way
    /// [`Self::merge_many`] folds them. This is how the codec's
    /// [`crate::codec::SketchView`]s are absorbed without ever
    /// materializing an intermediate sketch; empty-state sentinels
    /// (`min = +∞`, `max = −∞`, `sum = 0`) fold as no-ops.
    pub(crate) fn absorb_bins(
        &mut self,
        zero_count: SP::Count,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, SP::Count)],
        neg_bins: &[(i32, SP::Count)],
    ) {
        self.positive.add_bins(pos_bins);
        self.negative.add_bins(neg_bins);
        self.zero_count += zero_count;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
        self.sum += sum;
    }

    /// Internal: bulk-load decoded state. Used by the codec.
    pub(crate) fn load(
        &mut self,
        zero_count: SP::Count,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, SP::Count)],
        neg_bins: &[(i32, SP::Count)],
    ) {
        for &(i, c) in pos_bins.iter().rev() {
            self.positive.add_n(i, c);
        }
        for &(i, c) in neg_bins {
            self.negative.add_n(i, c);
        }
        self.zero_count = zero_count;
        self.min = min;
        self.max = max;
        self.sum = sum;
    }
}

/// The weighted quantile surface, available when the stores count in
/// `f64`: target ranks generalize from the paper's `q·(n − 1)` to
/// `q·(W − 1)` over the total stored weight `W`. For integral weights the
/// walk is bit-identical to the `u64` sketch's [`DDSketch::quantile`]
/// (property-tested), since the stores' cumulative counts are exact f64
/// integers.
impl<M: IndexMapping, SP: Store<Count = f64>, SN: Store<Count = f64>> DDSketch<M, SP, SN> {
    /// Estimate the q-quantile of the weighted multiset.
    pub fn weighted_quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        let total = self.weighted_count();
        if total <= 0.0 {
            return Err(SketchError::Empty);
        }
        let rank = q * (total - 1.0).max(0.0);
        let neg = self.negative.total_count();
        let raw = if rank < neg {
            // Walk the negative store from the most negative value, i.e.
            // from its largest |x| bucket index downward.
            let idx = self
                .negative
                .key_at_rank_descending(rank)
                .expect("negative store non-empty");
            -self.mapping.value(idx)
        } else if rank < neg + self.zero_count {
            0.0
        } else {
            let idx = self
                .positive
                .key_at_rank(rank - neg - self.zero_count)
                .expect("rank < total implies positive store non-empty");
            self.mapping.value(idx)
        };
        Ok(raw.clamp(self.min, self.max))
    }

    /// Estimate several quantiles of the weighted multiset; output order
    /// matches the input order.
    pub fn weighted_quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        qs.iter().map(|&q| self.weighted_quantile(q)).collect()
    }
}

/// The historical integer-count API: pinned to `u64`-counted stores so
/// every body — and therefore every bin, count, and sum it produces —
/// stays bit-identical to the pre-weighted implementation.
impl<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>> DDSketch<M, SP, SN> {
    /// Insert `count` occurrences of `value` in O(1).
    pub fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if count == 0 {
            return Ok(());
        }
        let magnitude = value.abs();
        if magnitude > self.mapping.max_indexable_value() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if magnitude < self.mapping.min_indexable_value() {
            // Within floating-point distance of zero (paper §2.2): exact
            // zero bucket.
            self.zero_count += count;
        } else if value > 0.0 {
            self.positive.add_n(self.mapping.index(value), count);
        } else {
            self.negative.add_n(self.mapping.index(magnitude), count);
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value * count as f64;
        Ok(())
    }

    /// Insert one occurrence of `value`.
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        self.add_n(value, 1)
    }

    /// Bulk-insert a batch of values — the fast path for high-throughput
    /// producers.
    ///
    /// The batch is ingested in three phases: (1) a single classification
    /// pass splits the values by sign into reusable scratch buffers while
    /// accumulating `sum`/`min`/`max` as running scalars, (2) each side's
    /// bucket indices are computed with one tight
    /// [`IndexMapping::index_batch`] loop, and (3) each store absorbs its
    /// side with one bulk [`Store::add_indices`] call that pays growth and
    /// collapse bookkeeping once per batch instead of once per value.
    ///
    /// The result is **bit-identical** to calling [`Self::add`] on every
    /// value in order (same bins, `count`, `sum`, `min`, `max`) — the
    /// equivalence is property-tested across every preset.
    ///
    /// # Errors
    ///
    /// If any value is NaN, ±∞, or beyond the mapping's indexable range,
    /// returns `UnsupportedValue` for the first such value and ingests
    /// **nothing**: the sketch is left exactly as it was. Callers that want
    /// skip-bad-values semantics should filter first (or use `extend`).
    pub fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        // Fast path: one fused pass computes every value's bucket index
        // *and* the running stats, with **deferred** validation — a NaN
        // anywhere poisons the running sum, and any value that is
        // negative, zero, subnormal, infinite, or beyond the indexable
        // range shows up in the batch extremes. The overwhelming common
        // case (all values strictly positive and indexable, e.g.
        // latencies) then needs no per-value branching and no copy: the
        // mapping indexes the input slice directly, and the min/max/sum
        // dependency chains execute in the shadow of the index math.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.indices.resize(values.len(), 0);
        let out = &mut scratch.indices[..values.len()];
        let (batch_min, batch_max, sum) = self.mapping.index_batch_stats(values, self.sum, out);
        if batch_min >= self.mapping.min_indexable_value()
            && batch_max <= self.mapping.max_indexable_value()
            && !sum.is_nan()
        {
            self.positive.add_indices(out);
            // Value-equal to folding each element into the running
            // extremes in stream order.
            self.min = self.min.min(batch_min);
            self.max = self.max.max(batch_max);
            self.sum = sum;
            self.scratch = scratch;
            return Ok(());
        }
        // The batch contains zeros, negatives, or unsupported values: the
        // speculative indices are meaningless — reclassify from scratch.
        self.scratch = scratch;
        self.add_slice_mixed(values)
    }

    /// Slow path for batches containing zeros, negatives, or values that
    /// need rejecting: validate + classify by sign into scratch buffers,
    /// touching no sketch state until the whole batch is known good.
    #[cold]
    fn add_slice_mixed(&mut self, values: &[f64]) -> Result<(), SketchError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.pos.clear();
        scratch.neg.clear();
        let max_indexable = self.mapping.max_indexable_value();
        let min_indexable = self.mapping.min_indexable_value();
        let mut zeros = 0u64;
        let (mut min, mut max, mut sum) = (self.min, self.max, self.sum);
        for &v in values {
            let magnitude = v.abs();
            // Negated comparison (rather than `>`) so NaN also lands here.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(magnitude <= max_indexable) {
                self.scratch = scratch;
                return Err(SketchError::UnsupportedValue(v));
            }
            if magnitude < min_indexable {
                zeros += 1;
            } else if v > 0.0 {
                scratch.pos.push(v);
            } else {
                scratch.neg.push(magnitude);
            }
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        // Batch-index each side, then one bulk store call per side.
        let widest = scratch.pos.len().max(scratch.neg.len());
        scratch.indices.resize(widest, 0);
        if !scratch.pos.is_empty() {
            let out = &mut scratch.indices[..scratch.pos.len()];
            self.mapping.index_batch(&scratch.pos, out);
            self.positive.add_indices(out);
        }
        if !scratch.neg.is_empty() {
            let out = &mut scratch.indices[..scratch.neg.len()];
            self.mapping.index_batch(&scratch.neg, out);
            self.negative.add_indices(out);
        }
        self.zero_count += zeros;
        self.min = min;
        self.max = max;
        self.sum = sum;
        self.scratch = scratch;
        Ok(())
    }

    /// Remove one previously-inserted occurrence of `value` (paper §2:
    /// "it is straightforward to insert items into this sketch as well as
    /// delete items").
    ///
    /// Returns `false` if the bucket `value` maps to holds no occurrences —
    /// which can happen legitimately after a collapse folded it away.
    /// `sum` is adjusted exactly. [`Self::min`]/[`Self::max`] stay honest:
    /// deleting at (or beyond) a tracked extreme re-tightens that extreme
    /// to the surviving buckets' bounds, deleting to empty resets the
    /// sketch's summary state entirely (so a later re-add starts exact),
    /// and the quantile clamp therefore can never pin an estimate to a
    /// fully-deleted extreme — only to a bound of data still present.
    pub fn delete(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        let magnitude = value.abs();
        let removed = if magnitude > self.mapping.max_indexable_value() {
            false
        } else if magnitude < self.mapping.min_indexable_value() {
            if self.zero_count > 0 {
                self.zero_count -= 1;
                true
            } else {
                false
            }
        } else if value > 0.0 {
            self.positive.remove_n(self.mapping.index(value), 1)
        } else {
            self.negative.remove_n(self.mapping.index(magnitude), 1)
        };
        if removed {
            self.sum -= value;
            if self.is_empty() {
                // Fully drained: drop every summary so the next add is
                // exact again (in particular, `sum` sheds any
                // floating-point residue of the add/delete sequence).
                self.min = f64::INFINITY;
                self.max = f64::NEG_INFINITY;
                self.sum = 0.0;
            } else {
                // The deleted value may have *been* the tracked extreme;
                // re-tighten from the surviving buckets (tighten-only:
                // the recomputed value is always a valid bound, within
                // one bucket of the true surviving extreme).
                if value <= self.min {
                    self.min = self.min.max(self.surviving_lower_bound());
                }
                if value >= self.max {
                    self.max = self.max.min(self.surviving_upper_bound());
                }
            }
        }
        removed
    }

    /// Total number of stored occurrences.
    pub fn count(&self) -> u64 {
        self.zero_count + self.positive.total_count() + self.negative.total_count()
    }

    /// Count of values in the exact zero bucket.
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// Estimate the q-quantile (Algorithm 2, generalized to ℝ).
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        let n = self.count();
        if n == 0 {
            return Err(SketchError::Empty);
        }
        let rank = target_rank(q, n);
        let neg = self.negative.total_count() as f64;
        let raw = if rank < neg {
            // Walk the negative store from the most negative value, i.e.
            // from its largest |x| bucket index downward.
            let idx = self
                .negative
                .key_at_rank_descending(rank)
                .expect("negative store non-empty");
            -self.mapping.value(idx)
        } else if rank < neg + self.zero_count as f64 {
            0.0
        } else {
            let idx = self
                .positive
                .key_at_rank(rank - neg - self.zero_count as f64)
                .expect("rank < total implies positive store non-empty");
            self.mapping.value(idx)
        };
        // The true quantile lies in [min, max]; clamping can only reduce
        // the error of the bucket representative.
        Ok(raw.clamp(self.min, self.max))
    }

    /// Estimate several quantiles in a single pass.
    ///
    /// Where repeated [`Self::quantile`] calls re-walk the stores'
    /// cumulative counts from scratch for every rank (O(k·bins) for k
    /// quantiles), this sorts the requested ranks and advances one cursor
    /// per store monotonically, answering all k in one walk (O(k·log k +
    /// bins)). Output order matches the input order, and every estimate is
    /// identical to what [`Self::quantile`] returns for the same `q`.
    ///
    /// This is the single-shard case of [`Self::merged_quantiles`], and is
    /// implemented as exactly that.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        Self::merged_quantiles(&[self], qs)
    }

    /// Estimate quantiles of the **merge** of `sketches` without
    /// materializing the merged sketch.
    ///
    /// The borrowed shards' bins are consumed through one k-way
    /// sorted-rank walk per store side ([`crate::store::BinIter`], so no
    /// intermediate store, no reallocation, no collapse work), with
    /// bounded store families accounted for by clamping each bin to the
    /// effective index the real merge would fold it to
    /// ([`Store::merge_clamp`]). The result is **identical** — including
    /// collapsed tails — to `target.quantiles(qs)` where `target` is a
    /// clone of `sketches[0]` that merged every remaining shard
    /// ([`Self::merge_from`] / [`Self::merge_many`]); the equivalence is
    /// property-tested across every preset.
    ///
    /// # Errors
    ///
    /// `InvalidQuantile` for any `q` outside `[0, 1]`, `IncompatibleMerge`
    /// when the sketches' mappings cannot merge, and `Empty` when
    /// `sketches` is empty or holds no data (unless `qs` is empty, which
    /// always succeeds with an empty vec).
    pub fn merged_quantiles(sketches: &[&Self], qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        Self::merged_quantiles_into(
            sketches.iter().copied(),
            qs,
            &mut MergedQuantileScratch::default(),
            &mut out,
        )?;
        Ok(out)
    }

    /// [`Self::merged_quantiles`] over an iterator of borrowed sketches,
    /// writing into caller-owned buffers — the allocation-free form of the
    /// k-way walk.
    ///
    /// `sketches` must be restartable (`Clone`): the walk takes several
    /// passes (compatibility check, totals, clamp prediction, bin
    /// windows) without ever materializing a slice of references. With a
    /// `scratch` and `out` reused across calls, a walk over dense-store
    /// sketches performs **zero** heap allocations at steady state —
    /// this is what lets a sliding window answer its per-tick p99 without
    /// touching the allocator. Sparse-store walks still allocate their
    /// per-bin head iterators (proportional to shard count, not bins).
    ///
    /// `out` is cleared and then filled to `qs.len()`, in `qs` order.
    /// Errors and estimates are identical to [`Self::merged_quantiles`].
    pub fn merged_quantiles_into<'a>(
        sketches: impl Iterator<Item = &'a Self> + Clone,
        qs: &[f64],
        scratch: &mut MergedQuantileScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError>
    where
        M: 'a,
        SP: 'a,
        SN: 'a,
    {
        for &q in qs {
            if !(0.0..=1.0).contains(&q) {
                return Err(SketchError::InvalidQuantile(q));
            }
        }
        out.clear();
        if qs.is_empty() {
            // Nothing to estimate: succeed even with no data, as the
            // per-quantile mapping always has.
            return Ok(());
        }
        let Some(first) = sketches.clone().next() else {
            return Err(SketchError::Empty);
        };
        for other in sketches.clone() {
            if !first.mapping.is_mergeable_with(&other.mapping) {
                return Err(SketchError::IncompatibleMerge(format!(
                    "mapping {} (α={}) vs {} (α={})",
                    first.mapping.name(),
                    first.mapping.relative_accuracy(),
                    other.mapping.name(),
                    other.mapping.relative_accuracy()
                )));
            }
        }
        let (mut n, mut neg_total, mut zero_total) = (0u64, 0u64, 0u64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in sketches.clone() {
            n += s.count();
            neg_total += s.negative.total_count();
            zero_total += s.zero_count;
            min = min.min(s.min);
            max = max.max(s.max);
        }
        if n == 0 {
            return Err(SketchError::Empty);
        }

        // Positive walk runs ascending; the negative walk runs from the
        // most negative value, i.e. from the largest |x| bucket downward —
        // mirroring key_at_rank_descending.
        let mut pos = KWayRankCursor::for_stores(
            sketches.clone().map(|s| &s.positive),
            false,
            SP::merge_clamp_iter(sketches.clone().map(|s| &s.positive)),
            recycle_windows(std::mem::take(&mut scratch.pos_windows)),
        );
        let mut neg = KWayRankCursor::for_stores(
            sketches.clone().map(|s| &s.negative),
            true,
            SN::merge_clamp_iter(sketches.map(|s| &s.negative)),
            recycle_windows(std::mem::take(&mut scratch.neg_windows)),
        );

        // Visit the ranks in ascending order, remembering each one's
        // original slot so the output order stays stable (in-place
        // unstable sort: equal quantiles give equal estimates anyway).
        scratch.order.clear();
        scratch.order.extend(0..qs.len());
        scratch
            .order
            .sort_unstable_by(|&a, &b| qs[a].total_cmp(&qs[b]));

        let neg_total = neg_total as f64;
        let zero_total = zero_total as f64;
        out.resize(qs.len(), 0.0);
        for &slot in &scratch.order {
            let rank = target_rank(qs[slot], n);
            let raw = if rank < neg_total {
                let idx = neg
                    .advance_to(rank)
                    .expect("rank < neg_total implies a negative bin");
                -first.mapping.value(idx)
            } else if rank < neg_total + zero_total {
                0.0
            } else {
                let idx = pos
                    .advance_to(rank - neg_total - zero_total)
                    .expect("rank < total implies a positive bin");
                first.mapping.value(idx)
            };
            out[slot] = raw.clamp(min, max);
        }
        scratch.pos_windows = recycle_windows(pos.recover_windows());
        scratch.neg_windows = recycle_windows(neg.recover_windows());
        Ok(())
    }

    /// Estimate quantiles of the **weighted** merge of `sketches`: each
    /// sketch's bins count `weight` times, as if every value it stored had
    /// been inserted `weight` times — the rank walk that backs
    /// exponentially-decayed ("recent-biased") sliding-window reads.
    ///
    /// Weights are applied at query time through the cumulative rank walk;
    /// nothing is copied, scaled, or re-bucketed. The target rank for `q`
    /// is `q·(W − 1)` where `W` is the total weighted count, the direct
    /// generalization of the paper's `q·(n − 1)`: for **integer** weights
    /// the result is bit-identical to an unweighted
    /// [`Self::merged_quantiles`] walk over the same sketches repeated
    /// `weight` times (property-tested). Sketches with `weight == 0.0` are
    /// excluded entirely (they contribute neither counts nor min/max).
    ///
    /// # Errors
    ///
    /// `InvalidQuantile` for any `q` outside `[0, 1]`; `InvalidConfig` for
    /// a NaN, infinite, or negative weight; `IncompatibleMerge` when the
    /// sketches' mappings cannot merge; `Empty` when no positive-weight
    /// data remains (unless `qs` is empty, which always succeeds).
    pub fn weighted_merged_quantiles_into<'a>(
        sketches: impl Iterator<Item = (&'a Self, f64)> + Clone,
        qs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError>
    where
        M: 'a,
        SP: 'a,
        SN: 'a,
    {
        for &q in qs {
            if !(0.0..=1.0).contains(&q) {
                return Err(SketchError::InvalidQuantile(q));
            }
        }
        for (_, weight) in sketches.clone() {
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(SketchError::InvalidConfig(format!(
                    "sketch weight must be finite and non-negative, got {weight}"
                )));
            }
        }
        out.clear();
        if qs.is_empty() {
            return Ok(());
        }
        let Some((first, _)) = sketches.clone().next() else {
            return Err(SketchError::Empty);
        };
        for (other, _) in sketches.clone() {
            if !first.mapping.is_mergeable_with(&other.mapping) {
                return Err(SketchError::IncompatibleMerge(format!(
                    "mapping {} (α={}) vs {} (α={})",
                    first.mapping.name(),
                    first.mapping.relative_accuracy(),
                    other.mapping.name(),
                    other.mapping.relative_accuracy()
                )));
            }
        }
        // Zero-weight sketches are out of the union entirely.
        let live = sketches.filter(|&(_, weight)| weight > 0.0);
        let (mut total_w, mut neg_w, mut zero_w) = (0.0f64, 0.0f64, 0.0f64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (s, weight) in live.clone() {
            total_w += weight * s.count() as f64;
            neg_w += weight * s.negative.total_count() as f64;
            zero_w += weight * s.zero_count as f64;
            min = min.min(s.min);
            max = max.max(s.max);
        }
        if total_w <= 0.0 {
            return Err(SketchError::Empty);
        }

        let mut pos = WeightedRankCursor::new(
            live.clone().map(|(s, w)| (s.positive.bin_iter(), w)),
            false,
            SP::merge_clamp_iter(live.clone().map(|(s, _)| &s.positive)),
        );
        let mut neg = WeightedRankCursor::new(
            live.clone().map(|(s, w)| (s.negative.bin_iter(), w)),
            true,
            SN::merge_clamp_iter(live.map(|(s, _)| &s.negative)),
        );

        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_unstable_by(|&a, &b| qs[a].total_cmp(&qs[b]));

        out.resize(qs.len(), 0.0);
        for &slot in &order {
            // q·(W − 1): the weighted generalization of target_rank.
            let rank = qs[slot].clamp(0.0, 1.0) * (total_w - 1.0).max(0.0);
            let raw = if rank < neg_w {
                let idx = neg
                    .advance_to(rank)
                    .expect("rank < weighted neg total implies a negative bin");
                -first.mapping.value(idx)
            } else if rank < neg_w + zero_w {
                0.0
            } else {
                let idx = pos
                    .advance_to(rank - neg_w - zero_w)
                    .expect("rank < weighted total implies a positive bin");
                first.mapping.value(idx)
            };
            out[slot] = raw.clamp(min, max);
        }
        Ok(())
    }

    /// Convenience slice form of [`Self::weighted_merged_quantiles_into`].
    pub fn weighted_merged_quantiles(
        sketches: &[(&Self, f64)],
        qs: &[f64],
    ) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        Self::weighted_merged_quantiles_into(sketches.iter().copied(), qs, &mut out)?;
        Ok(out)
    }

    /// Hard bounds on the q-quantile: the boundaries of the bucket the
    /// quantile falls in, intersected with the tracked `[min, max]`.
    ///
    /// Unlike [`Self::quantile`]'s point estimate (which is α-accurate),
    /// the returned interval *contains the true quantile with certainty*
    /// as long as its bucket has not been collapsed — useful for
    /// alerting logic that must not fire on sketch error.
    pub fn quantile_bounds(&self, q: f64) -> Result<(f64, f64), SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        let n = self.count();
        if n == 0 {
            return Err(SketchError::Empty);
        }
        let rank = target_rank(q, n);
        let neg = self.negative.total_count() as f64;
        let (lo, hi) = if rank < neg {
            let idx = self
                .negative
                .key_at_rank_descending(rank)
                .expect("negative store non-empty");
            (
                -self.mapping.upper_bound(idx),
                -self.mapping.lower_bound(idx),
            )
        } else if rank < neg + self.zero_count as f64 {
            (0.0, 0.0)
        } else {
            let idx = self
                .positive
                .key_at_rank(rank - neg - self.zero_count as f64)
                .expect("rank < total implies positive store non-empty");
            (self.mapping.lower_bound(idx), self.mapping.upper_bound(idx))
        };
        Ok((lo.max(self.min), hi.min(self.max)))
    }
}

impl<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>> Extend<f64>
    for DDSketch<M, SP, SN>
{
    /// Bulk insertion; values the sketch cannot represent (NaN, ±∞,
    /// beyond the indexable range) are silently skipped — use [`Self::add`]
    /// when per-value errors matter.
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            let _ = self.add(v);
        }
    }
}

impl<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>> QuantileSketch
    for DDSketch<M, SP, SN>
{
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        DDSketch::add(self, value)
    }

    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        DDSketch::add_n(self, value, count)
    }

    fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        DDSketch::add_slice(self, values)
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        DDSketch::quantile(self, q)
    }

    fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        DDSketch::quantiles(self, qs)
    }

    fn count(&self) -> u64 {
        DDSketch::count(self)
    }

    fn name(&self) -> &'static str {
        match self.mapping.kind() {
            MappingKind::Logarithmic => "DDSketch",
            _ => "DDSketch (fast)",
        }
    }
}

impl<M: IndexMapping, SP: Store, SN: Store<Count = SP::Count>> MergeableSketch
    for DDSketch<M, SP, SN>
{
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        DDSketch::merge_from(self, other)
    }
}

impl<M: IndexMapping, SP: Store, SN: Store<Count = SP::Count>> MemoryFootprint
    for DDSketch<M, SP, SN>
{
    fn memory_bytes(&self) -> usize {
        DDSketch::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::mapping::IndexMapping;
    use crate::presets::{self, *};
    use crate::sketch::DDSketch;
    use crate::store::Store;
    use sketch_core::SketchError;

    #[test]
    fn empty_sketch_behaviour() {
        let s = unbounded(0.01).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.average(), None);
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut s = unbounded(0.01).unwrap();
        assert!(s.add(f64::NAN).is_err());
        assert!(s.add(f64::INFINITY).is_err());
        assert!(s.add(f64::NEG_INFINITY).is_err());
        assert!(s.quantile(1.5).is_err());
        assert!(s.quantile(-0.5).is_err());
        assert!(s.quantile(f64::NAN).is_err());
        assert!(s.is_empty(), "failed adds must not change state");
    }

    #[test]
    fn single_value() {
        let mut s = unbounded(0.01).unwrap();
        s.add(42.0).unwrap();
        assert_eq!(s.count(), 1);
        for q in [0.0, 0.5, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!((v - 42.0).abs() <= 0.42, "q={q}: {v}");
        }
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
        assert_eq!(s.sum(), 42.0);
    }

    #[test]
    fn alpha_accuracy_on_a_known_stream() {
        let alpha = 0.01;
        let mut s = unbounded(alpha).unwrap();
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64).powf(1.3)).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(
                rel <= alpha + 1e-9,
                "q={q}: est {est} vs actual {actual} rel {rel}"
            );
        }
    }

    #[test]
    fn zero_and_tiny_values_use_the_zero_bucket() {
        let mut s = unbounded(0.01).unwrap();
        s.add(0.0).unwrap();
        s.add(1e-320).unwrap(); // subnormal → zero bucket
        s.add(-0.0).unwrap();
        assert_eq!(s.zero_count(), 3);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
    }

    #[test]
    fn negative_values_are_alpha_accurate() {
        let alpha = 0.01;
        let mut s = unbounded(alpha).unwrap();
        let mut values: Vec<f64> = (1..=1000).map(|i| -(i as f64)).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual.abs();
            assert!(rel <= alpha + 1e-9, "q={q}: est {est} vs actual {actual}");
        }
    }

    #[test]
    fn mixed_sign_stream_orders_correctly() {
        let mut s = unbounded(0.01).unwrap();
        for v in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            s.add(v).unwrap();
        }
        // q = 0 → most negative; q = 1 → most positive; q = 0.5 → zero.
        assert!(s.quantile(0.0).unwrap() <= -99.0);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
        assert!(s.quantile(1.0).unwrap() >= 99.0);
        // Quantile estimates must be monotone in q.
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=20 {
            let v = s.quantile(k as f64 / 20.0).unwrap();
            assert!(v >= prev, "quantiles must be monotone: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn weighted_add_matches_repeated_add() {
        let mut a = unbounded(0.01).unwrap();
        let mut b = unbounded(0.01).unwrap();
        a.add_n(3.5, 100).unwrap();
        for _ in 0..100 {
            b.add(3.5).unwrap();
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(
            a.positive_store().bins_ascending(),
            b.positive_store().bins_ascending()
        );
        assert_eq!(a.sum(), b.sum());
    }

    #[test]
    fn delete_reverses_add() {
        let mut s = unbounded(0.01).unwrap();
        s.add(5.0).unwrap();
        s.add(10.0).unwrap();
        assert!(s.delete(5.0));
        assert_eq!(s.count(), 1);
        assert!((s.sum() - 10.0).abs() < 1e-12);
        // Deleting a value whose bucket is empty fails cleanly.
        assert!(!s.delete(5.0));
        assert!(!s.delete(1e9));
        // Zero-bucket deletion.
        s.add(0.0).unwrap();
        assert!(s.delete(0.0));
        assert!(!s.delete(0.0));
    }

    #[test]
    fn delete_to_empty_then_readd_is_exact() {
        // Regression: min/max/sum must not survive a delete-to-empty —
        // pre-fix, the stale extremes of the drained stream leaked into
        // the re-added one (min() reported 5.0 here with only 10.0 live).
        let mut s = unbounded(0.01).unwrap();
        s.add(5.0).unwrap();
        assert!(s.delete(5.0));
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        s.add(10.0).unwrap();
        assert_eq!(s.min(), Some(10.0));
        assert_eq!(s.max(), Some(10.0));
        assert_eq!(s.sum(), 10.0);
        // Same through the zero bucket and the negative store.
        let mut s = unbounded(0.01).unwrap();
        s.add(0.0).unwrap();
        s.add(-3.0).unwrap();
        assert!(s.delete(-3.0));
        assert!(s.delete(0.0));
        assert!(s.is_empty());
        s.add(-7.0).unwrap();
        assert_eq!(s.min(), Some(-7.0));
        assert_eq!(s.max(), Some(-7.0));
        // And sum sheds the float residue of the drained stream: after
        // deleting 0.1 and 0.3 the naive running sum holds ~5.5e-17.
        let mut s = unbounded(0.01).unwrap();
        s.add(0.1).unwrap();
        s.add(0.3).unwrap();
        assert!(s.delete(0.1));
        assert!(s.delete(0.3));
        s.add(10.0).unwrap();
        assert_eq!(s.sum(), 10.0, "sum must be exact after drain + re-add");
    }

    #[test]
    fn delete_at_the_extremes_keeps_min_max_honest() {
        let alpha = 0.01;
        // Deleting the maximum: max() must tighten to the surviving
        // bucket's bound instead of reporting the fully-deleted 1000.0
        // (the pre-fix accessors kept the stale extreme).
        let mut s = unbounded(alpha).unwrap();
        s.add(1.0).unwrap();
        s.add(1000.0).unwrap();
        assert!(s.delete(1000.0));
        let max = s.max().unwrap();
        assert!(
            max <= 1.0 * (1.0 + alpha) * (1.0 + 1e-9) && max >= 1.0,
            "stale max must tighten to the surviving bucket, got {max}"
        );
        // The quantile clamp therefore cannot pin to the deleted value.
        let p100 = s.quantile(1.0).unwrap();
        assert!(p100 <= max, "estimate {p100} pinned above the bound {max}");
        // Mirror case at the minimum, through the negative store.
        let mut s = unbounded(alpha).unwrap();
        s.add(-1000.0).unwrap();
        s.add(-1.0).unwrap();
        s.add(5.0).unwrap();
        assert!(s.delete(-1000.0));
        let min = s.min().unwrap();
        assert!(
            min >= -((1.0 + alpha) * (1.0 + 1e-9)) && min <= -1.0,
            "stale min must tighten to the surviving bucket, got {min}"
        );
        assert!(s.quantile(0.0).unwrap() >= min);
        // Deleting a non-extreme value leaves the exact extremes alone.
        let mut s = unbounded(alpha).unwrap();
        for v in [1.0, 50.0, 1000.0] {
            s.add(v).unwrap();
        }
        assert!(s.delete(50.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(1000.0));
        // Deleting one of several occupants of the extreme bucket keeps
        // the extreme (the bucket still holds a count).
        let mut s = unbounded(alpha).unwrap();
        s.add(1000.0).unwrap();
        s.add(1000.0).unwrap();
        s.add(1.0).unwrap();
        assert!(s.delete(1000.0));
        assert_eq!(s.max(), Some(1000.0));
        // Zero as the surviving extreme is exact.
        let mut s = unbounded(alpha).unwrap();
        s.add(0.0).unwrap();
        s.add(9.0).unwrap();
        assert!(s.delete(9.0));
        assert_eq!(s.max(), Some(0.0));
        assert_eq!(s.min(), Some(0.0));
    }

    #[test]
    fn weighted_walk_with_unit_weights_matches_unweighted() {
        let mut shards = Vec::new();
        for shard in 0..3usize {
            let mut s = unbounded(0.01).unwrap();
            for i in 1..=(150 * (shard + 1)) {
                let v = match i % 4 {
                    0 => 0.0,
                    1 | 2 => (i as f64).sqrt() * 1.3,
                    _ => -(i as f64) * 0.2,
                };
                s.add(v).unwrap();
            }
            shards.push(s);
        }
        let refs: Vec<_> = shards.iter().collect();
        let pairs: Vec<_> = shards.iter().map(|s| (s, 1.0)).collect();
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
        assert_eq!(
            DDSketch::weighted_merged_quantiles(&pairs, &qs).unwrap(),
            DDSketch::merged_quantiles(&refs, &qs).unwrap(),
            "unit weights must reproduce the unweighted walk exactly"
        );
    }

    #[test]
    fn weighted_walk_with_integer_weights_matches_replication() {
        // Weight w ≡ the sketch repeated w times in an unweighted walk:
        // for integer weights the cumulative counts are identical f64
        // sums, so the answers must agree bit-for-bit.
        let build = |seed: usize, n: usize| {
            let mut s = unbounded(0.01).unwrap();
            for i in 1..=n {
                let v = ((seed * 37 + i) as f64).sqrt() * 0.9 - 5.0;
                if v.abs() > 1e-6 {
                    s.add(v).unwrap();
                } else {
                    s.add(0.0).unwrap();
                }
            }
            s
        };
        let (a, b, c) = (build(1, 200), build(2, 333), build(3, 77));
        let weighted = [(&a, 1.0), (&b, 2.0), (&c, 3.0)];
        let replicated = [&a, &b, &b, &c, &c, &c];
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        assert_eq!(
            DDSketch::weighted_merged_quantiles(&weighted, &qs).unwrap(),
            DDSketch::merged_quantiles(&replicated, &qs).unwrap(),
            "integer weights must equal unweighted replication"
        );
        // Zero-weight sketches drop out of the union entirely.
        let zeroed = [(&a, 1.0), (&b, 0.0)];
        assert_eq!(
            DDSketch::weighted_merged_quantiles(&zeroed, &qs).unwrap(),
            DDSketch::merged_quantiles(&[&a], &qs).unwrap(),
            "weight 0 must exclude the sketch"
        );
    }

    #[test]
    fn weighted_walk_biases_toward_heavier_shards() {
        // A recent shard of large values at weight 8 must pull the median
        // far above the unweighted merge's.
        let mut old = unbounded(0.01).unwrap();
        let mut recent = unbounded(0.01).unwrap();
        for i in 1..=1000 {
            old.add(1.0 + (i % 10) as f64 * 0.01).unwrap();
            recent.add(100.0 + (i % 10) as f64).unwrap();
        }
        let unweighted = DDSketch::merged_quantiles(&[&old, &recent], &[0.25]).unwrap()[0];
        let biased = DDSketch::weighted_merged_quantiles(&[(&old, 1.0), (&recent, 8.0)], &[0.25])
            .unwrap()[0];
        assert!(
            unweighted < 2.0,
            "q25 of the even merge sits in the old data"
        );
        assert!(
            biased > 90.0,
            "q25 of the 8× weighting sits in the recent data"
        );
    }

    #[test]
    fn weighted_walk_validation() {
        let mut s = unbounded(0.01).unwrap();
        s.add(1.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                DDSketch::weighted_merged_quantiles(&[(&s, bad)], &[0.5]),
                Err(SketchError::InvalidConfig(_))
            ));
        }
        assert!(matches!(
            DDSketch::weighted_merged_quantiles(&[(&s, 1.0)], &[1.5]),
            Err(SketchError::InvalidQuantile(_))
        ));
        // All weights zero → no data.
        assert!(matches!(
            DDSketch::weighted_merged_quantiles(&[(&s, 0.0)], &[0.5]),
            Err(SketchError::Empty)
        ));
        // Empty qs succeeds even with no sketches.
        let none: [(&presets::UnboundedDDSketch, f64); 0] = [];
        assert_eq!(
            DDSketch::weighted_merged_quantiles(&none, &[]).unwrap(),
            Vec::<f64>::new()
        );
        assert!(matches!(
            DDSketch::weighted_merged_quantiles(&none, &[0.5]),
            Err(SketchError::Empty)
        ));
        // Mismatched mappings are rejected.
        let other = unbounded(0.02).unwrap();
        assert!(matches!(
            DDSketch::weighted_merged_quantiles(&[(&s, 1.0), (&other, 1.0)], &[0.5]),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn merged_quantiles_into_reuses_scratch_across_shard_sets() {
        // One scratch serving alternating shard sets (different counts,
        // different window spans) must keep answering exactly like the
        // allocating entry point.
        let mut scratch = crate::MergedQuantileScratch::default();
        let mut out = Vec::new();
        let build = |lo: usize, n: usize| {
            let mut s = logarithmic_collapsing(0.01, 64).unwrap();
            for i in lo..lo + n {
                s.add(1.001_f64.powi(i as i32) * 3.0).unwrap();
            }
            s
        };
        let sets = [
            vec![build(0, 500), build(2000, 300)],
            vec![build(100, 50)],
            vec![build(0, 10), build(5000, 700), build(900, 20)],
        ];
        let qs = [0.99, 0.0, 0.5, 1.0];
        for set in &sets {
            let refs: Vec<_> = set.iter().collect();
            DDSketch::merged_quantiles_into(set.iter(), &qs, &mut scratch, &mut out).unwrap();
            assert_eq!(out, DDSketch::merged_quantiles(&refs, &qs).unwrap());
        }
        // Error paths leave the buffers reusable.
        assert!(
            DDSketch::merged_quantiles_into(sets[0].iter(), &[2.0], &mut scratch, &mut out)
                .is_err()
        );
        DDSketch::merged_quantiles_into(sets[2].iter(), &qs, &mut scratch, &mut out).unwrap();
        let refs: Vec<_> = sets[2].iter().collect();
        assert_eq!(out, DDSketch::merged_quantiles(&refs, &qs).unwrap());
    }

    #[test]
    fn merge_is_bucket_exact() {
        let mut a = unbounded(0.01).unwrap();
        let mut b = unbounded(0.01).unwrap();
        let mut union = unbounded(0.01).unwrap();
        for i in 1..500 {
            let v = i as f64 * 0.37;
            a.add(v).unwrap();
            union.add(v).unwrap();
        }
        for i in 1..300 {
            let v = i as f64 * 11.1;
            b.add(v).unwrap();
            union.add(v).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), union.count());
        assert_eq!(
            a.positive_store().bins_ascending(),
            union.positive_store().bins_ascending()
        );
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
        assert!((a.sum() - union.sum()).abs() < 1e-6 * union.sum().abs());
    }

    #[test]
    fn merge_rejects_mismatched_accuracy() {
        let mut a = unbounded(0.01).unwrap();
        let b = unbounded(0.02).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn clamping_keeps_estimates_inside_observed_range() {
        let mut s = unbounded(0.05).unwrap();
        s.add(100.0).unwrap();
        let v = s.quantile(1.0).unwrap();
        assert!(v <= 100.0, "estimate {v} must not exceed the observed max");
        let v = s.quantile(0.0).unwrap();
        assert!(v >= 100.0 - 100.0 * 0.05 - 1e-9);
    }

    #[test]
    fn bounded_sketch_keeps_upper_quantiles_after_collapse() {
        // Proposition 4: with m buckets, quantiles q with
        // x₁ ≤ x_q·γ^(m−1) stay accurate. Build a stream wide enough to
        // force collapse and check the upper half.
        let alpha = 0.01;
        let mut s = logarithmic_collapsing(alpha, 128).unwrap();
        let mut values = Vec::new();
        for i in 0..50_000 {
            // Span many orders of magnitude so the 128-bucket cap collapses.
            let v = 1.0001_f64.powi(i % 30_000) * (1.0 + (i % 7) as f64);
            s.add(v).unwrap();
            values.push(v);
        }
        assert!(s.has_collapsed());
        values.sort_by(f64::total_cmp);
        for q in [0.9, 0.95, 0.99, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(rel <= alpha + 1e-9, "q={q}: rel {rel}");
        }
        assert_eq!(s.count(), 50_000, "collapse must not lose counts");
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = fast(0.01, 1024).unwrap();
        for i in 1..100 {
            s.add(i as f64).unwrap();
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.num_bins(), 0);
        assert!(s.quantile(0.5).is_err());
        s.add(7.0).unwrap();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn rejects_values_beyond_indexable_range() {
        let mut s = unbounded(1e-9).unwrap(); // tight α → narrow range
        let too_big = s.mapping().max_indexable_value() * 2.0;
        assert!(s.add(too_big).is_err());
        assert!(s.add(-too_big).is_err());
    }

    #[test]
    fn quantile_bounds_contain_the_true_quantile() {
        let mut s = unbounded(0.01).unwrap();
        let mut values: Vec<f64> = (1..=5000).map(|i| (i as f64) * 1.7).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let (lo, hi) = s.quantile_bounds(q).unwrap();
            assert!(
                lo <= actual && actual <= hi,
                "q={q}: true {actual} outside [{lo}, {hi}]"
            );
            // The point estimate also lies inside its own bounds.
            let est = s.quantile(q).unwrap();
            assert!(lo <= est && est <= hi);
        }
    }

    #[test]
    fn quantile_bounds_mixed_signs_and_zero() {
        let mut s = unbounded(0.01).unwrap();
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            s.add(v).unwrap();
        }
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert_eq!((lo, hi), (0.0, 0.0), "zero bucket is exact");
        let (lo, hi) = s.quantile_bounds(0.0).unwrap();
        assert!(lo <= -10.0 && hi >= -10.0 * 1.01);
        assert!(s.quantile_bounds(2.0).is_err());
        assert!(unbounded(0.01).unwrap().quantile_bounds(0.5).is_err());
    }

    #[test]
    fn extend_skips_unsupported_values() {
        let mut s = unbounded(0.01).unwrap();
        s.extend([1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 6.0);
    }

    #[test]
    fn add_slice_matches_scalar_adds() {
        let values: Vec<f64> = (1..=5000)
            .map(|i| {
                let v = (i as f64).sqrt() * 3.3;
                if i % 3 == 0 {
                    -v
                } else if i % 97 == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        let mut scalar = unbounded(0.01).unwrap();
        let mut batch = unbounded(0.01).unwrap();
        for &v in &values {
            scalar.add(v).unwrap();
        }
        // Ingest in several chunks to exercise scratch reuse.
        for chunk in values.chunks(700) {
            batch.add_slice(chunk).unwrap();
        }
        assert_eq!(batch.count(), scalar.count());
        assert_eq!(batch.zero_count(), scalar.zero_count());
        assert_eq!(batch.sum(), scalar.sum(), "sum must be bit-identical");
        assert_eq!(batch.min(), scalar.min());
        assert_eq!(batch.max(), scalar.max());
        assert_eq!(
            batch.positive_store().bins_ascending(),
            scalar.positive_store().bins_ascending()
        );
        assert_eq!(
            batch.negative_store().bins_ascending(),
            scalar.negative_store().bins_ascending()
        );
    }

    #[test]
    fn add_slice_rejects_without_corrupting_state() {
        let mut s = unbounded(0.01).unwrap();
        s.add_slice(&[1.0, 2.0]).unwrap();
        let before_bins = s.positive_store().bins_ascending();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = s.add_slice(&[3.0, bad, 4.0]).unwrap_err();
            assert!(matches!(err, SketchError::UnsupportedValue(_)), "{bad}");
        }
        assert_eq!(
            s.count(),
            2,
            "failed batches must not be partially ingested"
        );
        assert_eq!(s.sum(), 3.0);
        assert_eq!(s.positive_store().bins_ascending(), before_bins);
        // Out-of-range magnitude is also rejected atomically.
        let mut tight = unbounded(1e-9).unwrap();
        let too_big = tight.mapping().max_indexable_value() * 2.0;
        assert!(tight.add_slice(&[1.0, too_big]).is_err());
        assert!(tight.is_empty());
    }

    #[test]
    fn add_slice_of_empty_batch_is_a_noop() {
        let mut s = fast(0.01, 1024).unwrap();
        s.add_slice(&[]).unwrap();
        assert!(s.is_empty());
        s.add_slice(&[5.0]).unwrap();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn quantiles_single_pass_matches_per_quantile() {
        let mut s = unbounded(0.01).unwrap();
        for v in [-50.0, -3.0, 0.0, 0.0, 2.0, 7.0, 7.5, 1000.0] {
            s.add(v).unwrap();
        }
        for i in 1..=2000 {
            s.add((i as f64).powf(1.2) - 300.0).unwrap();
        }
        // Unsorted, duplicated, boundary-heavy request order.
        let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.01, 0.25, 0.75, 0.99];
        let batch = s.quantiles(&qs).unwrap();
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, s.quantile(q).unwrap(), "q = {q}");
        }
        // Validation matches the scalar path.
        assert!(s.quantiles(&[0.5, 1.5]).is_err());
        assert!(s.quantiles(&[f64::NAN]).is_err());
        assert!(unbounded(0.01).unwrap().quantiles(&[0.5]).is_err());
        assert_eq!(s.quantiles(&[]).unwrap(), Vec::<f64>::new());
        // An empty request succeeds even on an empty sketch (matching the
        // behaviour of mapping `quantile` over zero inputs).
        assert_eq!(
            unbounded(0.01).unwrap().quantiles(&[]).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn merge_many_matches_sequential_merges() {
        let mut shards = Vec::new();
        for shard in 0..5 {
            let mut s = unbounded(0.01).unwrap();
            for i in 1..=400 {
                let v = (shard * 400 + i) as f64 * 0.7 - 500.0;
                s.add(v).unwrap();
            }
            shards.push(s);
        }
        // One shard left intentionally empty.
        shards.push(unbounded(0.01).unwrap());
        let refs: Vec<_> = shards[1..].iter().collect();
        let mut bulk = shards[0].clone();
        bulk.merge_many(&refs).unwrap();
        let mut seq = shards[0].clone();
        for other in &refs {
            seq.merge_from(other).unwrap();
        }
        assert_eq!(bulk.count(), seq.count());
        assert_eq!(bulk.zero_count(), seq.zero_count());
        assert_eq!(bulk.sum(), seq.sum(), "sum must be bit-identical");
        assert_eq!(bulk.min(), seq.min());
        assert_eq!(bulk.max(), seq.max());
        assert_eq!(
            bulk.positive_store().bins_ascending(),
            seq.positive_store().bins_ascending()
        );
        assert_eq!(
            bulk.negative_store().bins_ascending(),
            seq.negative_store().bins_ascending()
        );
        // Merging nothing is a no-op that still succeeds.
        let before = bulk.count();
        bulk.merge_many(&[]).unwrap();
        assert_eq!(bulk.count(), before);
    }

    #[test]
    fn merge_many_rejects_atomically() {
        let mut target = unbounded(0.01).unwrap();
        target.add(1.0).unwrap();
        let mut good = unbounded(0.01).unwrap();
        good.add(2.0).unwrap();
        let bad = unbounded(0.02).unwrap();
        assert!(matches!(
            target.merge_many(&[&good, &bad]),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // Validation precedes mutation: nothing was merged.
        assert_eq!(target.count(), 1);
    }

    #[test]
    fn merged_quantiles_match_materialized_merge() {
        // Mixed signs and zeros across unevenly-sized shards.
        let mut shards = Vec::new();
        for shard in 0..4usize {
            let mut s = unbounded(0.01).unwrap();
            for i in 1..=(200 * (shard + 1)) {
                let v = match i % 5 {
                    0 => 0.0,
                    1 | 2 => (i as f64).sqrt() * 2.5,
                    _ => -(i as f64) * 0.3,
                };
                s.add(v).unwrap();
            }
            shards.push(s);
        }
        let refs: Vec<_> = shards.iter().collect();
        let mut materialized = shards[0].clone();
        materialized.merge_many(&refs[1..]).unwrap();
        let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.01, 0.25, 0.75];
        assert_eq!(
            DDSketch::merged_quantiles(&refs, &qs).unwrap(),
            materialized.quantiles(&qs).unwrap()
        );
        // Validation mirrors `quantiles`.
        assert!(DDSketch::merged_quantiles(&refs, &[1.5]).is_err());
        assert!(DDSketch::merged_quantiles(&refs, &[f64::NAN]).is_err());
        assert_eq!(
            DDSketch::merged_quantiles(&refs, &[]).unwrap(),
            Vec::<f64>::new()
        );
        // No sketches (or only empty sketches) → Empty, unless qs is
        // empty too.
        let no_shards: [&presets::UnboundedDDSketch; 0] = [];
        assert!(matches!(
            DDSketch::merged_quantiles(&no_shards, &[0.5]),
            Err(SketchError::Empty)
        ));
        assert_eq!(
            DDSketch::merged_quantiles(&no_shards, &[]).unwrap(),
            Vec::<f64>::new()
        );
        let empty = unbounded(0.01).unwrap();
        assert!(matches!(
            DDSketch::merged_quantiles(&[&empty], &[0.5]),
            Err(SketchError::Empty)
        ));
        // Mismatched mappings are rejected.
        let other_alpha = unbounded(0.02).unwrap();
        assert!(matches!(
            DDSketch::merged_quantiles(&[&shards[0], &other_alpha], &[0.5]),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn merged_quantiles_honour_collapsed_tails() {
        // Tiny bin cap: the union spans far more buckets than any single
        // shard, so the (virtual) merge must collapse — and the k-way walk
        // must report exactly what the materialized collapse reports.
        let mut shards = Vec::new();
        for shard in 0..6 {
            let mut s = logarithmic_collapsing(0.01, 32).unwrap();
            for i in 1..=500 {
                let v = 1.001_f64.powi(shard * 700 + i) * (1.0 + (i % 3) as f64);
                s.add(v).unwrap();
            }
            shards.push(s);
        }
        let refs: Vec<_> = shards.iter().collect();
        let mut materialized = shards[0].clone();
        materialized.merge_many(&refs[1..]).unwrap();
        assert!(materialized.has_collapsed());
        let qs = [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0];
        assert_eq!(
            DDSketch::merged_quantiles(&refs, &qs).unwrap(),
            materialized.quantiles(&qs).unwrap()
        );
    }

    #[test]
    fn memory_bytes_counts_batch_scratch() {
        let mut batched = unbounded(0.01).unwrap();
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let before = batched.memory_bytes();
        batched.add_slice(&values).unwrap();
        // The retained scratch capacity (≥ 10_000 × 4-byte indices) must
        // show up in the footprint on top of whatever the store grew to.
        assert!(
            batched.memory_bytes() >= before + values.len() * 4,
            "after {} vs before {}",
            batched.memory_bytes(),
            before
        );
    }

    #[test]
    fn average_and_sum_are_exact() {
        let mut s = unbounded(0.01).unwrap();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.add(v).unwrap();
        }
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.average(), Some(2.5));
    }
}
