//! Runtime sketch configuration: [`SketchConfig`] and [`DDSketchBuilder`].
//!
//! The paper's deployment story (Figure 1) is agents shipping sketches to
//! an aggregator that merges whatever arrives. That requires choosing — and
//! transmitting — the sketch's parameters at *runtime*: accuracy `α`, the
//! index-mapping family, the store family, and the bucket bound. This
//! module is the single vocabulary for that choice; the five concrete
//! preset types in [`crate::presets`] remain available as statically-typed
//! fast paths, and every `SketchConfig` builds the type-erased
//! [`AnyDDSketch`](crate::AnyDDSketch) whose behaviour is bit-identical to
//! the matching preset.

use crate::mapping::MappingKind;
use crate::store::StoreKind;
use crate::AnyDDSketch;
use sketch_core::SketchError;

/// The paper's Table 2 bucket limit, used by [`DDSketchBuilder`] when a
/// bounded store is selected without an explicit `max_bins`.
pub const DEFAULT_MAX_BINS: usize = 2048;

/// A complete, validated runtime description of a DDSketch.
///
/// A config names one of the five supported (mapping, store) combinations:
///
/// | mapping | store | preset equivalent |
/// |---------|-------|-------------------|
/// | [`MappingKind::Logarithmic`] | [`StoreKind::Unbounded`] | [`crate::presets::unbounded`] |
/// | [`MappingKind::Logarithmic`] | [`StoreKind::CollapsingDense`] | [`crate::presets::logarithmic_collapsing`] |
/// | [`MappingKind::CubicInterpolated`] | [`StoreKind::CollapsingDense`] | [`crate::presets::fast`] |
/// | [`MappingKind::Logarithmic`] | [`StoreKind::Sparse`] | [`crate::presets::sparse`] |
/// | [`MappingKind::Logarithmic`] | [`StoreKind::CollapsingSparse`] | [`crate::presets::paper_exact`] |
///
/// `max_bins` must be positive exactly when the store kind is bounded, and
/// zero otherwise — so a config equals the config recovered from any sketch
/// built from it ([`AnyDDSketch::config`] round-trips).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Relative accuracy `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Index-mapping family.
    pub mapping: MappingKind,
    /// Store family for both the positive and negative halves.
    pub store: StoreKind,
    /// Bucket bound for bounded store kinds; 0 for unbounded kinds.
    pub max_bins: usize,
}

impl SketchConfig {
    /// The basic unbounded sketch (paper §2.1): exact log mapping, dense
    /// unbounded stores.
    pub fn unbounded(alpha: f64) -> Self {
        Self {
            alpha,
            mapping: MappingKind::Logarithmic,
            store: StoreKind::Unbounded,
            max_bins: 0,
        }
    }

    /// The paper's evaluated configuration (Table 2): exact log mapping,
    /// collapsing dense stores bounded to `max_bins`.
    pub fn dense_collapsing(alpha: f64, max_bins: usize) -> Self {
        Self {
            alpha,
            mapping: MappingKind::Logarithmic,
            store: StoreKind::CollapsingDense,
            max_bins,
        }
    }

    /// "DDSketch (fast)": cubic-interpolated mapping with collapsing dense
    /// stores.
    pub fn fast(alpha: f64, max_bins: usize) -> Self {
        Self {
            alpha,
            mapping: MappingKind::CubicInterpolated,
            store: StoreKind::CollapsingDense,
            max_bins,
        }
    }

    /// Sparse, unbounded sketch: memory proportional to non-empty buckets.
    pub fn sparse(alpha: f64) -> Self {
        Self {
            alpha,
            mapping: MappingKind::Logarithmic,
            store: StoreKind::Sparse,
            max_bins: 0,
        }
    }

    /// Algorithm-3-exact sketch: sparse stores bounding non-empty buckets.
    pub fn paper_exact(alpha: f64, max_bins: usize) -> Self {
        Self {
            alpha,
            mapping: MappingKind::Logarithmic,
            store: StoreKind::CollapsingSparse,
            max_bins,
        }
    }

    /// Every supported configuration at the given parameters, in the
    /// presets' documentation order — handy for parameterizing tests and
    /// benchmarks over the whole matrix.
    pub fn all(alpha: f64, max_bins: usize) -> [SketchConfig; 5] {
        [
            SketchConfig::unbounded(alpha),
            SketchConfig::dense_collapsing(alpha, max_bins),
            SketchConfig::fast(alpha, max_bins),
            SketchConfig::sparse(alpha),
            SketchConfig::paper_exact(alpha, max_bins),
        ]
    }

    /// Check the config without building a sketch: `α ∈ (0, 1)`, a
    /// supported (mapping, store) combination, and a `max_bins` consistent
    /// with the store kind's boundedness.
    pub fn validate(&self) -> Result<(), SketchError> {
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(SketchError::InvalidConfig(format!(
                "relative accuracy must be in (0, 1), got {}",
                self.alpha
            )));
        }
        match (self.mapping, self.store) {
            (MappingKind::Logarithmic, _)
            | (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => {}
            (mapping, store) => {
                return Err(SketchError::InvalidConfig(format!(
                    "unsupported combination: {mapping:?} mapping with {} store \
                     (the cubic mapping is only available with collapsing dense \
                     stores, and the linear/quadratic mappings have no preset)",
                    store.name()
                )));
            }
        }
        if self.store.is_bounded() {
            if self.max_bins == 0 {
                return Err(SketchError::InvalidConfig(format!(
                    "max_bins must be positive for the bounded {} store",
                    self.store.name()
                )));
            }
        } else if self.max_bins != 0 {
            return Err(SketchError::InvalidConfig(format!(
                "max_bins ({}) is meaningless for the unbounded {} store; set it to 0",
                self.max_bins,
                self.store.name()
            )));
        }
        Ok(())
    }

    /// Build the type-erased sketch this config describes.
    pub fn build(&self) -> Result<AnyDDSketch, SketchError> {
        AnyDDSketch::new(*self)
    }

    /// Display name matching the paper's legends. Combinations outside
    /// the supported matrix (constructible via the public fields, but
    /// rejected by [`Self::validate`]) get a distinct label rather than
    /// being conflated with a real preset.
    pub fn name(&self) -> &'static str {
        match (self.mapping, self.store) {
            (MappingKind::Logarithmic, StoreKind::Unbounded) => "DDSketch (unbounded)",
            (MappingKind::Logarithmic, StoreKind::CollapsingDense) => "DDSketch",
            (MappingKind::Logarithmic, StoreKind::Sparse) => "DDSketch (sparse)",
            (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => "DDSketch (paper-exact)",
            (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => "DDSketch (fast)",
            _ => "DDSketch (unsupported)",
        }
    }
}

/// Fluent construction of an [`AnyDDSketch`] (or a bare [`SketchConfig`]).
///
/// ```
/// use ddsketch::DDSketchBuilder;
///
/// // The paper's Table 2 configuration.
/// let mut sketch = DDSketchBuilder::new(0.01).dense_collapsing(2048).build().unwrap();
/// sketch.add(1.5).unwrap();
/// assert_eq!(sketch.count(), 1);
///
/// // Store and mapping can also be picked piecemeal.
/// use ddsketch::{MappingKind, StoreKind};
/// let sparse = DDSketchBuilder::new(0.02)
///     .mapping(MappingKind::Logarithmic)
///     .store(StoreKind::Sparse)
///     .build()
///     .unwrap();
/// assert_eq!(sparse.config(), ddsketch::SketchConfig::sparse(0.02));
/// ```
#[derive(Debug, Clone)]
pub struct DDSketchBuilder {
    alpha: f64,
    mapping: MappingKind,
    store: StoreKind,
    max_bins: Option<usize>,
}

impl DDSketchBuilder {
    /// Start a builder for relative accuracy `alpha`. Defaults to the
    /// paper's evaluated configuration: exact logarithmic mapping and
    /// collapsing dense stores with [`DEFAULT_MAX_BINS`] buckets.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha,
            mapping: MappingKind::Logarithmic,
            store: StoreKind::CollapsingDense,
            max_bins: None,
        }
    }

    /// Select the index-mapping family.
    pub fn mapping(mut self, mapping: MappingKind) -> Self {
        self.mapping = mapping;
        self
    }

    /// Select the store family (keeping any `max_bins` already set).
    pub fn store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Bound the stores to `max_bins` buckets (only meaningful — and then
    /// mandatory-or-defaulted — for bounded store kinds).
    pub fn max_bins(mut self, max_bins: usize) -> Self {
        self.max_bins = Some(max_bins);
        self
    }

    /// Shorthand: unbounded dense stores ([`crate::presets::unbounded`]).
    /// Last call wins: any bound implied by an earlier bounded shorthand
    /// is cleared.
    pub fn unbounded(mut self) -> Self {
        self.store = StoreKind::Unbounded;
        self.max_bins = None;
        self
    }

    /// Shorthand: collapsing dense stores bounded to `max_bins`
    /// ([`crate::presets::logarithmic_collapsing`] under the default
    /// logarithmic mapping).
    pub fn dense_collapsing(mut self, max_bins: usize) -> Self {
        self.store = StoreKind::CollapsingDense;
        self.max_bins = Some(max_bins);
        self
    }

    /// Shorthand: sparse unbounded stores ([`crate::presets::sparse`]).
    /// Last call wins: any bound implied by an earlier bounded shorthand
    /// is cleared.
    pub fn sparse(mut self) -> Self {
        self.store = StoreKind::Sparse;
        self.max_bins = None;
        self
    }

    /// Shorthand: Algorithm-3 collapsing sparse stores bounded to
    /// `max_bins` ([`crate::presets::paper_exact`]).
    pub fn sparse_collapsing(mut self, max_bins: usize) -> Self {
        self.store = StoreKind::CollapsingSparse;
        self.max_bins = Some(max_bins);
        self
    }

    /// Shorthand: the cubic-interpolated mapping — with the (default)
    /// collapsing dense stores this is the paper's "DDSketch (fast)".
    pub fn cubic(mut self) -> Self {
        self.mapping = MappingKind::CubicInterpolated;
        self
    }

    /// Resolve to a validated [`SketchConfig`].
    pub fn config(&self) -> Result<SketchConfig, SketchError> {
        let max_bins = if self.store.is_bounded() {
            self.max_bins.unwrap_or(DEFAULT_MAX_BINS)
        } else {
            // An explicit bound on an unbounded store is a caller mistake;
            // surface it through validate() rather than silently dropping.
            self.max_bins.unwrap_or(0)
        };
        let config = SketchConfig {
            alpha: self.alpha,
            mapping: self.mapping,
            store: self.store,
            max_bins,
        };
        config.validate()?;
        Ok(config)
    }

    /// Build the configured sketch.
    pub fn build(&self) -> Result<AnyDDSketch, SketchError> {
        self.config()?.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_the_paper_configuration() {
        let config = DDSketchBuilder::new(0.01).config().unwrap();
        assert_eq!(
            config,
            SketchConfig::dense_collapsing(0.01, DEFAULT_MAX_BINS)
        );
        assert_eq!(config.name(), "DDSketch");
    }

    #[test]
    fn builder_shorthands_match_preset_configs() {
        let alpha = 0.02;
        assert_eq!(
            DDSketchBuilder::new(alpha).unbounded().config().unwrap(),
            SketchConfig::unbounded(alpha)
        );
        assert_eq!(
            DDSketchBuilder::new(alpha)
                .dense_collapsing(512)
                .config()
                .unwrap(),
            SketchConfig::dense_collapsing(alpha, 512)
        );
        assert_eq!(
            DDSketchBuilder::new(alpha)
                .cubic()
                .dense_collapsing(512)
                .config()
                .unwrap(),
            SketchConfig::fast(alpha, 512)
        );
        assert_eq!(
            DDSketchBuilder::new(alpha).sparse().config().unwrap(),
            SketchConfig::sparse(alpha)
        );
        assert_eq!(
            DDSketchBuilder::new(alpha)
                .sparse_collapsing(64)
                .config()
                .unwrap(),
            SketchConfig::paper_exact(alpha, 64)
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        for alpha in [0.0, 1.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(SketchConfig::dense_collapsing(alpha, 2048)
                .validate()
                .is_err());
        }
        // Bounded store without a bound.
        assert!(SketchConfig::dense_collapsing(0.01, 0).validate().is_err());
        assert!(SketchConfig::paper_exact(0.01, 0).validate().is_err());
        // Bound on an unbounded store.
        let mut c = SketchConfig::sparse(0.01);
        c.max_bins = 8;
        assert!(c.validate().is_err());
        assert!(DDSketchBuilder::new(0.01)
            .sparse()
            .max_bins(8)
            .build()
            .is_err());
        // Unsupported mapping/store combinations.
        let mut c = SketchConfig::fast(0.01, 2048);
        c.store = StoreKind::Sparse;
        c.max_bins = 0;
        assert!(c.validate().is_err());
        assert!(DDSketchBuilder::new(0.01)
            .mapping(MappingKind::LinearInterpolated)
            .build()
            .is_err());
        assert!(DDSketchBuilder::new(0.01)
            .mapping(MappingKind::QuadraticInterpolated)
            .build()
            .is_err());
        assert!(DDSketchBuilder::new(0.01).cubic().sparse().build().is_err());
    }

    #[test]
    fn unbounded_shorthands_clear_a_previous_bound() {
        // Last call wins: switching from a bounded shorthand to an
        // unbounded one must not leave a stale max_bins behind.
        assert_eq!(
            DDSketchBuilder::new(0.01)
                .dense_collapsing(2048)
                .sparse()
                .config()
                .unwrap(),
            SketchConfig::sparse(0.01)
        );
        assert_eq!(
            DDSketchBuilder::new(0.01)
                .sparse_collapsing(64)
                .unbounded()
                .config()
                .unwrap(),
            SketchConfig::unbounded(0.01)
        );
        // And switching back re-defaults the bound.
        assert_eq!(
            DDSketchBuilder::new(0.01)
                .dense_collapsing(64)
                .sparse()
                .dense_collapsing(128)
                .config()
                .unwrap(),
            SketchConfig::dense_collapsing(0.01, 128)
        );
    }

    #[test]
    fn unsupported_combinations_are_not_mislabeled() {
        let mut c = SketchConfig::sparse(0.01);
        c.mapping = MappingKind::LinearInterpolated;
        assert_eq!(c.name(), "DDSketch (unsupported)");
        assert!(c.validate().is_err());
        assert_eq!(SketchConfig::fast(0.01, 64).name(), "DDSketch (fast)");
    }

    #[test]
    fn all_configs_validate_and_build() {
        for config in SketchConfig::all(0.01, 1024) {
            config.validate().unwrap();
            let sketch = config.build().unwrap();
            assert_eq!(sketch.config(), config);
        }
    }
}
