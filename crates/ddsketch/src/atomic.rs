//! Lock-free concurrently-writable DDSketch: [`AtomicDDSketch`] and its
//! runtime-configured wrapper [`AnyAtomicDDSketch`].
//!
//! This is the sketch-level face of the atomic ingest plane
//! ([`crate::store::AtomicDenseStore`]): every ingestion method takes
//! `&self`, so any number of writer threads share one sketch with **no
//! lock and no CAS loop on the hot path** — one relaxed `fetch_add` into
//! the right bucket cell, plus relaxed summary-statistic updates.
//!
//! # What is atomic, and what a racing reader sees
//!
//! Each *counter* update is atomic; a logical `add` (bucket + count +
//! sum + min/max) is **not** one atomic transaction. A reader racing
//! writers therefore observes each statistic at some point during its
//! read — bucket counts can be momentarily ahead of the striped totals
//! and vice versa. Two reads are exact:
//!
//! * **Quiesced reads.** After writers quiesce with a happens-before edge
//!   to the reader (thread join, channel hand-off), a snapshot is exactly
//!   the sketch a single thread would have built from the union of every
//!   writer's values: bit-identical bins, count, min, max (the `f64` sum
//!   matches up to addition reassociation across threads).
//! * **Per-bucket consistency.** Even mid-race, each bucket's count is a
//!   real value the bucket held during the read (counts are never torn,
//!   lost, or double-counted), and the collapse clamp is applied with
//!   exact union-merge semantics when the snapshot is absorbed into a
//!   regular [`AnyDDSketch`].
//!
//! The summary statistics (total count, sum) are striped across
//! cache-padded slots indexed by a per-thread id, so same-core writers
//! don't bounce one shared line; min/max use an order-preserving `f64`
//! bit encoding with `fetch_min`/`fetch_max` (no CAS loop) behind a
//! cheap load-and-compare gate.
//!
//! Only the dense store families run on this plane: bucket identity must
//! be an array slot for a wait-free `fetch_add`. The sparse families keep
//! their locked-shard path in `pipeline` (their B-tree rebalancing cannot
//! be made lock-free with these techniques).

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, AtomicUsize};

use crossbeam::utils::CachePadded;

use crate::any::{dispatch, AnyDDSketch, AnyWeightedDDSketch};
use crate::config::SketchConfig;
use crate::mapping::{CubicInterpolatedMapping, IndexMapping, LogarithmicMapping, MappingKind};
use crate::store::{
    AtomicDenseStore, AtomicF64, AtomicSnapshotScratch, Cell, Count, SharedCell, Store, StoreKind,
};
use sketch_core::SketchError;

/// Number of summary stripes (power of two). Sixteen covers typical
/// writer-thread counts without false sharing; overflow threads share
/// stripes, which stays correct (just occasionally contended).
const STRIPES: usize = 16;

/// Sign bit of an `f64`'s bit pattern.
const SIGN: u64 = 1 << 63;

/// Map `f64` to `u64` preserving total order (`a < b ⇔ key(a) < key(b)`
/// for non-NaN), so min/max tracking is a plain integer
/// `fetch_min`/`fetch_max` instead of a CAS loop.
#[inline]
fn f64_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & SIGN != 0 {
        !bits
    } else {
        bits | SIGN
    }
}

/// Inverse of [`f64_key`].
#[inline]
fn key_f64(key: u64) -> f64 {
    if key & SIGN != 0 {
        f64::from_bits(key & !SIGN)
    } else {
        f64::from_bits(!key)
    }
}

/// Dense per-thread stripe ids: each thread grabs the next counter value
/// once and caches it. Ids are dense (0, 1, 2, …), so up to `STRIPES`
/// threads get private stripes.
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Relaxed);
    }
    ID.with(|id| *id) & (STRIPES - 1)
}

/// One cache line of summary counters, private to (usually) one thread.
/// The count cell matches the sketch's count plane (`AtomicU64` for
/// integer multiplicities, [`AtomicF64`] for weighted ingestion).
#[derive(Debug, Default)]
struct Stripe<C: SharedCell = AtomicU64> {
    count: C,
    /// `f64` bit pattern of this stripe's partial sum; updated by a CAS
    /// loop that only ever contends within the stripe.
    sum_bits: AtomicU64,
}

impl<C: SharedCell> Stripe<C> {
    fn add_sum(&self, add: f64) {
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Reusable buffers for [`AtomicDDSketch::snapshot_into`]; keep one per
/// reader and steady-state snapshots stop allocating once warm. `V` is
/// the count type of the plane being snapshotted (`u64` by default, `f64`
/// for the weighted plane).
#[derive(Debug, Default)]
pub struct AtomicSketchScratch<V: Count = u64> {
    store: AtomicSnapshotScratch<V>,
    raw: Vec<(i64, V)>,
    pos: Vec<(i32, V)>,
    neg: Vec<(i32, V)>,
}

/// A DDSketch whose every ingestion method takes `&self` (see module
/// docs). Reads go through [`AtomicDDSketch::snapshot_into`], which
/// materializes a regular sketch with union-merge semantics.
///
/// `C` selects the count plane: the default [`AtomicU64`] is the integer
/// plane every prior release shipped; [`AtomicF64`] (see
/// [`WeightedAtomicDDSketch`]) carries `f64` weighted multiplicities with
/// the same lock-free geometry (per-bucket `to_bits`/`from_bits` CAS).
#[derive(Debug)]
pub struct AtomicDDSketch<M: IndexMapping, C: SharedCell = AtomicU64> {
    mapping: M,
    config: SketchConfig,
    positive: AtomicDenseStore<C>,
    /// Holds **negated** indices, so the low-bucket fold of
    /// [`AtomicDenseStore`] collapses the *highest* magnitude buckets —
    /// the exact mirror the sequential negative store implements.
    negative: AtomicDenseStore<C>,
    zero_count: C,
    /// [`f64_key`]-encoded running minimum / maximum.
    min_key: AtomicU64,
    max_key: AtomicU64,
    stripes: Box<[CachePadded<Stripe<C>>]>,
}

/// The lock-free **weighted** sketch: `f64` counts end to end, every
/// ingestion method `&self`. Snapshots materialize into
/// [`AnyWeightedDDSketch`] via
/// [`AtomicDDSketch::snapshot_weighted_into`].
pub type WeightedAtomicDDSketch<M> = AtomicDDSketch<M, AtomicF64>;

impl<M: IndexMapping, C: SharedCell> AtomicDDSketch<M, C> {
    /// An empty sketch for `mapping` under `config` (already validated);
    /// `config.store` selects whether the stores fold (bounded families).
    fn with_mapping(mapping: M, config: SketchConfig) -> Self {
        let bound = config.store.is_bounded().then_some(config.max_bins);
        Self {
            mapping,
            config,
            positive: AtomicDenseStore::new(bound),
            negative: AtomicDenseStore::new(bound),
            zero_count: C::default(),
            min_key: AtomicU64::new(f64_key(f64::INFINITY)),
            max_key: AtomicU64::new(f64_key(f64::NEG_INFINITY)),
            stripes: (0..STRIPES).map(|_| CachePadded::default()).collect(),
        }
    }

    /// An empty sketch for `config`, validating that it names a dense
    /// store family (the only families the lock-free plane supports) and
    /// that `mapping` matches the configured family.
    pub fn with_config(mapping: M, config: SketchConfig) -> Result<Self, SketchError> {
        config.validate()?;
        if !matches!(
            config.store,
            StoreKind::Unbounded | StoreKind::CollapsingDense
        ) {
            return Err(SketchError::InvalidConfig(format!(
                "the lock-free ingest plane requires a dense store family (got {})",
                config.store.name()
            )));
        }
        if mapping.kind() != config.mapping {
            return Err(SketchError::InvalidConfig(format!(
                "mapping {:?} does not match configured {:?}",
                mapping.kind(),
                config.mapping
            )));
        }
        Ok(Self::with_mapping(mapping, config))
    }

    /// The configuration this sketch was built for.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Fold `value` into min/max through the keyed encoding. The common
    /// case (not a new extreme) is two relaxed loads, no RMW.
    #[inline]
    fn note_extremes(&self, value: f64) {
        let key = f64_key(value);
        if self.min_key.load(Relaxed) > key {
            self.min_key.fetch_min(key, Relaxed);
        }
        if self.max_key.load(Relaxed) < key {
            self.max_key.fetch_max(key, Relaxed);
        }
    }

    /// Insert one occurrence of `value`. Lock-free; shared reference.
    #[inline]
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        self.add_n(value, C::Value::ONE)
    }

    /// Insert `count` occurrences of `value`. Lock-free; shared reference.
    ///
    /// Validation matches [`crate::DDSketch::add_n`] exactly: non-finite
    /// and over-range values are rejected untouched, near-zero magnitudes
    /// land in the exact zero bucket. On the weighted plane an invalid
    /// count (NaN, infinite, negative) is rejected as `InvalidConfig`,
    /// matching [`crate::DDSketch::add_with_count`].
    pub fn add_n(&self, value: f64, count: C::Value) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if !count.is_valid() {
            return Err(SketchError::InvalidConfig(format!(
                "count {count:?} is not a valid multiplicity"
            )));
        }
        if count == C::Value::ZERO {
            return Ok(());
        }
        let magnitude = value.abs();
        if magnitude > self.mapping.max_indexable_value() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if magnitude < self.mapping.min_indexable_value() {
            self.zero_count.fetch_add(count);
        } else if value > 0.0 {
            self.positive
                .add_n(i64::from(self.mapping.index(value)), count);
        } else {
            self.negative
                .add_n(-i64::from(self.mapping.index(magnitude)), count);
        }
        self.note_extremes(value);
        let stripe = &self.stripes[stripe_id()];
        stripe.count.fetch_add(count);
        stripe.add_sum(value * count.to_f64());
        Ok(())
    }

    /// [`AtomicDDSketch::add_n`] under the name the sequential weighted
    /// plane uses.
    #[inline]
    pub fn add_with_count(&self, value: f64, count: C::Value) -> Result<(), SketchError> {
        self.add_n(value, count)
    }

    /// Insert a batch. All-or-nothing like the sequential fast path: the
    /// whole slice is validated before the first counter moves, and the
    /// summary stripes are updated once per batch rather than per value.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        let max_indexable = self.mapping.max_indexable_value();
        for &v in values {
            if !v.is_finite() || v.abs() > max_indexable {
                return Err(SketchError::UnsupportedValue(v));
            }
        }
        let min_indexable = self.mapping.min_indexable_value();
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for &v in values {
            let magnitude = v.abs();
            if magnitude < min_indexable {
                self.zero_count.fetch_add(C::Value::ONE);
            } else if v > 0.0 {
                self.positive
                    .add_n(i64::from(self.mapping.index(v)), C::Value::ONE);
            } else {
                self.negative
                    .add_n(-i64::from(self.mapping.index(magnitude)), C::Value::ONE);
            }
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if values.is_empty() {
            return Ok(());
        }
        self.note_extremes(min);
        self.note_extremes(max);
        let stripe = &self.stripes[stripe_id()];
        stripe
            .count
            .fetch_add(C::Value::from_u64(values.len() as u64));
        stripe.add_sum(sum);
        Ok(())
    }

    /// Total inserted count (striped totals + zero bucket). Lock-free;
    /// exact at quiescence, momentarily approximate while racing writers.
    pub fn count(&self) -> C::Value {
        let mut striped = C::Value::ZERO;
        for s in self.stripes.iter() {
            striped += s.count.get();
        }
        striped
    }

    /// Whether no data has been inserted (subject to the same racing-read
    /// caveat as [`AtomicDDSketch::count`]).
    pub fn is_empty(&self) -> bool {
        self.count() == C::Value::ZERO
    }

    /// Structural memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.positive.memory_bytes()
            + self.negative.memory_bytes()
            + self.stripes.len() * std::mem::size_of::<CachePadded<Stripe<C>>>()
    }

    /// Raw summary pieces shared by both snapshot planes.
    fn summary_parts(&self) -> (f64, f64, f64) {
        let min = key_f64(self.min_key.load(Relaxed));
        let max = key_f64(self.max_key.load(Relaxed));
        let sum: f64 = self
            .stripes
            .iter()
            .map(|s| f64::from_bits(s.sum_bits.load(Relaxed)))
            .sum();
        (min, max, sum)
    }

    /// Scan both stores into `scratch` (positive ascending, negative
    /// un-negated), the shared first half of every snapshot.
    fn scan_stores(&self, scratch: &mut AtomicSketchScratch<C::Value>) {
        scratch.pos.clear();
        scratch.neg.clear();
        scratch.raw.clear();
        self.positive
            .snapshot_bins(&mut scratch.raw, &mut scratch.store);
        for &(i, c) in &scratch.raw {
            scratch.pos.push((i as i32, c));
        }
        scratch.raw.clear();
        self.negative
            .snapshot_bins(&mut scratch.raw, &mut scratch.store);
        for &(i, c) in &scratch.raw {
            // Stored negated; un-negate to the mapping's real index.
            scratch.neg.push(((-i) as i32, c));
        }
    }
}

impl<M: IndexMapping> AtomicDDSketch<M> {
    /// Absorb a regular sketch's contents (the [`LocalIngest`] publish
    /// path): every bin is `fetch_add`ed, summaries are folded. Union
    /// semantics — bounded clamping happens at snapshot time exactly as a
    /// merge would apply it. Allocation-free.
    ///
    /// The caller (the `Any` wrapper) has already checked configuration
    /// compatibility.
    fn absorb_sketch(&self, other: &AnyDDSketch) {
        dispatch!(other, s => {
            for (i, c) in s.positive_store().bin_iter() {
                self.positive.add_n(i64::from(i), c);
            }
            for (i, c) in s.negative_store().bin_iter() {
                self.negative.add_n(-i64::from(i), c);
            }
        });
        let zeros = other.zero_count();
        if zeros > 0 {
            SharedCell::fetch_add(&self.zero_count, zeros);
        }
        if let Some(min) = other.min() {
            self.note_extremes(min);
        }
        if let Some(max) = other.max() {
            self.note_extremes(max);
        }
        let count = other.count();
        if count > 0 {
            let stripe = &self.stripes[stripe_id()];
            SharedCell::fetch_add(&stripe.count, count);
            stripe.add_sum(other.sum());
        }
    }

    /// Materialize the current contents into `target` (cleared first),
    /// which must have been built for the same [`SketchConfig`].
    ///
    /// The bucket scan is epoch-validated against concurrent folds; see
    /// the module docs for what a racing read observes. With `scratch`
    /// reused across calls, steady-state snapshots do not allocate beyond
    /// the target's own store growth.
    pub fn snapshot_into(
        &self,
        target: &mut AnyDDSketch,
        scratch: &mut AtomicSketchScratch,
    ) -> Result<(), SketchError> {
        if target.config() != self.config {
            return Err(SketchError::IncompatibleMerge(format!(
                "snapshot target config {:?} != atomic sketch config {:?}",
                target.config(),
                self.config
            )));
        }
        target.clear();
        self.scan_stores(scratch);
        let (min, max, sum) = self.summary_parts();
        target.absorb_raw(
            Cell::get(&self.zero_count),
            min,
            max,
            sum,
            &scratch.pos,
            &scratch.neg,
        );
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`AtomicDDSketch::snapshot_into`].
    pub fn snapshot(&self) -> Result<AnyDDSketch, SketchError> {
        let mut target = AnyDDSketch::new(self.config)?;
        let mut scratch = AtomicSketchScratch::default();
        self.snapshot_into(&mut target, &mut scratch)?;
        Ok(target)
    }
}

impl<M: IndexMapping> WeightedAtomicDDSketch<M> {
    /// Absorb a weighted sketch's contents — the weighted mirror of
    /// [`AtomicDDSketch::absorb`] on the integer plane. The donor must
    /// share this sketch's configuration.
    pub fn absorb_weighted(&self, other: &AnyWeightedDDSketch) -> Result<(), SketchError> {
        if other.config() != self.config {
            return Err(SketchError::IncompatibleMerge(format!(
                "cannot absorb {:?} into atomic sketch {:?}",
                other.config(),
                self.config
            )));
        }
        for (i, c) in other.positive_bins() {
            self.positive.add_n(i64::from(i), c);
        }
        for (i, c) in other.negative_bins() {
            self.negative.add_n(-i64::from(i), c);
        }
        let zeros = other.zero_weight();
        if zeros > 0.0 {
            SharedCell::fetch_add(&self.zero_count, zeros);
        }
        if let Some(min) = other.min() {
            self.note_extremes(min);
        }
        if let Some(max) = other.max() {
            self.note_extremes(max);
        }
        let count = other.weighted_count();
        if count > 0.0 {
            let stripe = &self.stripes[stripe_id()];
            SharedCell::fetch_add(&stripe.count, count);
            stripe.add_sum(other.sum());
        }
        Ok(())
    }

    /// Materialize the weighted plane's contents into `target` (cleared
    /// first), which must have been built for the same [`SketchConfig`] —
    /// the weighted mirror of [`AtomicDDSketch::snapshot_into`].
    pub fn snapshot_weighted_into(
        &self,
        target: &mut AnyWeightedDDSketch,
        scratch: &mut AtomicSketchScratch<f64>,
    ) -> Result<(), SketchError> {
        if target.config() != self.config {
            return Err(SketchError::IncompatibleMerge(format!(
                "snapshot target config {:?} != atomic sketch config {:?}",
                target.config(),
                self.config
            )));
        }
        target.clear();
        self.scan_stores(scratch);
        let (min, max, sum) = self.summary_parts();
        target.absorb_raw(
            Cell::get(&self.zero_count),
            min,
            max,
            sum,
            &scratch.pos,
            &scratch.neg,
        );
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`WeightedAtomicDDSketch::snapshot_weighted_into`].
    pub fn snapshot_weighted(&self) -> Result<AnyWeightedDDSketch, SketchError> {
        let mut target = AnyWeightedDDSketch::new(self.config)?;
        let mut scratch = AtomicSketchScratch::default();
        self.snapshot_weighted_into(&mut target, &mut scratch)?;
        Ok(target)
    }
}

/// Runtime-configured [`AtomicDDSketch`]: one enum over the dense-family
/// mappings, mirroring how [`AnyDDSketch`] wraps the sequential presets.
#[derive(Debug)]
pub enum AnyAtomicDDSketch {
    /// Exact logarithmic mapping (unbounded or collapsing dense stores).
    Log(AtomicDDSketch<LogarithmicMapping>),
    /// Cubic-interpolated mapping (the `fast` preset's collapsing dense
    /// stores).
    Cubic(AtomicDDSketch<CubicInterpolatedMapping>),
}

/// Dispatch over the wrapped mapping, mirroring `any::dispatch!`.
macro_rules! adispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnyAtomicDDSketch::Log($s) => $body,
            AnyAtomicDDSketch::Cubic($s) => $body,
        }
    };
}

impl AnyAtomicDDSketch {
    /// Whether `config` can run on the lock-free plane (dense store
    /// families only; see module docs).
    pub fn supports(config: &SketchConfig) -> bool {
        matches!(
            config.store,
            StoreKind::Unbounded | StoreKind::CollapsingDense
        ) && matches!(
            config.mapping,
            MappingKind::Logarithmic | MappingKind::CubicInterpolated
        )
    }

    /// Build an empty lock-free sketch for `config`.
    ///
    /// Errors with `InvalidConfig` for the sparse store families, which
    /// stay on the locked plane.
    pub fn new(config: SketchConfig) -> Result<Self, SketchError> {
        config.validate()?;
        if !Self::supports(&config) {
            return Err(SketchError::InvalidConfig(format!(
                "the lock-free ingest plane requires a dense store family \
                 (got {:?} / {})",
                config.mapping,
                config.store.name()
            )));
        }
        Ok(match config.mapping {
            MappingKind::Logarithmic => AnyAtomicDDSketch::Log(AtomicDDSketch::with_mapping(
                LogarithmicMapping::new(config.alpha)?,
                config,
            )),
            MappingKind::CubicInterpolated => AnyAtomicDDSketch::Cubic(
                AtomicDDSketch::with_mapping(CubicInterpolatedMapping::new(config.alpha)?, config),
            ),
            _ => unreachable!("supports() limits the mapping kinds"),
        })
    }

    /// The configuration this sketch was built for.
    pub fn config(&self) -> SketchConfig {
        adispatch!(self, s => s.config())
    }

    /// Insert one occurrence of `value`. Lock-free; shared reference.
    #[inline]
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        adispatch!(self, s => s.add(value))
    }

    /// Insert `count` occurrences of `value`. Lock-free; shared reference.
    pub fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        adispatch!(self, s => s.add_n(value, count))
    }

    /// Insert a batch (all-or-nothing validation). Lock-free.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        adispatch!(self, s => s.add_slice(values))
    }

    /// Total inserted count (exact at quiescence).
    pub fn count(&self) -> u64 {
        adispatch!(self, s => s.count())
    }

    /// Whether no data has been inserted.
    pub fn is_empty(&self) -> bool {
        adispatch!(self, s => s.is_empty())
    }

    /// Absorb a regular sketch (the thread-local publish path). The
    /// donor must share this sketch's configuration.
    pub fn absorb(&self, other: &AnyDDSketch) -> Result<(), SketchError> {
        let (ours, theirs) = (self.config(), other.config());
        if ours != theirs {
            return Err(SketchError::IncompatibleMerge(format!(
                "cannot absorb {:?} into atomic sketch {ours:?}",
                theirs
            )));
        }
        adispatch!(self, s => s.absorb_sketch(other));
        Ok(())
    }

    /// Materialize into `target` (same config, cleared first); see
    /// [`AtomicDDSketch::snapshot_into`].
    pub fn snapshot_into(
        &self,
        target: &mut AnyDDSketch,
        scratch: &mut AtomicSketchScratch,
    ) -> Result<(), SketchError> {
        adispatch!(self, s => s.snapshot_into(target, scratch))
    }

    /// Allocating convenience snapshot.
    pub fn snapshot(&self) -> Result<AnyDDSketch, SketchError> {
        adispatch!(self, s => s.snapshot())
    }

    /// Structural memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        adispatch!(self, s => s.memory_bytes())
    }
}

impl<M: IndexMapping + Sync> sketch_core::ConcurrentIngest for AtomicDDSketch<M> {
    fn add(&self, value: f64) -> Result<(), SketchError> {
        AtomicDDSketch::add(self, value)
    }

    fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        AtomicDDSketch::add_n(self, value, count)
    }

    fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        AtomicDDSketch::add_slice(self, values)
    }

    fn count(&self) -> u64 {
        AtomicDDSketch::count(self)
    }
}

impl sketch_core::ConcurrentIngest for AnyAtomicDDSketch {
    fn add(&self, value: f64) -> Result<(), SketchError> {
        AnyAtomicDDSketch::add(self, value)
    }

    fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        AnyAtomicDDSketch::add_n(self, value, count)
    }

    fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        AnyAtomicDDSketch::add_slice(self, values)
    }

    fn count(&self) -> u64 {
        AnyAtomicDDSketch::count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_configs() -> Vec<SketchConfig> {
        vec![
            SketchConfig::unbounded(0.01),
            SketchConfig::dense_collapsing(0.01, 512),
            SketchConfig::fast(0.01, 512),
        ]
    }

    #[test]
    fn key_encoding_preserves_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                f64_key(w[0]) <= f64_key(w[1]),
                "key order broke between {} and {}",
                w[0],
                w[1]
            );
        }
        for v in values {
            assert_eq!(key_f64(f64_key(v)).to_bits(), v.to_bits());
        }
        assert!(f64_key(-0.0) < f64_key(0.0));
    }

    #[test]
    fn sequential_adds_match_plain_sketch_exactly() {
        for config in dense_configs() {
            let atomic = AnyAtomicDDSketch::new(config).unwrap();
            let mut plain = AnyDDSketch::new(config).unwrap();
            for i in 1..=4000 {
                let v = f64::from(i) * 0.37 * if i % 5 == 0 { -1.0 } else { 1.0 };
                atomic.add(v).unwrap();
                plain.add(v).unwrap();
            }
            atomic.add(1e-300).unwrap();
            plain.add(1e-300).unwrap();
            let snap = atomic.snapshot().unwrap();
            assert_eq!(snap.config(), config);
            assert_eq!(snap.count(), plain.count(), "{}", config.name());
            assert_eq!(snap.positive_bins(), plain.positive_bins());
            assert_eq!(snap.negative_bins(), plain.negative_bins());
            assert_eq!(snap.min(), plain.min());
            assert_eq!(snap.max(), plain.max());
            assert_eq!(snap.zero_count(), plain.zero_count());
            assert_eq!(snap.sum().to_bits(), plain.sum().to_bits());
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                assert_eq!(
                    snap.quantile(q).unwrap(),
                    plain.quantile(q).unwrap(),
                    "{} q={q}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn rejects_what_the_plain_sketch_rejects() {
        let atomic = AnyAtomicDDSketch::new(SketchConfig::unbounded(0.01)).unwrap();
        assert!(matches!(
            atomic.add(f64::NAN),
            Err(SketchError::UnsupportedValue(_))
        ));
        assert!(atomic.add(f64::INFINITY).is_err());
        assert!(atomic.add(f64::MAX).is_err(), "beyond max indexable");
        // Batch validation is all-or-nothing.
        assert!(atomic.add_slice(&[1.0, f64::NAN, 2.0]).is_err());
        assert_eq!(atomic.count(), 0, "failed batch must not ingest");
        assert!(atomic.add_slice(&[]).is_ok());
        assert!(atomic.is_empty());
    }

    #[test]
    fn sparse_configs_are_rejected() {
        let sparse = SketchConfig::sparse(0.01);
        assert!(!AnyAtomicDDSketch::supports(&sparse));
        assert!(matches!(
            AnyAtomicDDSketch::new(sparse),
            Err(SketchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn add_slice_matches_scalar_adds_bucketwise() {
        for config in dense_configs() {
            let batched = AnyAtomicDDSketch::new(config).unwrap();
            let scalar = AnyAtomicDDSketch::new(config).unwrap();
            let values: Vec<f64> = (1..=2000)
                .map(|i| f64::from(i) * 0.11 * if i % 3 == 0 { -1.0 } else { 1.0 })
                .collect();
            batched.add_slice(&values).unwrap();
            for &v in &values {
                scalar.add(v).unwrap();
            }
            let bs = batched.snapshot().unwrap();
            let ss = scalar.snapshot().unwrap();
            assert_eq!(bs.count(), ss.count());
            assert_eq!(bs.positive_bins(), ss.positive_bins());
            assert_eq!(bs.negative_bins(), ss.negative_bins());
            assert_eq!(bs.min(), ss.min());
            assert_eq!(bs.max(), ss.max());
        }
    }

    #[test]
    fn absorb_equals_union_merge() {
        for config in dense_configs() {
            let atomic = AnyAtomicDDSketch::new(config).unwrap();
            let mut donor = AnyDDSketch::new(config).unwrap();
            let mut reference = AnyDDSketch::new(config).unwrap();
            for i in 1..=1000 {
                let direct = f64::from(i) * 0.9;
                atomic.add(direct).unwrap();
                reference.add(direct).unwrap();
                let local = f64::from(i) * -1.3;
                donor.add(local).unwrap();
                reference.add(local).unwrap();
            }
            atomic.absorb(&donor).unwrap();
            let snap = atomic.snapshot().unwrap();
            assert_eq!(snap.count(), reference.count());
            assert_eq!(snap.positive_bins(), reference.positive_bins());
            assert_eq!(snap.negative_bins(), reference.negative_bins());
            assert_eq!(snap.min(), reference.min());
            assert_eq!(snap.max(), reference.max());

            // Config mismatch is rejected.
            let other = AnyDDSketch::new(SketchConfig::sparse(0.01)).unwrap();
            assert!(matches!(
                atomic.absorb(&other),
                Err(SketchError::IncompatibleMerge(_))
            ));
        }
    }

    #[test]
    fn concurrent_mixed_ingest_is_exact_after_join() {
        for config in dense_configs() {
            let atomic = AnyAtomicDDSketch::new(config).unwrap();
            let threads = 8;
            let per_thread = 5_000;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let atomic = &atomic;
                    s.spawn(move || {
                        let base: Vec<f64> = (0..per_thread)
                            .map(|i| (t * per_thread + i + 1) as f64 * 1e-3)
                            .collect();
                        // Mix scalar, weighted, negative, and batch adds.
                        for chunk in base.chunks(97) {
                            atomic.add_slice(chunk).unwrap();
                        }
                        for &v in base.iter().step_by(50) {
                            atomic.add_n(-v, 2).unwrap();
                        }
                    });
                }
            });
            let mut reference = AnyDDSketch::new(config).unwrap();
            for t in 0..threads {
                for i in 0..per_thread {
                    let v = (t * per_thread + i + 1) as f64 * 1e-3;
                    reference.add(v).unwrap();
                }
                for i in (0..per_thread).step_by(50) {
                    let v = (t * per_thread + i + 1) as f64 * 1e-3;
                    reference.add_n(-v, 2).unwrap();
                }
            }
            let snap = atomic.snapshot().unwrap();
            assert_eq!(snap.count(), reference.count(), "{}", config.name());
            assert_eq!(atomic.count(), reference.count());
            assert_eq!(snap.positive_bins(), reference.positive_bins());
            assert_eq!(snap.negative_bins(), reference.negative_bins());
            assert_eq!(snap.min(), reference.min());
            assert_eq!(snap.max(), reference.max());
            assert!((snap.sum() - reference.sum()).abs() <= reference.sum().abs() * 1e-9);
        }
    }

    #[test]
    fn snapshot_into_recycles_and_rejects_mismatched_targets() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        let atomic = AnyAtomicDDSketch::new(config).unwrap();
        for i in 1..=1000 {
            atomic.add(f64::from(i)).unwrap();
        }
        let mut scratch = AtomicSketchScratch::default();
        let mut target = AnyDDSketch::new(config).unwrap();
        atomic.snapshot_into(&mut target, &mut scratch).unwrap();
        let first_count = target.count();
        // Reuse: target is cleared, not accumulated into.
        atomic.snapshot_into(&mut target, &mut scratch).unwrap();
        assert_eq!(target.count(), first_count);

        let mut wrong = AnyDDSketch::new(SketchConfig::unbounded(0.01)).unwrap();
        assert!(atomic.snapshot_into(&mut wrong, &mut scratch).is_err());
    }

    #[test]
    fn bounded_snapshot_collapses_like_a_merge() {
        let config = SketchConfig::dense_collapsing(0.01, 64);
        let atomic = AnyAtomicDDSketch::new(config).unwrap();
        let mut plain = AnyDDSketch::new(config).unwrap();
        // Wide dynamic range forces collapsing.
        for i in 1..=6000 {
            let v = f64::from(i) * f64::from(i);
            atomic.add(v).unwrap();
            plain.add(v).unwrap();
        }
        let snap = atomic.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.positive_bins(), plain.positive_bins());
        assert!(snap.has_collapsed());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(snap.quantile(q).unwrap(), plain.quantile(q).unwrap());
        }
    }
}
