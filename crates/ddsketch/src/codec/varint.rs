//! LEB128 varints and zigzag signs: the integer substrate of the codec.
//!
//! Exposed publicly (not just within the crate) because composite frame
//! payloads — e.g. the pipeline's checkpoint cells, which prepend metric
//! ids and window starts to sketch bytes — are built from the same
//! primitives, and a second varint dialect on top of the frame stream
//! would be a bug farm.

use bytes::{Buf, BufMut};
use sketch_core::SketchError;

/// Append `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Consume one LEB128 varint from the front of `buf`.
///
/// Truncated or over-long (> 64 bit) varints fail with
/// [`SketchError::Malformed`] — structural corruption, not a semantic
/// mismatch.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, SketchError> {
    let mut pos = 0usize;
    let v = scan_varint(buf, &mut pos)?;
    buf.advance(pos);
    Ok(v)
}

/// Cursor-based fast variant of [`get_varint`]: single bounds check and
/// an early return on the 1-byte encoding that dominates real bin
/// sections (small counts, small gaps). The hot loops of the view parser
/// and the borrowed bin walk run on this.
#[inline]
pub(crate) fn scan_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, SketchError> {
    let byte = *bytes
        .get(*pos)
        .ok_or_else(|| SketchError::Malformed("truncated varint".into()))?;
    *pos += 1;
    if byte < 0x80 {
        return Ok(u64::from(byte));
    }
    let mut v = u64::from(byte & 0x7f);
    let mut shift = 7u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| SketchError::Malformed("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(SketchError::Malformed("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Split the **trailing** varint off an already-validated varint sequence.
///
/// LEB128 marks the final byte of every varint with a clear continuation
/// bit, so varint boundaries are recoverable walking *backward*: the last
/// varint of `bytes` starts right after the previous clear-bit byte. This
/// is what makes the borrowed bin walk double-ended — the negative-store
/// quantile walk reads delta-coded bins from the back without decoding the
/// whole section first.
///
/// Only call on byte regions whose varint partition was validated by a
/// forward pass (as [`crate::codec::SketchView::parse`] does); on arbitrary
/// bytes the boundary scan is meaningless.
pub(crate) fn rsplit_varint(bytes: &[u8]) -> (&[u8], u64) {
    debug_assert!(!bytes.is_empty(), "rsplit_varint on an empty region");
    let mut start = bytes.len() - 1;
    while start > 0 && bytes[start - 1] & 0x80 != 0 {
        start -= 1;
    }
    let (rest, tail) = bytes.split_at(start);
    let mut v = 0u64;
    for (k, &byte) in tail.iter().enumerate() {
        v |= u64::from(byte & 0x7f) << (7 * k as u32);
    }
    (rest, v)
}

/// Append one `DDS3` weighted count.
///
/// Integral counts representable exactly in an `f64` (≤ 2⁵³) ride the
/// varint fast path as `count << 1` (always even); everything else is the
/// escape marker `1` followed by the raw little-endian `f64` bits. Odd
/// tags other than `1` are reserved and never emitted, so decoders reject
/// them as structural corruption.
pub fn put_weighted_count(buf: &mut Vec<u8>, count: f64) {
    match crate::store::Count::to_u64_exact(count) {
        // `to_u64_exact` caps at 2^53, so the shift cannot overflow.
        Some(n) => put_varint(buf, n << 1),
        None => {
            put_varint(buf, 1);
            buf.extend_from_slice(&count.to_le_bytes());
        }
    }
}

/// Cursor-based decode of one `DDS3` weighted count (see
/// [`put_weighted_count`] for the layout). Returns the decoded `f64`
/// without judging its value — validity rules (non-zero bins, finite
/// non-negative totals) belong to the section parsers.
pub(crate) fn scan_weighted_count(bytes: &[u8], pos: &mut usize) -> Result<f64, SketchError> {
    let tag = scan_varint(bytes, pos)?;
    if tag & 1 == 0 {
        return Ok((tag >> 1) as f64);
    }
    if tag != 1 {
        return Err(SketchError::Malformed(format!(
            "reserved weighted-count tag {tag}"
        )));
    }
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| SketchError::Malformed("truncated weighted count".into()))?;
    let raw: [u8; 8] = bytes[*pos..end].try_into().expect("8-byte slice");
    *pos = end;
    Ok(f64::from_le_bytes(raw))
}

/// Zigzag-encode a signed value so small magnitudes stay small varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn reverse_split_recovers_every_varint() {
        let values = [0u64, 1, 127, 128, 16_384, 300, u64::MAX, 5];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut region = buf.as_slice();
        for &v in values.iter().rev() {
            let (rest, got) = rsplit_varint(region);
            assert_eq!(got, v);
            region = rest;
        }
        assert!(region.is_empty());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_and_overlong_varints_are_malformed() {
        let mut long = vec![0x80u8; 10];
        long.push(0x02); // 71 bits of payload
        for bytes in [&[] as &[u8], &[0x80], &[0xff, 0xff], &long] {
            let mut slice = bytes;
            assert!(matches!(
                get_varint(&mut slice),
                Err(SketchError::Malformed(_))
            ));
        }
    }
}
