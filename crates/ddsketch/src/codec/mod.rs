//! The wire plane: compact binary codec, borrowed views, mixed-source
//! merges, and frame streams.
//!
//! DDSketch is designed for agents that ship sketches to a central
//! monitoring system every few seconds (paper Figure 1), so the codec is
//! built for the *aggregator's* economics, not just the producer's:
//!
//! * [`SketchPayload`] + [`AnyDDSketch::decode`] — the materializing
//!   path: reconstruct a full sketch from bytes (self-describing, no
//!   caller-side type knowledge).
//! * [`SketchView`] — the decode-free path: a validated, zero-allocation
//!   **borrowed view** over the bytes exposing the same header accessors
//!   and bin walks as a live sketch. Views join the merge plane through
//!   [`SketchSource`], so an aggregator answers p50/p99 over N payloads
//!   and folds payloads into a resident sketch without materializing a
//!   single intermediate sketch.
//! * [`FrameWriter`] / [`FrameReader`] — a length-prefixed frame stream
//!   for batching many payloads per connection or file (and the substrate
//!   of the pipeline's `TimeSeriesStore` checkpoints).
//!
//! ## The `DDS2` payload layout
//!
//! | field | encoding |
//! |-------|----------|
//! | magic | 4 bytes `"DDS2"` |
//! | kind | u8 mapping family ([`MappingKind`]) |
//! | store | u8 store family ([`StoreKind`]) |
//! | alpha | f64 LE relative accuracy |
//! | limit | varint bucket limit (0 = unbounded) |
//! | zero | varint zero-bucket count |
//! | min, max, sum | 3 × f64 LE (empty state: `+∞`, `−∞`, `0`) |
//! | positive | bin section (below) |
//! | negative | bin section |
//!
//! A bin section is `varint n`, then — if `n > 0` —
//! `zigzag-varint first_index`, and `n` counts interleaved with `n − 1`
//! gaps (`gap = index_delta − 1`; indices are strictly ascending), all
//! LEB128 varints. A warm sketch with mostly small dense counts costs
//! ~2 bytes per non-empty bucket.
//!
//! ## The `DDS3` weighted payload layout
//!
//! | field | encoding |
//! |-------|----------|
//! | magic | 4 bytes `"DDS3"` |
//! | kind | u8 mapping family ([`MappingKind`]) |
//! | store | u8 store family ([`StoreKind`]) |
//! | alpha | f64 LE relative accuracy |
//! | limit | varint bucket limit (0 = unbounded) |
//! | zero | **weighted count** zero-bucket weight |
//! | min, max, sum | 3 × f64 LE (empty state: `+∞`, `−∞`, `0`) |
//! | positive | weighted bin section |
//! | negative | weighted bin section |
//!
//! `DDS3` is `DDS2` with every count generalized to `f64`. A *weighted
//! count* is one varint tag `v`: even `v` means the integral count
//! `v >> 1` (so integer-weight payloads cost exactly what `DDS2` charges,
//! plus nothing); `v == 1` escapes to 8 raw little-endian `f64` bytes;
//! odd `v > 1` is reserved and rejected. Weighted bin sections use the
//! same strictly-ascending delta-coded indices as the integer layout with
//! weighted counts in place of varint counts. Bin weights must be finite
//! and strictly positive, the zero-bucket weight finite and non-negative,
//! and every per-section and whole-payload total finite — NaN, infinite,
//! and negative counts are structural corruption ([`SketchError::
//! Malformed`]), enforced identically by [`SketchView::parse`] and
//! [`WeightedSketchPayload::decode`]. Because the escape's raw `f64`
//! bytes are opaque to LEB128 boundary recovery, weighted bin walks are
//! **forward-only** (descending walks materialize through a scratch
//! buffer). [`SketchPayload::decode`] deliberately rejects `DDS3`
//! (integer receivers cannot hold fractional weights);
//! [`WeightedSketchPayload::decode`] and [`SketchView::parse`] accept all
//! three dialects.
//!
//! Decoders never trust a declared length: bin counts are clamped against
//! the bytes actually present before any allocation, dense-store growth
//! (bucket-index span, bucket limit) is capped by
//! [`MAX_DECODE_DENSE_SPAN`] before any store exists, and structural
//! corruption (truncation, overflow, trailing garbage after the negative
//! store) fails with [`SketchError::Malformed`] rather than panicking or
//! ballooning memory.
//!
//! ## View lifetimes
//!
//! A [`SketchView`] borrows the buffer it was parsed from — `SketchView:
//! 'a` where the bytes are `&'a [u8]` — and so does every
//! [`view::ViewBinIter`] it hands out. Nothing is copied: receiving code
//! can parse a network buffer, answer quantiles over it, fold it into a
//! resident sketch, and only then reuse the buffer for the next payload;
//! the borrow checker enforces that ordering. Views are `Copy` (two
//! slices and a few scalars).
//!
//! ## Frame-stream layout
//!
//! A frame stream is `"DDSF"`, a version byte (`1`), then frames:
//! `varint length` + `length` payload bytes, ending at clean EOF. The
//! framing is payload-agnostic — sketch payloads, checkpoint cells, or
//! any other blob — and the reader clamps declared lengths against a
//! configurable ceiling before allocating.
//!
//! ## Legacy `DDS1` payloads
//!
//! The v1 format lacked the `store` byte, so the store family must be
//! **guessed** from the bucket limit: `limit > 0` is read as collapsing
//! dense stores (the only bounded v1 producers in practice were the
//! bounded/fast presets) and `limit == 0` as unbounded dense stores. The
//! guess is documented rather than reliable — v1 payloads from the sparse
//! preset are literally indistinguishable from unbounded ones (both
//! encoded `limit == 0`), and bounded v1 payloads from the paper-exact
//! preset decode as collapsing-dense. Callers who *know* their producer
//! can override the guess with [`AnyDDSketch::decode_v1_as`]; `DDS2`
//! exists precisely to close the ambiguity. Decoders accept both formats,
//! encoders only emit v2.

pub mod frame;
pub mod source;
pub mod varint;
pub mod view;

pub use frame::{
    FrameDecoder, FrameReader, FrameWriter, DEFAULT_MAX_FRAME_LEN, FRAME_STREAM_VERSION,
};
pub use source::{SketchSource, SourceQuantileScratch, WeightedMergeScratch};
pub use view::{SketchView, SketchViewMeta, ViewBinIter, WeightedViewBinIter};

use bytes::{Buf, BufMut};

use crate::any::AnyDDSketch;
use crate::mapping::{IndexMapping, MappingKind};
use crate::presets::{
    BoundedDDSketch, FastDDSketch, PaperExactDDSketch, SparseDDSketch, UnboundedDDSketch,
};
use crate::sketch::DDSketch;
use crate::store::{Store, StoreKind};
use sketch_core::SketchError;
use varint::{get_varint, put_varint, unzigzag, zigzag};

pub(crate) const MAGIC_V1: &[u8; 4] = b"DDS1";
pub(crate) const MAGIC: &[u8; 4] = b"DDS2";
pub(crate) const MAGIC_V3: &[u8; 4] = b"DDS3";

/// Mapping-agnostic serializable snapshot of a sketch's state.
///
/// Any `DDSketch` converts to a payload with [`DDSketch::to_payload`], and
/// each preset converts back via its `from_payload` constructor — or, when
/// the concrete type is only known at runtime, via
/// [`AnyDDSketch::from_payload`], which dispatches on the mapping and
/// store discriminants. (The offline build has no `serde`; the plain-data
/// payload struct is the integration point where a serde derive would go.)
///
/// The payload materializes both bin vectors; when the bytes only need to
/// be *read* — merged, queried, forwarded — prefer [`SketchView`], which
/// borrows them in place.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchPayload {
    /// Mapping family discriminant ([`MappingKind`] as u8).
    pub kind: u8,
    /// Store family discriminant ([`StoreKind`] as u8). For payloads read
    /// from legacy `DDS1` bytes this is a documented guess (see the module
    /// docs), not ground truth.
    pub store: u8,
    /// Relative accuracy α.
    pub relative_accuracy: f64,
    /// Bucket limit of the positive store; 0 means unbounded.
    pub bin_limit: u64,
    /// Exact zero-bucket count.
    pub zero_count: u64,
    /// Tracked minimum (`+∞` when empty).
    pub min: f64,
    /// Tracked maximum (`−∞` when empty).
    pub max: f64,
    /// Exact sum of inserted values.
    pub sum: f64,
    /// Positive-store bins, ascending index.
    pub positive: Vec<(i32, u64)>,
    /// Negative-store bins, ascending index (of |x|).
    pub negative: Vec<(i32, u64)>,
}

fn put_bins(buf: &mut Vec<u8>, bins: &[(i32, u64)]) {
    put_varint(buf, bins.len() as u64);
    let mut prev: Option<i32> = None;
    for &(idx, count) in bins {
        match prev {
            None => put_varint(buf, zigzag(idx as i64)),
            Some(p) => {
                debug_assert!(idx > p, "bins must be strictly ascending");
                put_varint(buf, (idx as i64 - p as i64 - 1) as u64);
            }
        }
        put_varint(buf, count);
        prev = Some(idx);
    }
}

/// Decode one bin section into `out` (cleared first, capacity reused).
///
/// Runs on the cursor-based fast scanner: this is the aggregator's
/// per-received-frame hot loop.
fn get_bins_into(buf: &mut &[u8], out: &mut Vec<(i32, u64)>) -> Result<(), SketchError> {
    use varint::scan_varint;
    out.clear();
    let bytes = *buf;
    let mut pos = 0usize;
    let n = scan_varint(bytes, &mut pos)?;
    // Each bin needs at least 2 bytes (index-or-gap varint + count
    // varint); clamp the declared length against the bytes actually
    // remaining **before** allocating, so hostile payloads cannot request
    // huge vectors.
    let n = usize::try_from(n)
        .ok()
        .filter(|n| {
            n.checked_mul(2)
                .is_some_and(|floor| floor <= bytes.len() - pos)
        })
        .ok_or_else(|| SketchError::Malformed(format!("bin count {n} exceeds payload size")))?;
    out.reserve(n);
    if n > 0 {
        // First bin peeled: absolute zigzag index instead of a gap.
        let mut idx = unzigzag(scan_varint(bytes, &mut pos)?);
        if idx < i64::from(i32::MIN) || idx > i64::from(i32::MAX) {
            return Err(SketchError::Malformed(format!(
                "bin index {idx} out of i32 range"
            )));
        }
        let count = scan_varint(bytes, &mut pos)?;
        if count == 0 {
            return Err(SketchError::Malformed("zero-count bin".into()));
        }
        out.push((idx as i32, count));
        for _ in 1..n {
            // Indices are strictly ascending, so after the first only the
            // upper bound can be violated.
            idx = idx
                .checked_add(scan_varint(bytes, &mut pos)? as i64)
                .and_then(|v| v.checked_add(1))
                .ok_or_else(|| SketchError::Malformed("bin index overflow".into()))?;
            if idx > i64::from(i32::MAX) {
                return Err(SketchError::Malformed(format!(
                    "bin index {idx} out of i32 range"
                )));
            }
            let count = scan_varint(bytes, &mut pos)?;
            if count == 0 {
                return Err(SketchError::Malformed("zero-count bin".into()));
            }
            out.push((idx as i32, count));
        }
    }
    *buf = &bytes[pos..];
    Ok(())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, SketchError> {
    if buf.remaining() < 8 {
        return Err(SketchError::Malformed("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

impl SketchPayload {
    /// Whether a sketch built from `config` could merge this payload:
    /// same mapping family, same store family, same relative accuracy α
    /// (to within float-print noise). A differing `max_bins` does **not**
    /// disqualify — bucket boundaries agree and the receiver's bound
    /// governs (paper Algorithm 4) — so it is deliberately not compared.
    /// This is the shared admission predicate of every payload-staging
    /// receiver (the pipeline aggregator, the time-series store, the
    /// fleet server).
    pub fn matches_config(&self, config: &crate::SketchConfig) -> bool {
        self.kind == config.mapping as u8
            && self.store == config.store as u8
            && (self.relative_accuracy - config.alpha).abs() < 1e-12
    }

    /// Serialize to the compact binary wire format (always `DDS2`).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 4 * (self.positive.len() + self.negative.len()));
        buf.put_slice(MAGIC);
        buf.put_u8(self.kind);
        buf.put_u8(self.store);
        buf.put_f64_le(self.relative_accuracy);
        put_varint(&mut buf, self.bin_limit);
        put_varint(&mut buf, self.zero_count);
        buf.put_f64_le(self.min);
        buf.put_f64_le(self.max);
        buf.put_f64_le(self.sum);
        put_bins(&mut buf, &self.positive);
        put_bins(&mut buf, &self.negative);
        buf
    }

    /// Decode from the compact binary wire format, accepting both the
    /// self-describing `DDS2` layout and legacy `DDS1` bytes (whose store
    /// family is inferred by the heuristic in the module docs).
    pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
        Self::decode_inner(bytes, None)
    }

    /// [`SketchPayload::decode`] into `self`, reusing the bin vectors'
    /// capacity — the ingest-loop form: a receiver recycling payload
    /// buffers decodes at steady state without touching the allocator
    /// (this is how the pipeline's `Aggregator` stages pending frames).
    ///
    /// On error, `self`'s contents are unspecified (safe to reuse for the
    /// next decode, not safe to read).
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), SketchError> {
        self.decode_inner_into(bytes, None)
    }

    /// Decode legacy `DDS1` bytes, overriding the heuristic store-family
    /// guess with what the caller knows the producer ran.
    ///
    /// Fails with [`SketchError::Decode`] on `DDS2` bytes (their store
    /// byte is authoritative — overriding it would forge a payload) and
    /// when `store`'s boundedness contradicts the encoded bucket limit.
    pub fn decode_v1_as(store: StoreKind, bytes: &[u8]) -> Result<Self, SketchError> {
        Self::decode_inner(bytes, Some(store))
    }

    fn decode_inner(bytes: &[u8], v1_store: Option<StoreKind>) -> Result<Self, SketchError> {
        let mut payload = Self::default();
        payload.decode_inner_into(bytes, v1_store)?;
        Ok(payload)
    }

    fn decode_inner_into(
        &mut self,
        mut bytes: &[u8],
        v1_store: Option<StoreKind>,
    ) -> Result<(), SketchError> {
        let buf = &mut bytes;
        if buf.remaining() < 4 {
            return Err(SketchError::Malformed("bad magic".into()));
        }
        let v1 = match &buf[..4] {
            m if m == MAGIC => false,
            m if m == MAGIC_V1 => true,
            _ => return Err(SketchError::Malformed("bad magic".into())),
        };
        if !v1 && v1_store.is_some() {
            return Err(SketchError::Decode(
                "decode_v1_as on a DDS2 payload: its store byte is authoritative".into(),
            ));
        }
        buf.advance(4);
        if !buf.has_remaining() {
            return Err(SketchError::Malformed("truncated header".into()));
        }
        let kind = buf.get_u8();
        MappingKind::from_u8(kind)?;
        let store = if v1 {
            // v1 carried no store byte: filled in once the bucket limit is
            // known (below). Placeholder here.
            0
        } else {
            if !buf.has_remaining() {
                return Err(SketchError::Malformed("truncated header".into()));
            }
            let store = buf.get_u8();
            StoreKind::from_u8(store)?;
            store
        };
        let relative_accuracy = get_f64(buf)?;
        let bin_limit = get_varint(buf)?;
        let store = if v1 {
            match v1_store {
                // The caller knows the producer: take its word, but hold it
                // to the limit actually encoded.
                Some(kind) => {
                    if kind.is_bounded() != (bin_limit > 0) {
                        return Err(SketchError::Decode(format!(
                            "v1 payload with bin_limit {bin_limit} cannot come from a {} store",
                            kind.name()
                        )));
                    }
                    kind as u8
                }
                // The documented v1 heuristic: bounded payloads came from
                // the collapsing dense presets, unbounded ones from the
                // dense unbounded preset (sparse payloads are
                // indistinguishable).
                None if bin_limit > 0 => StoreKind::CollapsingDense as u8,
                None => StoreKind::Unbounded as u8,
            }
        } else {
            store
        };
        let zero_count = get_varint(buf)?;
        let min = get_f64(buf)?;
        let max = get_f64(buf)?;
        let sum = get_f64(buf)?;
        get_bins_into(buf, &mut self.positive)?;
        get_bins_into(buf, &mut self.negative)?;
        if buf.has_remaining() {
            return Err(SketchError::Malformed(format!(
                "{} trailing bytes after the negative store",
                buf.remaining()
            )));
        }
        self.kind = kind;
        self.store = store;
        self.relative_accuracy = relative_accuracy;
        self.bin_limit = bin_limit;
        self.zero_count = zero_count;
        self.min = min;
        self.max = max;
        self.sum = sum;
        // Reject hostile dense growth and summaries the counts contradict
        // right at the byte boundary, matching `SketchView::parse`.
        validate_dense_growth(
            StoreKind::from_u8(store).expect("store byte validated above"),
            bin_limit,
            side_span(&self.positive),
            side_span(&self.negative),
        )?;
        validate_summary(self)
    }
}

impl Default for SketchPayload {
    /// The canonical **empty** payload (zero counts, `min = +∞`,
    /// `max = −∞`, `sum = 0`), mainly useful as a reusable buffer for
    /// [`SketchPayload::decode_into`]. The configuration fields are
    /// placeholders (`kind`/`store` 0, `relative_accuracy` 0) that do not
    /// name a buildable sketch until a decode fills them.
    fn default() -> Self {
        Self {
            kind: 0,
            store: 0,
            relative_accuracy: 0.0,
            bin_limit: 0,
            zero_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            positive: Vec::new(),
            negative: Vec::new(),
        }
    }
}

/// Mapping-agnostic serializable snapshot of a **weighted** (`f64`-counted)
/// sketch — the plain-data twin of [`SketchPayload`] for the `DDS3`
/// dialect.
///
/// Encoding always emits `DDS3`; decoding accepts all three dialects
/// (integer counts widen exactly to `f64`), so a weighted receiver drains
/// a mixed fleet without routing on the magic. The acceptance set is
/// *identical* to [`SketchView::parse`] by construction — decode is
/// implemented as a view parse plus a bulk bin transfer — keeping the
/// borrowed and owned weighted readers in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSketchPayload {
    /// Mapping family discriminant ([`MappingKind`] as u8).
    pub kind: u8,
    /// Store family discriminant ([`StoreKind`] as u8); a documented guess
    /// for payloads read from legacy `DDS1` bytes.
    pub store: u8,
    /// Relative accuracy α.
    pub relative_accuracy: f64,
    /// Bucket limit of the positive store; 0 means unbounded.
    pub bin_limit: u64,
    /// Zero-bucket weight (finite, ≥ 0).
    pub zero_count: f64,
    /// Tracked minimum (`+∞` when empty).
    pub min: f64,
    /// Tracked maximum (`−∞` when empty).
    pub max: f64,
    /// Weighted sum of inserted values.
    pub sum: f64,
    /// Positive-store bins, ascending index; weights finite and > 0.
    pub positive: Vec<(i32, f64)>,
    /// Negative-store bins, ascending index (of |x|).
    pub negative: Vec<(i32, f64)>,
}

fn put_weighted_bins(buf: &mut Vec<u8>, bins: &[(i32, f64)]) {
    put_varint(buf, bins.len() as u64);
    let mut prev: Option<i32> = None;
    for &(idx, count) in bins {
        match prev {
            None => put_varint(buf, zigzag(idx as i64)),
            Some(p) => {
                debug_assert!(idx > p, "bins must be strictly ascending");
                put_varint(buf, (idx as i64 - p as i64 - 1) as u64);
            }
        }
        varint::put_weighted_count(buf, count);
        prev = Some(idx);
    }
}

impl WeightedSketchPayload {
    /// Whether a sketch built from `config` could merge this payload —
    /// the same admission predicate as [`SketchPayload::matches_config`]
    /// (`max_bins` deliberately not compared).
    pub fn matches_config(&self, config: &crate::SketchConfig) -> bool {
        self.kind == config.mapping as u8
            && self.store == config.store as u8
            && (self.relative_accuracy - config.alpha).abs() < 1e-12
    }

    /// Serialize to the compact binary wire format (always `DDS3`).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 4 * (self.positive.len() + self.negative.len()));
        buf.put_slice(MAGIC_V3);
        buf.put_u8(self.kind);
        buf.put_u8(self.store);
        buf.put_f64_le(self.relative_accuracy);
        put_varint(&mut buf, self.bin_limit);
        varint::put_weighted_count(&mut buf, self.zero_count);
        buf.put_f64_le(self.min);
        buf.put_f64_le(self.max);
        buf.put_f64_le(self.sum);
        put_weighted_bins(&mut buf, &self.positive);
        put_weighted_bins(&mut buf, &self.negative);
        buf
    }

    /// Decode any dialect (`DDS1`/`DDS2`/`DDS3`); integer counts widen
    /// exactly. Accepts a byte string iff [`SketchView::parse`] does.
    pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
        let mut payload = Self::default();
        payload.decode_into(bytes)?;
        Ok(payload)
    }

    /// [`WeightedSketchPayload::decode`] into `self`, reusing the bin
    /// vectors' capacity — the weighted ingest-loop form. On error,
    /// `self`'s contents are unspecified.
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), SketchError> {
        let view = SketchView::parse(bytes)?;
        self.fill_from_view(&view);
        Ok(())
    }

    /// Populate from an already-parsed view (no further validation — the
    /// parse did it all).
    pub(crate) fn fill_from_view(&mut self, view: &SketchView<'_>) {
        let config = view.config();
        let (min, max, sum) = view.raw_summary();
        self.kind = config.mapping as u8;
        self.store = config.store as u8;
        self.relative_accuracy = config.alpha;
        self.bin_limit = config.max_bins as u64;
        self.zero_count = view.weighted_zero_count();
        self.min = min;
        self.max = max;
        self.sum = sum;
        self.positive.clear();
        self.negative.clear();
        view.append_weighted_positive_bins(&mut self.positive);
        view.append_weighted_negative_bins(&mut self.negative);
    }
}

impl Default for WeightedSketchPayload {
    /// The canonical **empty** weighted payload, mainly useful as a
    /// reusable buffer for [`WeightedSketchPayload::decode_into`]; the
    /// configuration fields are placeholders until a decode fills them.
    fn default() -> Self {
        Self {
            kind: 0,
            store: 0,
            relative_accuracy: 0.0,
            bin_limit: 0,
            zero_count: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            positive: Vec::new(),
            negative: Vec::new(),
        }
    }
}

/// Weighted mirror of [`validate_summary`]: weights must be *valid*
/// (bins finite and strictly positive, zero bucket finite and
/// non-negative, total finite — `NaN`/`±∞`/negative weights are
/// structural corruption) and the summary consistent with the total.
/// Applied when a hand-built payload becomes a live sketch; byte decodes
/// get the identical rules from [`SketchView::parse`].
pub(crate) fn validate_weighted_summary(
    payload: &WeightedSketchPayload,
) -> Result<(), SketchError> {
    let zero = payload.zero_count;
    if !zero.is_finite() || zero < 0.0 {
        return Err(SketchError::Malformed(format!(
            "zero-bucket weight {zero} is not finite and non-negative"
        )));
    }
    let mut count = zero;
    for &(_, c) in payload.positive.iter().chain(&payload.negative) {
        if !c.is_finite() || c <= 0.0 {
            return Err(SketchError::Malformed(format!(
                "bin weight {c} is not finite and positive"
            )));
        }
        count += c;
    }
    if !count.is_finite() {
        return Err(SketchError::Malformed("total weight overflow".into()));
    }
    let (min, max, sum) = (payload.min, payload.max, payload.sum);
    let consistent = if count == 0.0 {
        min == f64::INFINITY && max == f64::NEG_INFINITY && sum == 0.0
    } else {
        min.is_finite() && max.is_finite() && min <= max && !sum.is_nan()
    };
    if !consistent {
        return Err(SketchError::Malformed(format!(
            "summary (min {min}, max {max}, sum {sum}) is inconsistent with weight {count}"
        )));
    }
    Ok(())
}

impl<M: IndexMapping, SP: Store<Count = f64>, SN: Store<Count = f64>> DDSketch<M, SP, SN> {
    /// Snapshot this weighted sketch into a serializable payload.
    pub fn to_weighted_payload(&self) -> WeightedSketchPayload {
        WeightedSketchPayload {
            kind: self.mapping().kind() as u8,
            store: self.positive_store().store_kind() as u8,
            relative_accuracy: self.mapping().relative_accuracy(),
            bin_limit: self.positive_store().bin_limit().unwrap_or(0) as u64,
            zero_count: self.zero_weight(),
            min: self.min().unwrap_or(f64::INFINITY),
            max: self.max().unwrap_or(f64::NEG_INFINITY),
            sum: self.sum(),
            positive: self.positive_store().bins_ascending(),
            negative: self.negative_store().bins_ascending(),
        }
    }

    /// Serialize to the `DDS3` wire format.
    pub fn encode_weighted(&self) -> Vec<u8> {
        self.to_weighted_payload().encode()
    }
}

impl crate::any::AnyWeightedDDSketch {
    /// Snapshot into a serializable weighted payload.
    pub fn to_weighted_payload(&self) -> WeightedSketchPayload {
        let config = self.config();
        WeightedSketchPayload {
            kind: config.mapping as u8,
            store: config.store as u8,
            relative_accuracy: config.alpha,
            bin_limit: config.max_bins as u64,
            zero_count: self.zero_weight(),
            min: self.min().unwrap_or(f64::INFINITY),
            max: self.max().unwrap_or(f64::NEG_INFINITY),
            sum: self.sum(),
            positive: self.positive_bins(),
            negative: self.negative_bins(),
        }
    }

    /// Serialize to the self-describing `DDS3` wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_weighted_payload().encode()
    }

    /// Reconstruct the right weighted variant from a payload, dispatching
    /// on the mapping and store discriminants — the weighted mirror of
    /// [`AnyDDSketch::from_payload`].
    pub fn from_weighted_payload(payload: &WeightedSketchPayload) -> Result<Self, SketchError> {
        let mapping = MappingKind::from_u8(payload.kind)?;
        let store = StoreKind::from_u8(payload.store)?;
        if store.is_bounded() != (payload.bin_limit > 0) {
            return Err(SketchError::Decode(format!(
                "{} store with bin_limit {} is inconsistent",
                store.name(),
                payload.bin_limit
            )));
        }
        validate_weighted_summary(payload)?;
        validate_dense_growth(
            store,
            payload.bin_limit,
            side_span(&payload.positive),
            side_span(&payload.negative),
        )?;
        let config = crate::SketchConfig {
            alpha: payload.relative_accuracy,
            mapping,
            store,
            max_bins: usize::try_from(payload.bin_limit)
                .map_err(|_| SketchError::Decode("bin_limit exceeds usize".into()))?,
        };
        let mut sketch = Self::new(config)?;
        sketch.load_raw(
            payload.zero_count,
            payload.min,
            payload.max,
            payload.sum,
            &payload.positive,
            &payload.negative,
        );
        Ok(sketch)
    }

    /// Decode any dialect (`DDS1`/`DDS2`/`DDS3`) into whichever weighted
    /// variant the bytes describe; integer counts widen exactly.
    pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
        Self::from_weighted_payload(&WeightedSketchPayload::decode(bytes)?)
    }

    /// Absorb one weighted payload into this sketch — the staged-payload
    /// merge path of the weighted aggregation plane (one bulk `add_bins`
    /// pass per store, no intermediate sketch, no allocation beyond store
    /// growth).
    ///
    /// The payload is re-validated here (weights, summary, dense growth):
    /// payloads decoded from bytes already hold these invariants, but
    /// this method also accepts hand-built ones, and a corrupt summary
    /// must never poison a resident sketch. The admission predicate is
    /// [`WeightedSketchPayload::matches_config`].
    pub fn merge_weighted_payload(
        &mut self,
        payload: &WeightedSketchPayload,
    ) -> Result<(), SketchError> {
        let config = self.config();
        if !payload.matches_config(&config) {
            return Err(SketchError::IncompatibleMerge(format!(
                "sketch runs {config:?}, payload is (kind {}, store {}, α={})",
                payload.kind, payload.store, payload.relative_accuracy
            )));
        }
        validate_weighted_summary(payload)?;
        validate_dense_growth(
            config.store,
            payload.bin_limit,
            side_span(&payload.positive),
            side_span(&payload.negative),
        )?;
        self.absorb_raw(
            payload.zero_count,
            payload.min,
            payload.max,
            payload.sum,
            &payload.positive,
            &payload.negative,
        );
        Ok(())
    }
}

impl<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>> DDSketch<M, SP, SN> {
    /// Snapshot this sketch into a serializable payload.
    pub fn to_payload(&self) -> SketchPayload {
        SketchPayload {
            kind: self.mapping().kind() as u8,
            store: self.positive_store().store_kind() as u8,
            relative_accuracy: self.mapping().relative_accuracy(),
            bin_limit: self.positive_store().bin_limit().unwrap_or(0) as u64,
            zero_count: self.zero_count(),
            min: self.min().unwrap_or(f64::INFINITY),
            max: self.max().unwrap_or(f64::NEG_INFINITY),
            sum: self.sum(),
            positive: self.positive_store().bins_ascending(),
            negative: self.negative_store().bins_ascending(),
        }
    }

    /// Serialize to the compact binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_payload().encode()
    }
}

impl AnyDDSketch {
    /// Snapshot into a serializable payload (dispatching to the wrapped
    /// preset).
    pub fn to_payload(&self) -> SketchPayload {
        crate::any::dispatch!(self, s => s.to_payload())
    }

    /// Serialize to the self-describing `DDS2` wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_payload().encode()
    }

    /// Reconstruct the right sketch variant from a payload — the
    /// self-describing decode path: the payload's mapping and store
    /// discriminants select the variant, so the caller needs no
    /// compile-time knowledge of what produced the bytes.
    pub fn from_payload(payload: &SketchPayload) -> Result<Self, SketchError> {
        let mapping = MappingKind::from_u8(payload.kind)?;
        let store = StoreKind::from_u8(payload.store)?;
        if store.is_bounded() != (payload.bin_limit > 0) {
            return Err(SketchError::Decode(format!(
                "{} store with bin_limit {} is inconsistent",
                store.name(),
                payload.bin_limit
            )));
        }
        Ok(match (mapping, store) {
            (MappingKind::Logarithmic, StoreKind::Unbounded) => {
                AnyDDSketch::Unbounded(UnboundedDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingDense) => {
                AnyDDSketch::Bounded(BoundedDDSketch::from_payload(payload)?)
            }
            (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => {
                AnyDDSketch::Fast(FastDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::Sparse) => {
                AnyDDSketch::Sparse(SparseDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => {
                AnyDDSketch::PaperExact(PaperExactDDSketch::from_payload(payload)?)
            }
            (mapping, store) => {
                return Err(SketchError::Decode(format!(
                    "no sketch variant for {mapping:?} mapping with {} store",
                    store.name()
                )))
            }
        })
    }

    /// Decode from the compact binary wire format (`DDS2`, with legacy
    /// `DDS1` fallback), reconstructing whichever variant was encoded.
    pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
        Self::from_payload(&SketchPayload::decode(bytes)?)
    }

    /// Decode legacy `DDS1` bytes as a *known* store family, overriding
    /// the documented heuristic.
    ///
    /// v1 payloads carry no store byte, so [`AnyDDSketch::decode`] has to
    /// guess — and the guess is provably wrong for v1 sparse and
    /// paper-exact producers. A caller who knows what the producing fleet
    /// ran (the usual situation during a v1 → v2 migration) can pin the
    /// family here: `decode_v1_as(StoreKind::Sparse, bytes)` reconstructs
    /// the sparse variant the bytes actually came from. Fails with
    /// [`SketchError::Decode`] on `DDS2` bytes, on a family whose
    /// boundedness contradicts the encoded bucket limit, and on
    /// (mapping, store) combinations with no sketch variant.
    pub fn decode_v1_as(store: StoreKind, bytes: &[u8]) -> Result<Self, SketchError> {
        Self::from_payload(&SketchPayload::decode_v1_as(store, bytes)?)
    }
}

/// Shared reconstruction logic for `from_payload` implementations.
///
/// Validates the mapping discriminant and boundedness but deliberately
/// **not** the store discriminant: a caller reaching for a concrete preset
/// type has already decided the store family, and legacy `DDS1` payloads
/// only carry a guessed one (see the module docs). Runtime store dispatch
/// belongs to [`AnyDDSketch::from_payload`], where the byte is
/// authoritative.
fn rebuild<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>>(
    payload: &SketchPayload,
    mapping: M,
    positive: SP,
    negative: SN,
) -> Result<DDSketch<M, SP, SN>, SketchError> {
    if payload.kind != mapping.kind() as u8 {
        return Err(SketchError::Decode(format!(
            "payload mapping kind {} does not match target {:?}",
            payload.kind,
            mapping.kind()
        )));
    }
    validate_summary(payload)?;
    // The *target* store family governs the growth ceiling here (preset
    // decodes deliberately ignore the payload's store byte).
    validate_dense_growth(
        positive.store_kind(),
        payload.bin_limit,
        side_span(&payload.positive),
        side_span(&payload.negative),
    )?;
    let mut sketch = DDSketch::from_parts(mapping, positive, negative);
    sketch.load(
        payload.zero_count,
        payload.min,
        payload.max,
        payload.sum,
        &payload.positive,
        &payload.negative,
    );
    Ok(sketch)
}

/// A payload's summary must be consistent with its counts before it may
/// become a live sketch: a corrupt `min > max` would make the quantile
/// clamp panic, and a non-empty summary on a zero-count payload would
/// poison the extremes of whatever it later merges into. Live encoders
/// can only produce consistent summaries, so rejection (as
/// [`SketchError::Malformed`]) never loses a real payload; the
/// [`SketchView`] parser enforces the identical rule, keeping the two
/// readers in lockstep.
pub(crate) fn validate_summary(payload: &SketchPayload) -> Result<(), SketchError> {
    let mut count = payload.zero_count;
    for &(_, c) in payload.positive.iter().chain(&payload.negative) {
        count = count
            .checked_add(c)
            .ok_or_else(|| SketchError::Malformed("total count overflow".into()))?;
    }
    let (min, max, sum) = (payload.min, payload.max, payload.sum);
    let consistent = if count == 0 {
        // The canonical empty state, exactly as every encoder writes it.
        min == f64::INFINITY && max == f64::NEG_INFINITY && sum == 0.0
    } else {
        min.is_finite() && max.is_finite() && min <= max && !sum.is_nan()
    };
    if !consistent {
        return Err(SketchError::Malformed(format!(
            "summary (min {min}, max {max}, sum {sum}) is inconsistent with count {count}"
        )));
    }
    Ok(())
}

/// Ceiling on the **dense-store growth** a decoded payload may demand:
/// 2²³ buckets (64 MiB of counters) per store side.
///
/// Bin *counts* are clamped against the payload's byte length, but a
/// dense store's allocation is driven by the bucket-index **span** (and,
/// for the collapsing families, the bucket limit) — two bins and a huge
/// limit in a ~40-byte payload could otherwise demand a multi-GiB
/// counter array. Every payload a real producer can emit sits far below
/// this ceiling (a span of 2²³ buckets needs α ≲ 8·10⁻⁵ over the full
/// f64 range); the sparse families, whose memory is proportional to the
/// bins actually present, are exempt.
pub const MAX_DECODE_DENSE_SPAN: u64 = 1 << 23;

/// Bucket-index span of one (ascending) bin section.
fn side_span<C>(bins: &[(i32, C)]) -> u64 {
    match (bins.first(), bins.last()) {
        (Some(&(lo, _)), Some(&(hi, _))) => (i64::from(hi) - i64::from(lo) + 1).unsigned_abs(),
        _ => 0,
    }
}

/// Enforce [`MAX_DECODE_DENSE_SPAN`] for a payload headed at a store of
/// `kind` — shared verbatim by the payload decoder, the view parser, and
/// sketch reconstruction, so the three readers accept the same payloads.
pub(crate) fn validate_dense_growth(
    kind: StoreKind,
    bin_limit: u64,
    pos_span: u64,
    neg_span: u64,
) -> Result<(), SketchError> {
    match kind {
        // A collapsing dense store never allocates beyond its limit
        // (wide spans fold), so only the limit needs the ceiling.
        StoreKind::CollapsingDense => {
            if bin_limit > MAX_DECODE_DENSE_SPAN {
                return Err(SketchError::Malformed(format!(
                    "bucket limit {bin_limit} exceeds the dense decode ceiling \
                     ({MAX_DECODE_DENSE_SPAN})"
                )));
            }
        }
        // An unbounded dense store allocates its whole index span.
        StoreKind::Unbounded => {
            let span = pos_span.max(neg_span);
            if span > MAX_DECODE_DENSE_SPAN {
                return Err(SketchError::Malformed(format!(
                    "bucket span {span} exceeds the dense decode ceiling \
                     ({MAX_DECODE_DENSE_SPAN})"
                )));
            }
        }
        // Sparse memory is proportional to the bins present, which the
        // byte-length clamp already bounds.
        StoreKind::Sparse | StoreKind::CollapsingSparse => {}
    }
    Ok(())
}

macro_rules! impl_from_payload {
    ($ty:ty, $ctor:expr, $doc:literal) => {
        impl $ty {
            #[doc = $doc]
            pub fn from_payload(payload: &SketchPayload) -> Result<Self, SketchError> {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(payload)
            }

            /// Decode from the compact binary wire format.
            pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
                Self::from_payload(&SketchPayload::decode(bytes)?)
            }
        }
    };
}

impl_from_payload!(
    UnboundedDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::DenseStore::new(),
            crate::store::DenseStore::new(),
        )
    },
    "Reconstruct an unbounded sketch from a payload."
);

impl_from_payload!(
    BoundedDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("bounded sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a bounded (collapsing) sketch from a payload."
);

impl_from_payload!(
    FastDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("fast sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::CubicInterpolatedMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a fast (cubic-mapping) sketch from a payload."
);

impl_from_payload!(
    SparseDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::SparseStore::new(),
            crate::store::SparseStore::new(),
        )
    },
    "Reconstruct a sparse sketch from a payload."
);

impl_from_payload!(
    PaperExactDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| {
                SketchError::Decode("paper-exact sketch requires bin_limit > 0".into())
            })?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingSparseStore::new(limit),
            crate::store::CollapsingSparseStore::new(limit),
        )
    },
    "Reconstruct an Algorithm-3-exact sketch from a payload."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    fn populated() -> BoundedDDSketch {
        let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=1000 {
            s.add(i as f64 * 0.01).unwrap();
        }
        for i in 1..=50 {
            s.add(-(i as f64)).unwrap();
        }
        s.add(0.0).unwrap();
        s
    }

    #[test]
    fn roundtrip_preserves_state_exactly() {
        let s = populated();
        let bytes = s.encode();
        let d = BoundedDDSketch::decode(&bytes).unwrap();
        assert_eq!(d.count(), s.count());
        assert_eq!(d.zero_count(), s.zero_count());
        assert_eq!(d.min(), s.min());
        assert_eq!(d.max(), s.max());
        assert_eq!(d.sum(), s.sum());
        assert_eq!(d.to_payload(), s.to_payload());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.quantile(q).unwrap(), s.quantile(q).unwrap(), "q = {q}");
        }
    }

    /// Encoding an empty sketch writes the empty-state sentinels
    /// (`min = +∞`, `max = −∞`, `sum = 0`) as raw f64s; decoding must
    /// restore the documented empty behaviour — count 0, `None`
    /// accessors, `Empty` quantiles — for **every** configuration, and a
    /// subsequent add must start exact (no sentinel leakage).
    #[test]
    fn roundtrip_empty_sketch_all_configs() {
        for config in crate::SketchConfig::all(0.02, 512) {
            let s = config.build().unwrap();
            let bytes = s.encode();
            let mut d = AnyDDSketch::decode(&bytes).unwrap();
            assert_eq!(d.config(), config, "{}", config.name());
            assert!(d.is_empty());
            assert_eq!(d.count(), 0);
            assert_eq!(d.zero_count(), 0);
            assert_eq!(d.min(), None, "{}: empty min must be None", config.name());
            assert_eq!(d.max(), None);
            assert_eq!(d.average(), None);
            assert_eq!(d.sum(), 0.0);
            assert!(matches!(d.quantile(0.5), Err(SketchError::Empty)));
            // The decoded empty sketch must behave exactly like a fresh
            // one on the next insertion.
            d.add(7.5).unwrap();
            assert_eq!(d.min(), Some(7.5));
            assert_eq!(d.max(), Some(7.5));
            assert_eq!(d.sum(), 7.5);
            // And the view agrees on the empty invariants.
            let view = SketchView::parse(&bytes).unwrap();
            assert!(view.is_empty());
            assert_eq!(view.min(), None);
            assert_eq!(view.max(), None);
            assert_eq!(view.average(), None);
            assert_eq!(view.sum(), 0.0);
            assert_eq!(view.num_bins(), 0);
            assert!(matches!(view.quantile(0.5), Err(SketchError::Empty)));
        }
    }

    #[test]
    fn roundtrip_all_presets() {
        let mut u = presets::unbounded(0.01).unwrap();
        let mut f = presets::fast(0.01, 512).unwrap();
        let mut sp = presets::sparse(0.01).unwrap();
        let mut pe = presets::paper_exact(0.01, 512).unwrap();
        for i in 1..200 {
            let v = (i * i) as f64;
            u.add(v).unwrap();
            f.add(v).unwrap();
            sp.add(v).unwrap();
            pe.add(v).unwrap();
        }
        assert_eq!(
            presets::UnboundedDDSketch::decode(&u.encode())
                .unwrap()
                .to_payload(),
            u.to_payload()
        );
        assert_eq!(
            presets::FastDDSketch::decode(&f.encode())
                .unwrap()
                .to_payload(),
            f.to_payload()
        );
        assert_eq!(
            presets::SparseDDSketch::decode(&sp.encode())
                .unwrap()
                .to_payload(),
            sp.to_payload()
        );
        assert_eq!(
            presets::PaperExactDDSketch::decode(&pe.encode())
                .unwrap()
                .to_payload(),
            pe.to_payload()
        );
    }

    #[test]
    fn decode_rejects_wrong_kind() {
        let s = populated(); // logarithmic kind
        let bytes = s.encode();
        assert!(matches!(
            presets::FastDDSketch::decode(&bytes),
            Err(SketchError::Decode(_))
        ));
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(SketchPayload::decode(b"").is_err());
        assert!(SketchPayload::decode(b"XXXX").is_err());
        assert!(SketchPayload::decode(b"DDS1").is_err());
        let bytes = populated().encode();
        // Every strict prefix must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(
                SketchPayload::decode(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
        // Trailing garbage must fail too, as structural corruption.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            SketchPayload::decode(&extended),
            Err(SketchError::Malformed(_))
        ));
    }

    #[test]
    fn decode_rejects_hostile_bin_count() {
        // Header claiming 2^40 bins with a tiny body must fail fast, as
        // Malformed, before any allocation happens.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0); // kind
        buf.push(0); // store
        buf.extend_from_slice(&0.01f64.to_le_bytes());
        put_varint(&mut buf, 0); // limit
        put_varint(&mut buf, 0); // zero
        buf.extend_from_slice(&f64::INFINITY.to_le_bytes());
        buf.extend_from_slice(&f64::NEG_INFINITY.to_le_bytes());
        buf.extend_from_slice(&0f64.to_le_bytes());
        put_varint(&mut buf, 1 << 40); // absurd bin count
        assert!(matches!(
            SketchPayload::decode(&buf),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            SketchView::parse(&buf),
            Err(SketchError::Malformed(_))
        ));
        // Even a u64-overflowing count must be caught by the clamp.
        let cut = buf.len() - 6;
        buf.truncate(cut);
        put_varint(&mut buf, u64::MAX);
        assert!(matches!(
            SketchPayload::decode(&buf),
            Err(SketchError::Malformed(_))
        ));
    }

    /// Re-encode a payload in the legacy `DDS1` layout (no store byte) so
    /// the fallback reader can be regression-tested against real v1 bytes.
    fn encode_v1(payload: &SketchPayload) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.put_u8(payload.kind);
        buf.put_f64_le(payload.relative_accuracy);
        put_varint(&mut buf, payload.bin_limit);
        put_varint(&mut buf, payload.zero_count);
        buf.put_f64_le(payload.min);
        buf.put_f64_le(payload.max);
        buf.put_f64_le(payload.sum);
        put_bins(&mut buf, &payload.positive);
        put_bins(&mut buf, &payload.negative);
        buf
    }

    /// The DDS2 store byte closes the v1 ambiguity: sparse, unbounded and
    /// paper-exact payloads — indistinguishable or conflated under v1 —
    /// each decode back to their own variant with no caller-side type
    /// knowledge.
    #[test]
    fn any_decode_distinguishes_every_variant() {
        for config in crate::SketchConfig::all(0.01, 512) {
            let mut s = config.build().unwrap();
            for i in 1..200 {
                s.add(i as f64 * 1.7).unwrap();
            }
            let decoded = AnyDDSketch::decode(&s.encode()).unwrap();
            assert_eq!(decoded.config(), config, "store byte must disambiguate");
            assert_eq!(decoded.to_payload(), s.to_payload());
        }
        // The pair that was literally indistinguishable under DDS1
        // (both encoded bin_limit = 0):
        let sparse = crate::SketchConfig::sparse(0.01).build().unwrap();
        let unbounded = crate::SketchConfig::unbounded(0.01).build().unwrap();
        assert!(matches!(
            AnyDDSketch::decode(&sparse.encode()).unwrap(),
            AnyDDSketch::Sparse(_)
        ));
        assert!(matches!(
            AnyDDSketch::decode(&unbounded.encode()).unwrap(),
            AnyDDSketch::Unbounded(_)
        ));
        // And the bounded pair DDS1 conflated with collapsing-dense:
        let paper = crate::SketchConfig::paper_exact(0.01, 512).build().unwrap();
        assert!(matches!(
            AnyDDSketch::decode(&paper.encode()).unwrap(),
            AnyDDSketch::PaperExact(_)
        ));
    }

    /// Legacy `DDS1` bytes still decode, via the documented heuristic:
    /// `bin_limit > 0` reads as collapsing dense stores, `bin_limit == 0`
    /// as unbounded dense stores. The heuristic is *wrong* for v1 sparse
    /// and paper-exact producers — that loss is inherent to v1 and the
    /// reason DDS2 exists; this test pins down exactly what a v1 payload
    /// turns into, and [`AnyDDSketch::decode_v1_as`] shows the caller-side
    /// fix when the producer is known.
    #[test]
    fn legacy_v1_fallback_applies_documented_heuristic() {
        let mut values = Vec::new();
        for i in 1..300 {
            values.push((i * i) as f64 * 0.01);
        }

        // Faithful cases: v1 bytes from the presets the heuristic targets.
        let mut bounded = presets::logarithmic_collapsing(0.01, 512).unwrap();
        let mut fast = presets::fast(0.01, 512).unwrap();
        let mut unbounded = presets::unbounded(0.01).unwrap();
        for &v in &values {
            bounded.add(v).unwrap();
            fast.add(v).unwrap();
            unbounded.add(v).unwrap();
        }
        let decoded = AnyDDSketch::decode(&encode_v1(&bounded.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Bounded(_)));
        assert_eq!(decoded.count(), bounded.count());
        let decoded = AnyDDSketch::decode(&encode_v1(&fast.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Fast(_)));
        let decoded = AnyDDSketch::decode(&encode_v1(&unbounded.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Unbounded(_)));

        // Lossy cases: the heuristic's documented misreadings.
        let mut sparse = presets::sparse(0.01).unwrap();
        let mut paper = presets::paper_exact(0.01, 512).unwrap();
        for &v in &values {
            sparse.add(v).unwrap();
            paper.add(v).unwrap();
        }
        let decoded = AnyDDSketch::decode(&encode_v1(&sparse.to_payload())).unwrap();
        assert!(
            matches!(decoded, AnyDDSketch::Unbounded(_)),
            "v1 sparse payloads are indistinguishable from unbounded ones"
        );
        // The bins themselves survive the store-family misreading intact.
        assert_eq!(
            decoded.positive_bins(),
            sparse.positive_store().bins_ascending()
        );
        let decoded = AnyDDSketch::decode(&encode_v1(&paper.to_payload())).unwrap();
        assert!(
            matches!(decoded, AnyDDSketch::Bounded(_)),
            "v1 bounded payloads all read as collapsing-dense"
        );

        // Statically-typed decoding of v1 bytes keeps working: the preset
        // constructors ignore the (guessed) store byte entirely.
        let restored = BoundedDDSketch::decode(&encode_v1(&bounded.to_payload())).unwrap();
        assert_eq!(restored.to_payload(), bounded.to_payload());
        let restored = SparseDDSketch::decode(&encode_v1(&sparse.to_payload())).unwrap();
        assert_eq!(restored.count(), sparse.count());
    }

    /// A caller who knows the v1 producer overrides the heuristic:
    /// `decode_v1_as` reconstructs the true variant from the ambiguous
    /// bytes — the runtime counterpart of the statically-typed preset
    /// decode above.
    #[test]
    fn decode_v1_as_overrides_the_guess() {
        let mut sparse = presets::sparse(0.01).unwrap();
        let mut paper = presets::paper_exact(0.01, 512).unwrap();
        for i in 1..300 {
            let v = (i * i) as f64 * 0.01;
            sparse.add(v).unwrap();
            paper.add(v).unwrap();
        }
        let sparse_v1 = encode_v1(&sparse.to_payload());
        let paper_v1 = encode_v1(&paper.to_payload());

        let decoded = AnyDDSketch::decode_v1_as(StoreKind::Sparse, &sparse_v1).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Sparse(_)));
        assert_eq!(decoded.to_payload().positive, sparse.to_payload().positive);
        assert_eq!(decoded.count(), sparse.count());

        let decoded = AnyDDSketch::decode_v1_as(StoreKind::CollapsingSparse, &paper_v1).unwrap();
        assert!(matches!(decoded, AnyDDSketch::PaperExact(_)));
        assert_eq!(decoded.count(), paper.count());

        // The override is held to the encoded limit: claiming a bounded
        // family for an unbounded payload (or vice versa) is rejected.
        assert!(matches!(
            AnyDDSketch::decode_v1_as(StoreKind::CollapsingSparse, &sparse_v1),
            Err(SketchError::Decode(_))
        ));
        assert!(matches!(
            AnyDDSketch::decode_v1_as(StoreKind::Unbounded, &paper_v1),
            Err(SketchError::Decode(_))
        ));
        // And DDS2 bytes refuse the override outright: their store byte
        // is authoritative.
        assert!(matches!(
            AnyDDSketch::decode_v1_as(StoreKind::Sparse, &sparse.encode()),
            Err(SketchError::Decode(_))
        ));
        // Corrupt v1 bytes still fail structurally, not semantically.
        assert!(AnyDDSketch::decode_v1_as(StoreKind::Sparse, &sparse_v1[..10]).is_err());
    }

    #[test]
    fn any_from_payload_rejects_inconsistent_store_and_limit() {
        let mut s = presets::sparse(0.01).unwrap();
        s.add(1.0).unwrap();
        let mut payload = s.to_payload();
        payload.bin_limit = 64; // unbounded store with a bound
        assert!(matches!(
            AnyDDSketch::from_payload(&payload),
            Err(SketchError::Decode(_))
        ));
        let mut b = presets::logarithmic_collapsing(0.01, 64).unwrap();
        b.add(1.0).unwrap();
        let mut payload = b.to_payload();
        payload.bin_limit = 0; // bounded store without a bound
        assert!(matches!(
            AnyDDSketch::from_payload(&payload),
            Err(SketchError::Decode(_))
        ));
        // Unknown store discriminant is rejected outright.
        let mut payload = b.to_payload();
        payload.store = 200;
        assert!(AnyDDSketch::from_payload(&payload).is_err());
    }

    /// Regression for the hostile-growth hole (confirmed by a live
    /// repro pre-fix): a ~40-byte payload claiming a huge bucket limit,
    /// or an unbounded payload with two bins at opposite ends of the
    /// i32 index range, used to drive a multi-GiB dense-store
    /// allocation through every decode entry point. All readers now
    /// reject both shapes before any store exists.
    #[test]
    fn decode_rejects_hostile_dense_growth() {
        // Huge limit on a collapsing-dense payload.
        let mut s = presets::logarithmic_collapsing(0.01, 512).unwrap();
        s.add(1.0).unwrap();
        let mut huge_limit = s.to_payload();
        huge_limit.bin_limit = 1 << 40;
        let bytes = huge_limit.encode();
        assert!(matches!(
            SketchPayload::decode(&bytes),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            SketchView::parse(&bytes),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            AnyDDSketch::from_payload(&huge_limit),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            BoundedDDSketch::from_payload(&huge_limit),
            Err(SketchError::Malformed(_))
        ));

        // Unbounded payload whose two bins span ~2³² buckets.
        let mut u = presets::unbounded(0.01).unwrap();
        u.add(1.0).unwrap();
        u.add(2.0).unwrap();
        let mut wide = u.to_payload();
        wide.positive = vec![(-2_000_000_000, 1), (2_000_000_000, 1)];
        let bytes = wide.encode();
        assert!(matches!(
            SketchPayload::decode(&bytes),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            SketchView::parse(&bytes),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            AnyDDSketch::from_payload(&wide),
            Err(SketchError::Malformed(_))
        ));
        let mut payload = SketchPayload::default();
        assert!(matches!(
            payload.decode_into(&bytes),
            Err(SketchError::Malformed(_))
        ));

        // The same wide span under a *small* collapsing limit is fine:
        // the store folds it to ≤ 512 buckets on arrival.
        let mut folded = s.to_payload();
        folded.positive = vec![(-2_000_000_000, 1), (2_000_000_000, 1)];
        let decoded = AnyDDSketch::decode(&folded.encode()).unwrap();
        assert_eq!(decoded.count(), 2);
        assert!(decoded.has_collapsed());
    }

    /// Regression for the corrupt-summary hole: a payload whose summary
    /// contradicts its counts used to decode into a live sketch whose
    /// quantile clamp could panic (`min > max`) or whose empty-state
    /// sentinels would poison later merges. Both readers now reject it.
    #[test]
    fn decode_rejects_inconsistent_summaries() {
        let mut s = presets::unbounded(0.01).unwrap();
        s.add(5.0).unwrap();
        let base = s.to_payload();

        let mut swapped = base.clone();
        swapped.min = 10.0;
        swapped.max = 1.0;
        let mut nan = base.clone();
        nan.min = f64::NAN;
        let mut inf = base.clone();
        inf.max = f64::INFINITY;
        for corrupt in [&swapped, &nan, &inf] {
            let bytes = corrupt.encode();
            assert!(matches!(
                presets::UnboundedDDSketch::decode(&bytes),
                Err(SketchError::Malformed(_))
            ));
            assert!(matches!(
                AnyDDSketch::decode(&bytes),
                Err(SketchError::Malformed(_))
            ));
            assert!(matches!(
                SketchView::parse(&bytes),
                Err(SketchError::Malformed(_))
            ));
        }

        // A zero-count payload must carry the canonical empty sentinels.
        let empty = presets::unbounded(0.01).unwrap().to_payload();
        let mut stale = empty.clone();
        stale.min = 5.0;
        let mut residue = empty;
        residue.sum = 1e-17;
        for corrupt in [&stale, &residue] {
            let bytes = corrupt.encode();
            assert!(matches!(
                AnyDDSketch::decode(&bytes),
                Err(SketchError::Malformed(_))
            ));
            assert!(matches!(
                SketchView::parse(&bytes),
                Err(SketchError::Malformed(_))
            ));
        }
    }

    #[test]
    fn encoding_is_compact() {
        // 1000 adjacent buckets with count 1 should take ~2 bytes each.
        let mut s = presets::unbounded(0.01).unwrap();
        for i in 0..1000 {
            s.add(1.0210_f64.powi(i)).unwrap();
        }
        let bytes = s.encode();
        assert!(
            bytes.len() < 1000 * 3 + 64,
            "encoding too large: {} bytes for 1000 bins",
            bytes.len()
        );
    }

    proptest! {
        #[test]
        fn prop_payload_roundtrip(values in proptest::collection::vec(-1e9f64..1e9, 0..300)) {
            let mut s = presets::logarithmic_collapsing(0.02, 1024).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let decoded = BoundedDDSketch::decode(&s.encode()).unwrap();
            prop_assert_eq!(decoded.to_payload(), s.to_payload());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = SketchPayload::decode(&bytes);
            let _ = SketchView::parse(&bytes);
        }
    }
}
