//! Length-prefixed frame streams: many payloads per connection or file.
//!
//! Agents batch several sketches per flush and aggregators checkpoint
//! whole stores; both need a framing layer above the raw payload codec.
//! The layout is deliberately minimal (see the [`crate::codec`] docs):
//! a 4-byte magic + version header, then `varint length` + payload bytes
//! per frame, ending at clean EOF. Frames are payload-agnostic — sketch
//! bytes, checkpoint cells, anything — so one stream dialect serves every
//! transport in the workspace.
//!
//! The reader is hardened the same way the payload decoder is: a declared
//! frame length is clamped against [`FrameReader::max_frame_len`]
//! *before* any allocation, truncation mid-frame is
//! [`SketchError::Malformed`], and I/O failures surface as
//! [`SketchError::Io`] so callers can tell corruption from a broken pipe.
//!
//! ## Real sockets
//!
//! Unlike the in-memory buffers the earlier tests exercised, a socket
//! returns *short* reads, spurious [`ErrorKind::Interrupted`] failures,
//! and — with a read timeout configured — [`ErrorKind::WouldBlock`] /
//! [`ErrorKind::TimedOut`] in the middle of a frame. The reader handles
//! all three:
//!
//! * short reads are looped until the header, length varint, or body is
//!   complete (frame parsing is buffer-boundary-independent: a
//!   byte-at-a-time source produces bit-identical frames);
//! * `Interrupted` is retried internally and never surfaces;
//! * `WouldBlock`/`TimedOut` surface as the retryable
//!   [`SketchError::WouldBlock`] **without losing position** — the
//!   partially-read header, length prefix, or body is retained, and the
//!   next [`FrameReader::read_frame`] call resumes exactly where the
//!   stream stalled. This is what lets a server thread poll a blocking
//!   socket with a read timeout, check its shutdown flag on every tick,
//!   and still never tear a frame.
//!
//! [`FrameReader::new`] reads the stream header eagerly (it blocks until
//! the peer sends one); [`FrameReader::lazy`] defers the header to the
//! first `read_frame`, which is what a connection handler wants when the
//! peer may take a while to speak.

use std::io::{ErrorKind, Read, Write};

use super::varint::put_varint;
use crate::any::AnyDDSketch;
use sketch_core::SketchError;

/// Magic bytes opening every frame stream.
pub(crate) const STREAM_MAGIC: &[u8; 4] = b"DDSF";

/// Current frame-stream version byte.
pub const FRAME_STREAM_VERSION: u8 = 1;

/// Default ceiling on a single frame's declared length (16 MiB): far above
/// any real sketch payload, far below an allocation that hurts.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

fn io_err(e: std::io::Error) -> SketchError {
    SketchError::Io(e.to_string())
}

/// Whether an I/O error means "no data right now, retry later" rather
/// than a broken stream: `WouldBlock` (non-blocking sources, and what a
/// Unix read timeout raises) and `TimedOut` (what Windows raises).
fn retryable(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Writes a frame stream to any [`Write`] sink.
///
/// The stream header is written on construction; each
/// [`FrameWriter::write_frame`] appends one varint-length-prefixed frame.
/// Dropping the writer ends the stream (clean EOF *is* the terminator).
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    frames: u64,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Open a stream on `sink`, writing the header immediately.
    pub fn new(mut sink: W) -> Result<Self, SketchError> {
        sink.write_all(STREAM_MAGIC).map_err(io_err)?;
        sink.write_all(&[FRAME_STREAM_VERSION]).map_err(io_err)?;
        Ok(Self {
            inner: sink,
            frames: 0,
            scratch: Vec::with_capacity(10),
        })
    }

    /// Append one frame holding `payload`.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), SketchError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, payload.len() as u64);
        self.inner.write_all(&self.scratch).map_err(io_err)?;
        self.inner.write_all(payload).map_err(io_err)?;
        self.frames += 1;
        Ok(())
    }

    /// Encode `sketch` and append it as one frame.
    pub fn write_sketch(&mut self, sketch: &AnyDDSketch) -> Result<(), SketchError> {
        self.write_frame(&sketch.encode())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and hand the sink back.
    pub fn finish(mut self) -> Result<W, SketchError> {
        self.inner.flush().map_err(io_err)?;
        Ok(self.inner)
    }
}

/// The source-detached frame-decode state machine: everything
/// [`FrameReader`] knows *except* the source it reads from.
///
/// Owning the source is the right shape for a blocking connection
/// thread, but an event loop owns its sockets in a registration table
/// and borrows them per readiness event — so the resumable decode state
/// lives here, and [`FrameDecoder::read_frame`] takes the source as an
/// argument. [`FrameReader`] is now a thin `source + FrameDecoder`
/// bundle; both expose the identical lossless-resume guarantee across
/// `WouldBlock`, and it is fine to hand a different (or re-wrapped)
/// source to a later call as long as it continues the same byte stream.
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame_len: usize,
    frames: u64,
    /// Stream-header progress: bytes received so far, validated once full.
    header: [u8; 5],
    header_filled: usize,
    header_checked: bool,
    /// In-progress length varint, retained across [`SketchError::WouldBlock`].
    len_partial: Option<(u64, u32)>,
    /// In-progress frame body (internal, swapped into the caller's buffer
    /// on completion so a stalled read never exposes a torn frame).
    body: Vec<u8>,
    body_target: Option<usize>,
    body_filled: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A fresh decoder with the default frame-length ceiling.
    pub fn new() -> Self {
        Self::with_max_frame_len(DEFAULT_MAX_FRAME_LEN)
    }

    /// A fresh decoder with a custom per-frame length ceiling.
    pub fn with_max_frame_len(max_frame_len: usize) -> Self {
        Self {
            max_frame_len,
            frames: 0,
            header: [0u8; 5],
            header_filled: 0,
            header_checked: false,
            len_partial: None,
            body: Vec::new(),
            body_target: None,
            body_filled: 0,
        }
    }

    /// The ceiling a declared frame length is clamped against.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Frames decoded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Read and validate the stream header; resumable, no-op once done.
    fn poll_header(&mut self, source: &mut impl Read) -> Result<(), SketchError> {
        while self.header_filled < self.header.len() {
            match source.read(&mut self.header[self.header_filled..]) {
                Ok(0) => {
                    return Err(SketchError::Malformed(
                        "truncated frame-stream header".into(),
                    ))
                }
                Ok(n) => self.header_filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if retryable(&e) => return Err(SketchError::WouldBlock),
                Err(e) => return Err(io_err(e)),
            }
        }
        if !self.header_checked {
            if &self.header[..4] != STREAM_MAGIC {
                return Err(SketchError::Malformed("bad frame-stream magic".into()));
            }
            if self.header[4] != FRAME_STREAM_VERSION {
                return Err(SketchError::Decode(format!(
                    "unsupported frame-stream version {}",
                    self.header[4]
                )));
            }
            self.header_checked = true;
        }
        Ok(())
    }

    /// Read one byte; `Ok(None)` on EOF, retrying `Interrupted` and
    /// surfacing `WouldBlock`/`TimedOut` as the retryable error.
    fn read_byte(source: &mut impl Read) -> Result<Option<u8>, SketchError> {
        let mut byte = [0u8; 1];
        loop {
            match source.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(byte[0])),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if retryable(&e) => return Err(SketchError::WouldBlock),
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Read the next frame from `source` into `buf` (cleared and filled),
    /// returning its length — or `None` at clean end-of-stream.
    ///
    /// On [`SketchError::WouldBlock`] no progress is lost: call again
    /// (with any buffer) to resume the stalled header, length prefix, or
    /// body read. Any other error means the stream is broken.
    pub fn read_frame(
        &mut self,
        source: &mut impl Read,
        buf: &mut Vec<u8>,
    ) -> Result<Option<usize>, SketchError> {
        self.poll_header(source)?;
        let target = match self.body_target {
            Some(target) => target,
            None => {
                // Varint length prefix, byte by byte: EOF before the first
                // byte (of a fresh prefix) is the clean end of the stream,
                // EOF anywhere later is truncation.
                let (mut len, mut shift) = self.len_partial.take().unwrap_or((0, 0));
                let len = loop {
                    let byte = match Self::read_byte(source) {
                        Ok(Some(byte)) => byte,
                        Ok(None) if shift == 0 && len == 0 => return Ok(None),
                        Ok(None) => {
                            return Err(SketchError::Malformed("truncated frame length".into()))
                        }
                        Err(SketchError::WouldBlock) => {
                            self.len_partial = Some((len, shift));
                            return Err(SketchError::WouldBlock);
                        }
                        Err(e) => return Err(e),
                    };
                    if shift >= 64 || (shift == 63 && byte > 1) {
                        return Err(SketchError::Malformed(
                            "frame length varint overflow".into(),
                        ));
                    }
                    len |= u64::from(byte & 0x7f) << shift;
                    if byte & 0x80 == 0 {
                        break len;
                    }
                    shift += 7;
                };
                let target = usize::try_from(len)
                    .ok()
                    .filter(|&len| len <= self.max_frame_len)
                    .ok_or_else(|| {
                        SketchError::Malformed(format!(
                            "declared frame length {len} exceeds the {}-byte ceiling",
                            self.max_frame_len
                        ))
                    })?;
                self.body.clear();
                self.body.resize(target, 0);
                self.body_filled = 0;
                self.body_target = Some(target);
                target
            }
        };
        while self.body_filled < target {
            match source.read(&mut self.body[self.body_filled..target]) {
                Ok(0) => return Err(SketchError::Malformed("truncated frame body".into())),
                Ok(n) => self.body_filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if retryable(&e) => return Err(SketchError::WouldBlock),
                Err(e) => return Err(io_err(e)),
            }
        }
        // Complete: hand the body over by swap, so the internal buffer
        // inherits the caller's capacity for the next frame (steady-state
        // reading ping-pongs two buffers, no per-frame allocation).
        self.body_target = None;
        std::mem::swap(buf, &mut self.body);
        self.frames += 1;
        Ok(Some(target))
    }
}

/// Reads a frame stream from any [`Read`] source.
///
/// [`FrameReader::read_frame`] fills a caller-owned buffer (reused across
/// frames, so a steady-state reader allocates nothing once the buffer has
/// grown to the largest frame) and returns `Ok(None)` at clean EOF —
/// i.e. EOF exactly on a frame boundary; EOF anywhere else is
/// [`SketchError::Malformed`].
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    state: FrameDecoder,
}

impl<R: Read> FrameReader<R> {
    /// Open a stream on `source`, checking the header immediately.
    ///
    /// Blocks until the peer has sent the 5 header bytes; on a source
    /// with a read timeout this can fail with
    /// [`SketchError::WouldBlock`] — use [`FrameReader::lazy`] when the
    /// peer may be slow to speak.
    pub fn new(source: R) -> Result<Self, SketchError> {
        Self::with_max_frame_len(source, DEFAULT_MAX_FRAME_LEN)
    }

    /// Like [`FrameReader::new`] with a custom per-frame length ceiling.
    pub fn with_max_frame_len(source: R, max_frame_len: usize) -> Result<Self, SketchError> {
        let mut reader = Self::lazy_with_max_frame_len(source, max_frame_len);
        reader.poll_header()?;
        Ok(reader)
    }

    /// Open a stream without touching the source: the header is read and
    /// validated lazily by the first [`FrameReader::read_frame`] call
    /// (resumably, like everything else).
    pub fn lazy(source: R) -> Self {
        Self::lazy_with_max_frame_len(source, DEFAULT_MAX_FRAME_LEN)
    }

    /// Like [`FrameReader::lazy`] with a custom per-frame length ceiling.
    pub fn lazy_with_max_frame_len(source: R, max_frame_len: usize) -> Self {
        Self {
            inner: source,
            state: FrameDecoder::with_max_frame_len(max_frame_len),
        }
    }

    /// The ceiling a declared frame length is clamped against.
    pub fn max_frame_len(&self) -> usize {
        self.state.max_frame_len()
    }

    /// Frames read so far.
    pub fn frames(&self) -> u64 {
        self.state.frames()
    }

    /// A reference to the underlying source.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Read and validate the stream header; resumable, no-op once done.
    fn poll_header(&mut self) -> Result<(), SketchError> {
        self.state.poll_header(&mut self.inner)
    }

    /// Read the next frame into `buf` (cleared and filled), returning its
    /// length — or `None` at clean end-of-stream.
    ///
    /// On [`SketchError::WouldBlock`] no progress is lost: call again
    /// (with any buffer) to resume the stalled header, length prefix, or
    /// body read. Any other error means the stream is broken.
    pub fn read_frame(&mut self, buf: &mut Vec<u8>) -> Result<Option<usize>, SketchError> {
        self.state.read_frame(&mut self.inner, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;

    #[test]
    fn stream_roundtrip_many_frames() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut s = SketchConfig::dense_collapsing(0.01, 256).build().unwrap();
                for k in 1..=(i * 13 + 1) {
                    s.add(k as f64 * 0.5).unwrap();
                }
                s.encode()
            })
            .collect();
        for p in &payloads {
            writer.write_frame(p).unwrap();
        }
        assert_eq!(writer.frames(), 20);
        let bytes = writer.finish().unwrap();

        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        for (i, expected) in payloads.iter().enumerate() {
            let len = reader.read_frame(&mut buf).unwrap().unwrap();
            assert_eq!(len, expected.len(), "frame {i}");
            assert_eq!(&buf, expected, "frame {i}");
            // Every frame is a decodable sketch payload.
            assert!(crate::AnyDDSketch::decode(&buf).is_ok());
        }
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None, "EOF is sticky");
        assert_eq!(reader.frames(), 20);
    }

    #[test]
    fn empty_frames_and_empty_streams() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        writer.write_frame(b"").unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let mut buf = vec![1, 2, 3];
        assert_eq!(reader.read_frame(&mut buf).unwrap(), Some(0));
        assert!(buf.is_empty());
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);

        // A header-only stream holds zero frames.
        let bytes = FrameWriter::new(Vec::new()).unwrap().finish().unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn corruption_is_malformed_not_panic() {
        // Bad magic / version / truncated header.
        assert!(matches!(
            FrameReader::new(&b"XXSF\x01"[..]),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            FrameReader::new(&b"DDS"[..]),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            FrameReader::new(&b"DDSF\x09"[..]),
            Err(SketchError::Decode(_))
        ));

        // Truncated frame body.
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        writer.write_frame(&[7u8; 100]).unwrap();
        let bytes = writer.finish().unwrap();
        let mut buf = Vec::new();
        for cut in 6..bytes.len() {
            let mut reader = FrameReader::new(&bytes[..cut]).unwrap();
            assert!(
                matches!(reader.read_frame(&mut buf), Err(SketchError::Malformed(_))),
                "cut at {cut}"
            );
        }

        // Truncated length varint.
        let mut stream = b"DDSF\x01".to_vec();
        stream.push(0x80);
        let mut reader = FrameReader::new(stream.as_slice()).unwrap();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
    }

    /// A source that yields one byte per `read` call, optionally raising
    /// `WouldBlock` or `Interrupted` between every byte — the shape of a
    /// slow socket with a read timeout.
    struct HostileSource<'a> {
        bytes: &'a [u8],
        pos: usize,
        stall: Option<ErrorKind>,
        stall_next: bool,
    }

    impl Read for HostileSource<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if let Some(kind) = self.stall {
                self.stall_next = !self.stall_next;
                if !self.stall_next {
                    return Err(std::io::Error::new(kind, "stall"));
                }
            }
            if self.pos == self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn sample_stream() -> (Vec<Vec<u8>>, Vec<u8>) {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..8)
            .map(|i| {
                let mut s = SketchConfig::dense_collapsing(0.01, 128).build().unwrap();
                for k in 1..=(i * 37 + 1) {
                    s.add(k as f64 * 1.3).unwrap();
                }
                s.encode()
            })
            .collect();
        for p in &payloads {
            writer.write_frame(p).unwrap();
        }
        (payloads, writer.finish().unwrap())
    }

    #[test]
    fn byte_at_a_time_source_is_bit_identical() {
        let (payloads, bytes) = sample_stream();
        let source = HostileSource {
            bytes: &bytes,
            pos: 0,
            stall: None,
            stall_next: false,
        };
        let mut reader = FrameReader::new(source).unwrap();
        let mut buf = Vec::new();
        for expected in &payloads {
            assert_eq!(reader.read_frame(&mut buf).unwrap(), Some(expected.len()));
            assert_eq!(&buf, expected);
        }
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn would_block_between_every_byte_resumes_losslessly() {
        for kind in [ErrorKind::WouldBlock, ErrorKind::TimedOut] {
            let (payloads, bytes) = sample_stream();
            let source = HostileSource {
                bytes: &bytes,
                pos: 0,
                stall: Some(kind),
                stall_next: false,
            };
            // Lazy open: the constructor must not touch the stalling source.
            let mut reader = FrameReader::lazy(source);
            let mut buf = Vec::new();
            let mut stalls = 0u32;
            for expected in &payloads {
                let len = loop {
                    match reader.read_frame(&mut buf) {
                        Ok(len) => break len,
                        Err(SketchError::WouldBlock) => stalls += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                };
                assert_eq!(len, Some(expected.len()));
                assert_eq!(&buf, expected, "resumed frame must be bit-identical");
            }
            let end = loop {
                match reader.read_frame(&mut buf) {
                    Ok(end) => break end,
                    Err(SketchError::WouldBlock) => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            };
            assert_eq!(end, None);
            assert!(stalls as usize >= bytes.len() / 2, "stall injection ran");
        }
    }

    #[test]
    fn interrupted_is_retried_internally() {
        let (payloads, bytes) = sample_stream();
        let source = HostileSource {
            bytes: &bytes,
            pos: 0,
            stall: Some(ErrorKind::Interrupted),
            stall_next: false,
        };
        // `Interrupted` must never surface — not from the eager header
        // read, not from length prefixes, not from bodies.
        let mut reader = FrameReader::new(source).unwrap();
        let mut buf = Vec::new();
        for expected in &payloads {
            assert_eq!(reader.read_frame(&mut buf).unwrap(), Some(expected.len()));
            assert_eq!(&buf, expected);
        }
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn eager_open_on_stalled_source_is_retryable() {
        let bytes = b"DDSF\x01".to_vec();
        let source = HostileSource {
            bytes: &bytes,
            pos: 0,
            stall: Some(ErrorKind::WouldBlock),
            stall_next: false,
        };
        assert!(matches!(
            FrameReader::new(source),
            Err(SketchError::WouldBlock)
        ));
        // Lazy + retry loop gets through the same source.
        let source = HostileSource {
            bytes: &bytes,
            pos: 0,
            stall: Some(ErrorKind::WouldBlock),
            stall_next: false,
        };
        let mut reader = FrameReader::lazy(source);
        let mut buf = Vec::new();
        let end = loop {
            match reader.read_frame(&mut buf) {
                Ok(end) => break end,
                Err(SketchError::WouldBlock) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(end, None, "header-only stream holds zero frames");
    }

    #[test]
    fn hostile_lengths_are_clamped_before_allocation() {
        let mut stream = b"DDSF\x01".to_vec();
        put_varint(&mut stream, u64::MAX);
        let mut reader = FrameReader::new(stream.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
        assert!(buf.capacity() < 1024, "hostile length must not allocate");

        let mut stream = b"DDSF\x01".to_vec();
        put_varint(&mut stream, 1 << 30);
        let mut reader = FrameReader::with_max_frame_len(stream.as_slice(), 4096).unwrap();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
    }
}
