//! Length-prefixed frame streams: many payloads per connection or file.
//!
//! Agents batch several sketches per flush and aggregators checkpoint
//! whole stores; both need a framing layer above the raw payload codec.
//! The layout is deliberately minimal (see the [`crate::codec`] docs):
//! a 4-byte magic + version header, then `varint length` + payload bytes
//! per frame, ending at clean EOF. Frames are payload-agnostic — sketch
//! bytes, checkpoint cells, anything — so one stream dialect serves every
//! transport in the workspace.
//!
//! The reader is hardened the same way the payload decoder is: a declared
//! frame length is clamped against [`FrameReader::max_frame_len`]
//! *before* any allocation, truncation mid-frame is
//! [`SketchError::Malformed`], and I/O failures surface as
//! [`SketchError::Io`] so callers can tell corruption from a broken pipe.

use std::io::{Read, Write};

use super::varint::put_varint;
use crate::any::AnyDDSketch;
use sketch_core::SketchError;

/// Magic bytes opening every frame stream.
pub(crate) const STREAM_MAGIC: &[u8; 4] = b"DDSF";

/// Current frame-stream version byte.
pub const FRAME_STREAM_VERSION: u8 = 1;

/// Default ceiling on a single frame's declared length (16 MiB): far above
/// any real sketch payload, far below an allocation that hurts.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

fn io_err(e: std::io::Error) -> SketchError {
    SketchError::Io(e.to_string())
}

/// Writes a frame stream to any [`Write`] sink.
///
/// The stream header is written on construction; each
/// [`FrameWriter::write_frame`] appends one varint-length-prefixed frame.
/// Dropping the writer ends the stream (clean EOF *is* the terminator).
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    frames: u64,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Open a stream on `sink`, writing the header immediately.
    pub fn new(mut sink: W) -> Result<Self, SketchError> {
        sink.write_all(STREAM_MAGIC).map_err(io_err)?;
        sink.write_all(&[FRAME_STREAM_VERSION]).map_err(io_err)?;
        Ok(Self {
            inner: sink,
            frames: 0,
            scratch: Vec::with_capacity(10),
        })
    }

    /// Append one frame holding `payload`.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), SketchError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, payload.len() as u64);
        self.inner.write_all(&self.scratch).map_err(io_err)?;
        self.inner.write_all(payload).map_err(io_err)?;
        self.frames += 1;
        Ok(())
    }

    /// Encode `sketch` and append it as one frame.
    pub fn write_sketch(&mut self, sketch: &AnyDDSketch) -> Result<(), SketchError> {
        self.write_frame(&sketch.encode())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and hand the sink back.
    pub fn finish(mut self) -> Result<W, SketchError> {
        self.inner.flush().map_err(io_err)?;
        Ok(self.inner)
    }
}

/// Reads a frame stream from any [`Read`] source.
///
/// [`FrameReader::read_frame`] fills a caller-owned buffer (reused across
/// frames, so a steady-state reader allocates nothing once the buffer has
/// grown to the largest frame) and returns `Ok(None)` at clean EOF —
/// i.e. EOF exactly on a frame boundary; EOF anywhere else is
/// [`SketchError::Malformed`].
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    max_frame_len: usize,
    frames: u64,
}

impl<R: Read> FrameReader<R> {
    /// Open a stream on `source`, checking the header immediately.
    pub fn new(source: R) -> Result<Self, SketchError> {
        Self::with_max_frame_len(source, DEFAULT_MAX_FRAME_LEN)
    }

    /// Like [`FrameReader::new`] with a custom per-frame length ceiling.
    pub fn with_max_frame_len(mut source: R, max_frame_len: usize) -> Result<Self, SketchError> {
        let mut header = [0u8; 5];
        source.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                SketchError::Malformed("truncated frame-stream header".into())
            } else {
                io_err(e)
            }
        })?;
        if &header[..4] != STREAM_MAGIC {
            return Err(SketchError::Malformed("bad frame-stream magic".into()));
        }
        if header[4] != FRAME_STREAM_VERSION {
            return Err(SketchError::Decode(format!(
                "unsupported frame-stream version {}",
                header[4]
            )));
        }
        Ok(Self {
            inner: source,
            max_frame_len,
            frames: 0,
        })
    }

    /// The ceiling a declared frame length is clamped against.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Frames read so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Read one byte; `Ok(None)` on EOF.
    fn read_byte(&mut self) -> Result<Option<u8>, SketchError> {
        let mut byte = [0u8; 1];
        loop {
            match self.inner.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(byte[0])),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Read the next frame into `buf` (cleared and filled), returning its
    /// length — or `None` at clean end-of-stream.
    pub fn read_frame(&mut self, buf: &mut Vec<u8>) -> Result<Option<usize>, SketchError> {
        // Varint length prefix, byte by byte: EOF before the first byte is
        // the clean end of the stream, EOF anywhere later is truncation.
        let mut len = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = match self.read_byte()? {
                Some(byte) => byte,
                None if shift == 0 => return Ok(None),
                None => return Err(SketchError::Malformed("truncated frame length".into())),
            };
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SketchError::Malformed(
                    "frame length varint overflow".into(),
                ));
            }
            len |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let len = usize::try_from(len)
            .ok()
            .filter(|&len| len <= self.max_frame_len)
            .ok_or_else(|| {
                SketchError::Malformed(format!(
                    "declared frame length {len} exceeds the {}-byte ceiling",
                    self.max_frame_len
                ))
            })?;
        buf.clear();
        buf.resize(len, 0);
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                SketchError::Malformed("truncated frame body".into())
            } else {
                io_err(e)
            }
        })?;
        self.frames += 1;
        Ok(Some(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;

    #[test]
    fn stream_roundtrip_many_frames() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut s = SketchConfig::dense_collapsing(0.01, 256).build().unwrap();
                for k in 1..=(i * 13 + 1) {
                    s.add(k as f64 * 0.5).unwrap();
                }
                s.encode()
            })
            .collect();
        for p in &payloads {
            writer.write_frame(p).unwrap();
        }
        assert_eq!(writer.frames(), 20);
        let bytes = writer.finish().unwrap();

        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        for (i, expected) in payloads.iter().enumerate() {
            let len = reader.read_frame(&mut buf).unwrap().unwrap();
            assert_eq!(len, expected.len(), "frame {i}");
            assert_eq!(&buf, expected, "frame {i}");
            // Every frame is a decodable sketch payload.
            assert!(crate::AnyDDSketch::decode(&buf).is_ok());
        }
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None, "EOF is sticky");
        assert_eq!(reader.frames(), 20);
    }

    #[test]
    fn empty_frames_and_empty_streams() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        writer.write_frame(b"").unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let mut buf = vec![1, 2, 3];
        assert_eq!(reader.read_frame(&mut buf).unwrap(), Some(0));
        assert!(buf.is_empty());
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);

        // A header-only stream holds zero frames.
        let bytes = FrameWriter::new(Vec::new()).unwrap().finish().unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.read_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn corruption_is_malformed_not_panic() {
        // Bad magic / version / truncated header.
        assert!(matches!(
            FrameReader::new(&b"XXSF\x01"[..]),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            FrameReader::new(&b"DDS"[..]),
            Err(SketchError::Malformed(_))
        ));
        assert!(matches!(
            FrameReader::new(&b"DDSF\x09"[..]),
            Err(SketchError::Decode(_))
        ));

        // Truncated frame body.
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        writer.write_frame(&[7u8; 100]).unwrap();
        let bytes = writer.finish().unwrap();
        let mut buf = Vec::new();
        for cut in 6..bytes.len() {
            let mut reader = FrameReader::new(&bytes[..cut]).unwrap();
            assert!(
                matches!(reader.read_frame(&mut buf), Err(SketchError::Malformed(_))),
                "cut at {cut}"
            );
        }

        // Truncated length varint.
        let mut stream = b"DDSF\x01".to_vec();
        stream.push(0x80);
        let mut reader = FrameReader::new(stream.as_slice()).unwrap();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_lengths_are_clamped_before_allocation() {
        let mut stream = b"DDSF\x01".to_vec();
        put_varint(&mut stream, u64::MAX);
        let mut reader = FrameReader::new(stream.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
        assert!(buf.capacity() < 1024, "hostile length must not allocate");

        let mut stream = b"DDSF\x01".to_vec();
        put_varint(&mut stream, 1 << 30);
        let mut reader = FrameReader::with_max_frame_len(stream.as_slice(), 4096).unwrap();
        assert!(matches!(
            reader.read_frame(&mut buf),
            Err(SketchError::Malformed(_))
        ));
    }
}
