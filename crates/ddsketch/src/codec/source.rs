//! [`SketchSource`]: live sketches and borrowed views, one merge plane.
//!
//! The aggregator's working set is *mixed*: a resident sketch it has been
//! folding into, plus the payloads that arrived since the last fold —
//! still raw bytes. This module threads both through the k-way rank walk
//! and the merge path behind one small abstraction, so
//!
//! * `merged_quantiles_sources` answers quantiles of the union of N
//!   sketches-and-payloads with **zero** materialized sketches (and, with
//!   a reused [`SourceQuantileScratch`], zero heap allocations), and
//! * `merge_sources` folds payloads into a resident sketch with one bulk
//!   `add_bins` pass per store per payload — no intermediate stores, no
//!   per-bin insert bookkeeping.
//!
//! Both are defined generically on [`DDSketch`] (a source is then a live
//! `&DDSketch` of that exact type, or any view) and dispatched from
//! [`AnyDDSketch`] for the runtime-configured plane. Semantics match the
//! in-memory plane: sources must share a mapping family and `α` and a
//! store family (differing `max_bins` is allowed; the first source's
//! bound governs collapse prediction, mirroring [`Store::merge_clamp`]),
//! and results are identical to decoding every payload and running the
//! live-sketch equivalents — property-tested across every configuration.

use super::view::SketchView;
use super::SketchPayload;
use crate::any::{AnyDDSketch, AnyWeightedDDSketch};
use crate::mapping::{IndexMapping, MappingKind};
use crate::sketch::{DDSketch, GenericRankCursor};
use crate::store::{BinIter, Store, StoreKind};
use sketch_core::{target_rank, SketchError};

/// One input to the mixed merge plane: a borrowed live sketch or a
/// borrowed view over encoded bytes.
///
/// `S` is the live-sketch type — a concrete [`DDSketch`] instantiation on
/// the statically-typed plane, [`AnyDDSketch`] (the default) on the
/// runtime-configured one. Sources are `Copy`: a view is two slices and a
/// few scalars, a live source is a reference.
#[derive(Debug)]
pub enum SketchSource<'a, S = AnyDDSketch> {
    /// A live, in-memory sketch.
    Live(&'a S),
    /// A validated view over encoded payload bytes.
    View(SketchView<'a>),
    /// An already-decoded payload (bins + summary, no stores). The walk
    /// trusts the payload's documented invariants — bins strictly
    /// ascending, counts non-zero — which every decode upholds;
    /// hand-built payloads that violate them yield wrong estimates
    /// (never unsafety). Summary consistency *is* re-checked.
    Payload(&'a SketchPayload),
}

impl<S> Clone for SketchSource<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for SketchSource<'_, S> {}

impl<'a, S> From<&'a S> for SketchSource<'a, S> {
    fn from(sketch: &'a S) -> Self {
        SketchSource::Live(sketch)
    }
}

impl<'a, S> From<SketchView<'a>> for SketchSource<'a, S> {
    fn from(view: SketchView<'a>) -> Self {
        SketchSource::View(view)
    }
}

/// A bin walk over either kind of source: a store's borrowed [`BinIter`]
/// or a view's varint-decoding `ViewBinIter`. Double-ended like both, so
/// the negative-store rank walk and the clamp probes work unchanged.
#[derive(Debug, Clone)]
pub enum SourceBins<'a> {
    /// Bins of a live store.
    Store(BinIter<'a>),
    /// Bins of an encoded payload.
    View(super::view::ViewBinIter<'a>),
    /// Bins of a decoded payload.
    Pairs(std::slice::Iter<'a, (i32, u64)>),
}

impl Iterator for SourceBins<'_> {
    type Item = (i32, u64);

    fn next(&mut self) -> Option<(i32, u64)> {
        match self {
            SourceBins::Store(iter) => iter.next(),
            SourceBins::View(iter) => iter.next(),
            SourceBins::Pairs(iter) => iter.next().copied(),
        }
    }
}

impl DoubleEndedIterator for SourceBins<'_> {
    fn next_back(&mut self) -> Option<(i32, u64)> {
        match self {
            SourceBins::Store(iter) => iter.next_back(),
            SourceBins::View(iter) => iter.next_back(),
            SourceBins::Pairs(iter) => iter.next_back().copied(),
        }
    }
}

/// Reusable buffers for the mixed-source quantile walk: hold one across
/// calls and repeated `merged_quantiles_sources` queries perform **zero**
/// heap allocations on the dense store families (counting-allocator
/// tested) — the aggregator's per-tick read path. Contents are transient;
/// only capacity persists.
#[derive(Debug, Default)]
pub struct SourceQuantileScratch {
    /// Requested-quantile slots in ascending-rank visit order.
    order: Vec<usize>,
    /// Parked (empty) bin-walk and head buffers for the positive side.
    pos_iters: Vec<SourceBins<'static>>,
    pos_heads: Vec<Option<(i32, u64)>>,
    /// ... and the negative side.
    neg_iters: Vec<SourceBins<'static>>,
    neg_heads: Vec<Option<(i32, u64)>>,
}

/// Re-lifetime an **empty** source-bins buffer so its capacity can be
/// reused for the current call's borrows (and parked again afterwards).
fn recycle_sources<'dst, 'src>(mut buf: Vec<SourceBins<'src>>) -> Vec<SourceBins<'dst>> {
    buf.clear();
    // SAFETY: the vector was just emptied, so no `'src`-lifetimed value is
    // reinterpreted at the new lifetime; `Vec<SourceBins<'_>>` has one
    // layout regardless of the lifetime (lifetimes are erased at
    // monomorphization), so only the allocation's capacity crosses over.
    unsafe { std::mem::transmute::<Vec<SourceBins<'src>>, Vec<SourceBins<'dst>>>(buf) }
}

/// Sum of a decoded payload's bin counts (payloads cache no totals).
fn bins_total(bins: &[(i32, u64)]) -> u64 {
    bins.iter().map(|&(_, c)| c).sum()
}

/// Which store side a clamp is being predicted for — bounded dense stores
/// collapse from opposite ends on the two sides (lowest indices on the
/// positive store, highest on the negative one).
#[derive(Clone, Copy)]
enum Side {
    Positive,
    Negative,
}

/// K-way walk over the distinct ascending indices of several bin walks —
/// the Algorithm-3 collapse predictor's input (mirrors the sparse store's
/// internal `DistinctAscending`, generalized to mixed sources).
struct DistinctSources<'a> {
    iters: Vec<std::iter::Peekable<SourceBins<'a>>>,
}

impl<'a> DistinctSources<'a> {
    fn over(bins: impl Iterator<Item = SourceBins<'a>>) -> Self {
        Self {
            iters: bins.map(Iterator::peekable).collect(),
        }
    }
}

impl Iterator for DistinctSources<'_> {
    type Item = i32;

    fn next(&mut self) -> Option<i32> {
        let mut min: Option<i32> = None;
        for iter in &mut self.iters {
            if let Some(&(i, _)) = iter.peek() {
                min = Some(match min {
                    None => i,
                    Some(m) => m.min(i),
                });
            }
        }
        let min = min?;
        for iter in &mut self.iters {
            while matches!(iter.peek(), Some(&(i, _)) if i == min) {
                iter.next();
            }
        }
        Some(min)
    }
}

/// The effective-index clamp that merging these sources into a fresh
/// store of the first source's configuration would apply — the
/// mixed-source generalization of [`Store::merge_clamp_iter`], computed
/// from store *kind* + bound + the walks themselves (a view has no store
/// to ask).
fn sources_clamp<'a>(
    kind: StoreKind,
    limit: Option<usize>,
    bins: impl Iterator<Item = SourceBins<'a>> + Clone,
    side: Side,
) -> (i32, i32) {
    let unclamped = (i32::MIN, i32::MAX);
    let Some(limit) = limit else {
        return unclamped;
    };
    match (kind, side) {
        (StoreKind::Unbounded | StoreKind::Sparse, _) => unclamped,
        (StoreKind::CollapsingDense, Side::Positive) => {
            // Everything below the merged window's lowest kept bucket
            // folds into it.
            let Some(union_max) = bins.filter_map(|mut b| b.next_back().map(|(i, _)| i)).max()
            else {
                return unclamped;
            };
            let lo = (i64::from(union_max) - limit as i64 + 1).max(i64::from(i32::MIN));
            (lo as i32, i32::MAX)
        }
        (StoreKind::CollapsingDense, Side::Negative) => {
            // Mirror image: the negative store collapses its highest
            // |x| indices... which are its *lowest* buckets after the
            // highest-collapsing store's negation — in index terms,
            // everything above the merged window's highest kept bucket
            // folds down.
            let Some(union_min) = bins.filter_map(|mut b| b.next().map(|(i, _)| i)).min() else {
                return unclamped;
            };
            let hi = (i64::from(union_min) + limit as i64 - 1).min(i64::from(i32::MAX));
            (i32::MIN, hi as i32)
        }
        (StoreKind::CollapsingSparse, _) => {
            // Algorithm 3 on the summed buckets: if the union's distinct
            // indices exceed the bound, everything at or below the
            // (distinct − m + 1)-th smallest distinct index folds into it.
            let distinct = DistinctSources::over(bins.clone()).count();
            if distinct <= limit {
                return unclamped;
            }
            let threshold = DistinctSources::over(bins)
                .nth(distinct - limit)
                .expect("distinct > limit implies at least distinct - limit + 1 indices");
            (threshold, i32::MAX)
        }
    }
}

impl<'a, M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>>
    SketchSource<'a, DDSketch<M, SP, SN>>
{
    fn count(&self) -> u64 {
        match self {
            SketchSource::Live(s) => s.count(),
            SketchSource::View(v) => v.count(),
            SketchSource::Payload(p) => {
                p.zero_count + bins_total(&p.positive) + bins_total(&p.negative)
            }
        }
    }

    fn zero_count(&self) -> u64 {
        match self {
            SketchSource::Live(s) => s.zero_count(),
            SketchSource::View(v) => v.zero_count(),
            SketchSource::Payload(p) => p.zero_count,
        }
    }

    fn negative_total(&self) -> u64 {
        match self {
            SketchSource::Live(s) => s.negative_store().total_count(),
            SketchSource::View(v) => v.negative_section().total(),
            SketchSource::Payload(p) => bins_total(&p.negative),
        }
    }

    /// Raw `(min, max, sum)` with the empty-state sentinels intact, so
    /// accumulation folds are unconditional.
    fn summary(&self) -> (f64, f64, f64) {
        match self {
            SketchSource::Live(s) => (
                s.min().unwrap_or(f64::INFINITY),
                s.max().unwrap_or(f64::NEG_INFINITY),
                s.sum(),
            ),
            SketchSource::View(v) => v.raw_summary(),
            SketchSource::Payload(p) => (p.min, p.max, p.sum),
        }
    }

    /// Fallible only for raw payloads, whose `store` byte is caller data.
    fn store_kind(&self) -> Result<StoreKind, SketchError> {
        match self {
            SketchSource::Live(s) => Ok(s.positive_store().store_kind()),
            SketchSource::View(v) => Ok(v.store_kind()),
            SketchSource::Payload(p) => StoreKind::from_u8(p.store),
        }
    }

    fn bin_limit(&self) -> Option<usize> {
        match self {
            SketchSource::Live(s) => s.positive_store().bin_limit(),
            SketchSource::View(v) => v.bin_limit(),
            SketchSource::Payload(p) => usize::try_from(p.bin_limit).ok().filter(|&l| l > 0),
        }
    }

    fn positive_bins(&self) -> SourceBins<'a> {
        match *self {
            SketchSource::Live(s) => SourceBins::Store(s.positive_store().bin_iter()),
            SketchSource::View(v) => SourceBins::View(v.positive_bins()),
            SketchSource::Payload(p) => SourceBins::Pairs(p.positive.iter()),
        }
    }

    fn negative_bins(&self) -> SourceBins<'a> {
        match *self {
            SketchSource::Live(s) => SourceBins::Store(s.negative_store().bin_iter()),
            SketchSource::View(v) => SourceBins::View(v.negative_bins()),
            SketchSource::Payload(p) => SourceBins::Pairs(p.negative.iter()),
        }
    }

    /// The mapping every source must be compatible with, and the one
    /// whose `value()` the walk reports: a clone of the first live
    /// source's, or a bit-identical reconstruction from the first view's
    /// wire header ([`IndexMapping::with_accuracy`]).
    fn reference_mapping(sources: impl Iterator<Item = Self> + Clone) -> Result<M, SketchError> {
        for source in sources.clone() {
            if let SketchSource::Live(s) = source {
                return Ok(s.mapping().clone());
            }
        }
        let (alpha, kind) = match sources.clone().next() {
            Some(SketchSource::View(first)) => (first.relative_accuracy(), first.mapping_kind()),
            Some(SketchSource::Payload(first)) => {
                (first.relative_accuracy, MappingKind::from_u8(first.kind)?)
            }
            _ => return Err(SketchError::Empty),
        };
        let mapping = M::with_accuracy(alpha)?;
        if mapping.kind() != kind {
            return Err(SketchError::IncompatibleMerge(format!(
                "payload mapping {kind:?} walked as {:?}",
                mapping.kind()
            )));
        }
        Ok(mapping)
    }

    fn check_compatible(&self, reference: &M, ref_kind: StoreKind) -> Result<(), SketchError> {
        let (kind, alpha, store) = match self {
            SketchSource::Live(s) => (
                s.mapping().kind(),
                s.mapping().relative_accuracy(),
                s.positive_store().store_kind(),
            ),
            SketchSource::View(v) => {
                // DDS3 counts are not integers; weighted payloads join the
                // weighted merge plane (`AnyWeightedDDSketch::merge_view`).
                if v.is_weighted() {
                    return Err(SketchError::IncompatibleMerge(
                        "weighted DDS3 payload on the integer merge plane".into(),
                    ));
                }
                (v.mapping_kind(), v.relative_accuracy(), v.store_kind())
            }
            SketchSource::Payload(p) => {
                // A raw payload's fields are caller data: hold its summary
                // to the same standard the byte decoders enforce, so a
                // hand-built inconsistency can't poison a resident sketch
                // or a walk's clamp.
                super::validate_summary(p)?;
                (
                    MappingKind::from_u8(p.kind)?,
                    p.relative_accuracy,
                    StoreKind::from_u8(p.store)?,
                )
            }
        };
        let mergeable =
            kind == reference.kind() && (alpha - reference.relative_accuracy()).abs() < 1e-12;
        if !mergeable {
            return Err(SketchError::IncompatibleMerge(format!(
                "mapping {:?} (α={}) vs {:?} (α={})",
                reference.kind(),
                reference.relative_accuracy(),
                kind,
                alpha
            )));
        }
        if store != ref_kind {
            return Err(SketchError::IncompatibleMerge(format!(
                "store family {} vs {}",
                ref_kind.name(),
                store.name()
            )));
        }
        Ok(())
    }
}

impl<M: IndexMapping, SP: Store<Count = u64>, SN: Store<Count = u64>> DDSketch<M, SP, SN> {
    /// Estimate quantiles of the merge of mixed live-and-encoded sources
    /// without materializing anything: the decode-free generalization of
    /// [`DDSketch::merged_quantiles_into`].
    ///
    /// Live shards contribute their borrowed store bins, views decode
    /// their varint bins lazily inside the walk; bounded-store collapse
    /// is accounted for by the same effective-index clamp the in-memory
    /// plane uses (predicted from store kind + the first source's bound).
    /// The estimates are **identical** to decoding every view, merging
    /// everything into a clone of the first source, and querying it —
    /// property-tested across every configuration, collapsed tails
    /// included.
    ///
    /// With `scratch` and `out` reused across calls the walk performs no
    /// heap allocations for dense-family sources (the sparse families
    /// allocate only in the collapse predictor).
    ///
    /// # Errors
    ///
    /// `InvalidQuantile` for any `q` outside `[0, 1]`;
    /// `IncompatibleMerge` when sources disagree on mapping family, `α`,
    /// or store family; `Empty` when there are no sources or no data
    /// (unless `qs` is empty, which always succeeds).
    pub fn merged_quantiles_sources<'a>(
        sources: impl Iterator<Item = SketchSource<'a, Self>> + Clone,
        qs: &[f64],
        scratch: &mut SourceQuantileScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError>
    where
        M: 'a,
        SP: 'a,
        SN: 'a,
    {
        for &q in qs {
            if !(0.0..=1.0).contains(&q) {
                return Err(SketchError::InvalidQuantile(q));
            }
        }
        out.clear();
        if qs.is_empty() {
            return Ok(());
        }
        let Some(first) = sources.clone().next() else {
            return Err(SketchError::Empty);
        };
        let reference = SketchSource::reference_mapping(sources.clone())?;
        let ref_kind = first.store_kind()?;
        let ref_limit = first.bin_limit();
        for source in sources.clone() {
            source.check_compatible(&reference, ref_kind)?;
        }

        let (mut n, mut neg_total, mut zero_total) = (0u64, 0u64, 0u64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for source in sources.clone() {
            n += source.count();
            neg_total += source.negative_total();
            zero_total += source.zero_count();
            let (lo, hi, _) = source.summary();
            min = min.min(lo);
            max = max.max(hi);
        }
        if n == 0 {
            return Err(SketchError::Empty);
        }

        let pos_clamp = sources_clamp(
            ref_kind,
            ref_limit,
            sources.clone().map(|s| s.positive_bins()),
            Side::Positive,
        );
        let neg_clamp = sources_clamp(
            ref_kind,
            ref_limit,
            sources.clone().map(|s| s.negative_bins()),
            Side::Negative,
        );

        // Heads cursors per side, on the scratch's recycled buffers. The
        // positive walk runs ascending; the negative walk runs from the
        // most negative value, i.e. from the largest |x| bucket downward.
        let mut pos_iters = recycle_sources(std::mem::take(&mut scratch.pos_iters));
        pos_iters.extend(sources.clone().map(|s| s.positive_bins()));
        let mut pos = GenericRankCursor::with_buffers(
            pos_iters,
            std::mem::take(&mut scratch.pos_heads),
            false,
            pos_clamp,
        );
        let mut neg_iters = recycle_sources(std::mem::take(&mut scratch.neg_iters));
        neg_iters.extend(sources.map(|s| s.negative_bins()));
        let mut neg = GenericRankCursor::with_buffers(
            neg_iters,
            std::mem::take(&mut scratch.neg_heads),
            true,
            neg_clamp,
        );

        scratch.order.clear();
        scratch.order.extend(0..qs.len());
        scratch
            .order
            .sort_unstable_by(|&a, &b| qs[a].total_cmp(&qs[b]));

        let neg_total = neg_total as f64;
        let zero_total = zero_total as f64;
        out.resize(qs.len(), 0.0);
        for &slot in &scratch.order {
            let rank = target_rank(qs[slot], n);
            let raw = if rank < neg_total {
                let idx = neg
                    .advance_to(rank)
                    .expect("rank < neg_total implies a negative bin");
                -reference.value(idx)
            } else if rank < neg_total + zero_total {
                0.0
            } else {
                let idx = pos
                    .advance_to(rank - neg_total - zero_total)
                    .expect("rank < total implies a positive bin");
                reference.value(idx)
            };
            out[slot] = raw.clamp(min, max);
        }

        let (iters, heads) = pos.into_buffers();
        scratch.pos_iters = recycle_sources(iters);
        scratch.pos_heads = heads;
        let (iters, heads) = neg.into_buffers();
        scratch.neg_iters = recycle_sources(iters);
        scratch.neg_heads = heads;
        Ok(())
    }

    /// Merge mixed live-and-encoded sources into this sketch, in iterator
    /// order — the decode-free generalization of [`DDSketch::merge_many`].
    ///
    /// Live sources merge through the store-level bulk path; views are
    /// absorbed with **one** [`Store::add_bins`] pass per store (a single
    /// capacity/collapse decision per payload, bins flowing straight from
    /// the varint walk into the resident stores — no intermediate sketch,
    /// no intermediate store). The result is bucket-identical to decoding
    /// every view and folding `merge_from` in the same order
    /// (property-tested across every configuration).
    ///
    /// # Errors
    ///
    /// `IncompatibleMerge` when any source's mapping family, `α`, or
    /// store family differs from this sketch's; the check runs before any
    /// mutation, so a failed call leaves the sketch untouched. A view's
    /// differing `max_bins` is accepted — bucket boundaries agree and the
    /// resident store re-collapses to its own bound (Algorithm 4).
    pub fn merge_sources<'a>(
        &mut self,
        sources: impl Iterator<Item = SketchSource<'a, Self>> + Clone,
    ) -> Result<(), SketchError>
    where
        M: 'a,
        SP: 'a,
        SN: 'a,
    {
        let ref_kind = self.positive_store().store_kind();
        for source in sources.clone() {
            source.check_compatible(self.mapping(), ref_kind)?;
        }
        // One reusable bin buffer serves every view in the batch; its
        // capacity is the largest payload's bin count.
        let mut bins: Vec<(i32, u64)> = Vec::new();
        for source in sources {
            match source {
                SketchSource::Live(other) => {
                    self.merge_from(other)
                        .expect("compatibility verified above");
                }
                SketchSource::View(view) => {
                    let (min, max, sum) = view.raw_summary();
                    bins.clear();
                    view.append_positive_bins(&mut bins);
                    let neg_start = bins.len();
                    view.append_negative_bins(&mut bins);
                    let (pos_bins, neg_bins) = bins.split_at(neg_start);
                    self.absorb_bins(view.zero_count(), min, max, sum, pos_bins, neg_bins);
                }
                SketchSource::Payload(p) => {
                    // Already decoded: the bins absorb straight from the
                    // payload's slices, one bulk pass per store.
                    self.absorb_bins(p.zero_count, p.min, p.max, p.sum, &p.positive, &p.negative);
                }
            }
        }
        Ok(())
    }

    /// Absorb one encoded payload; see [`DDSketch::merge_sources`].
    pub fn merge_view(&mut self, view: &SketchView<'_>) -> Result<(), SketchError> {
        self.merge_sources(std::iter::once(SketchSource::View(*view)))
    }
}

/// Which preset variant a runtime source belongs to — from the enum for
/// live sources, from the validated wire header for views.
enum VariantKind {
    Unbounded,
    Bounded,
    Fast,
    Sparse,
    PaperExact,
}

fn variant_of(mapping: MappingKind, store: StoreKind) -> Result<VariantKind, SketchError> {
    Ok(match (mapping, store) {
        (MappingKind::Logarithmic, StoreKind::Unbounded) => VariantKind::Unbounded,
        (MappingKind::Logarithmic, StoreKind::CollapsingDense) => VariantKind::Bounded,
        (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => VariantKind::Fast,
        (MappingKind::Logarithmic, StoreKind::Sparse) => VariantKind::Sparse,
        (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => VariantKind::PaperExact,
        (mapping, store) => {
            return Err(SketchError::Decode(format!(
                "no sketch variant for {mapping:?} mapping with {} store",
                store.name()
            )))
        }
    })
}

fn variant_kind(source: &SketchSource<'_, AnyDDSketch>) -> Result<VariantKind, SketchError> {
    match source {
        SketchSource::Live(any) => Ok(match any {
            AnyDDSketch::Unbounded(_) => VariantKind::Unbounded,
            AnyDDSketch::Bounded(_) => VariantKind::Bounded,
            AnyDDSketch::Fast(_) => VariantKind::Fast,
            AnyDDSketch::Sparse(_) => VariantKind::Sparse,
            AnyDDSketch::PaperExact(_) => VariantKind::PaperExact,
        }),
        SketchSource::View(view) => variant_of(view.mapping_kind(), view.store_kind()),
        SketchSource::Payload(p) => {
            variant_of(MappingKind::from_u8(p.kind)?, StoreKind::from_u8(p.store)?)
        }
    }
}

fn describe_source(source: &SketchSource<'_, AnyDDSketch>) -> String {
    match source {
        SketchSource::Live(any) => format!("{:?}", any.config()),
        SketchSource::View(view) => format!("{:?}", view.config()),
        SketchSource::Payload(p) => format!(
            "payload (kind {}, store {}, α={})",
            p.kind, p.store, p.relative_accuracy
        ),
    }
}

impl AnyDDSketch {
    /// Estimate quantiles over mixed live sketches and encoded payloads;
    /// see [`DDSketch::merged_quantiles_sources`]. The first source
    /// selects the variant; every live source must wrap it and every view
    /// must name a compatible configuration.
    pub fn merged_quantiles_sources<'a>(
        sources: impl Iterator<Item = SketchSource<'a, AnyDDSketch>> + Clone,
        qs: &[f64],
        scratch: &mut SourceQuantileScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        let Some(first) = sources.clone().next() else {
            for &q in qs {
                if !(0.0..=1.0).contains(&q) {
                    return Err(SketchError::InvalidQuantile(q));
                }
            }
            out.clear();
            return if qs.is_empty() {
                Ok(())
            } else {
                Err(SketchError::Empty)
            };
        };
        macro_rules! sources_arm {
            ($variant:ident) => {{
                for source in sources.clone() {
                    if let SketchSource::Live(other) = source {
                        if !matches!(other, AnyDDSketch::$variant(_)) {
                            return Err(SketchError::IncompatibleMerge(format!(
                                "store/mapping mismatch: {} vs {:?}",
                                describe_source(&first),
                                other.config()
                            )));
                        }
                    }
                }
                DDSketch::merged_quantiles_sources(
                    sources.map(|source| match source {
                        SketchSource::Live(AnyDDSketch::$variant(sketch)) => {
                            SketchSource::Live(sketch)
                        }
                        SketchSource::Live(_) => unreachable!("live variants checked above"),
                        SketchSource::View(view) => SketchSource::View(view),
                        SketchSource::Payload(p) => SketchSource::Payload(p),
                    }),
                    qs,
                    scratch,
                    out,
                )
            }};
        }
        match variant_kind(&first)? {
            VariantKind::Unbounded => sources_arm!(Unbounded),
            VariantKind::Bounded => sources_arm!(Bounded),
            VariantKind::Fast => sources_arm!(Fast),
            VariantKind::Sparse => sources_arm!(Sparse),
            VariantKind::PaperExact => sources_arm!(PaperExact),
        }
    }

    /// Merge mixed live sketches and encoded payloads into this one, in
    /// iterator order; see [`DDSketch::merge_sources`]. Every live source
    /// must wrap this sketch's variant and every view must name a
    /// compatible configuration; the check runs before any mutation.
    pub fn merge_sources<'a>(
        &mut self,
        sources: impl Iterator<Item = SketchSource<'a, AnyDDSketch>> + Clone,
    ) -> Result<(), SketchError> {
        macro_rules! merge_arm {
            ($target:ident, $variant:ident) => {{
                for source in sources.clone() {
                    if let SketchSource::Live(other) = source {
                        if !matches!(other, AnyDDSketch::$variant(_)) {
                            return Err(SketchError::IncompatibleMerge(format!(
                                "store/mapping mismatch: {:?} vs {:?}",
                                crate::any::config_of($target),
                                other.config()
                            )));
                        }
                    }
                }
                $target.merge_sources(sources.map(|source| match source {
                    SketchSource::Live(AnyDDSketch::$variant(sketch)) => SketchSource::Live(sketch),
                    SketchSource::Live(_) => unreachable!("live variants checked above"),
                    SketchSource::View(view) => SketchSource::View(view),
                    SketchSource::Payload(p) => SketchSource::Payload(p),
                }))
            }};
        }
        match self {
            AnyDDSketch::Unbounded(s) => merge_arm!(s, Unbounded),
            AnyDDSketch::Bounded(s) => merge_arm!(s, Bounded),
            AnyDDSketch::Fast(s) => merge_arm!(s, Fast),
            AnyDDSketch::Sparse(s) => merge_arm!(s, Sparse),
            AnyDDSketch::PaperExact(s) => merge_arm!(s, PaperExact),
        }
    }

    /// Absorb one encoded payload without materializing a sketch for it;
    /// see [`DDSketch::merge_sources`].
    pub fn merge_view(&mut self, view: &SketchView<'_>) -> Result<(), SketchError> {
        self.merge_sources(std::iter::once(SketchSource::View(*view)))
    }
}

/// Reusable bin scratch for [`AnyWeightedDDSketch::merge_view_with`].
///
/// Weighted views are forward-only (the `DDS3` escape encoding defeats
/// the backward varint boundary scan), so the weighted merge plane
/// materializes each view's bins before the bulk absorb; recycling this
/// scratch keeps the steady-state fold allocation-free.
#[derive(Debug, Default)]
pub struct WeightedMergeScratch {
    pos: Vec<(i32, f64)>,
    neg: Vec<(i32, f64)>,
}

impl AnyWeightedDDSketch {
    /// Absorb one encoded payload — any dialect (`DDS1`/`DDS2`/`DDS3`),
    /// integer counts widened exactly — without materializing a sketch
    /// for it.
    pub fn merge_view(&mut self, view: &SketchView<'_>) -> Result<(), SketchError> {
        let mut scratch = WeightedMergeScratch::default();
        self.merge_view_with(view, &mut scratch)
    }

    /// [`AnyWeightedDDSketch::merge_view`] with a caller-owned scratch —
    /// the weighted aggregator's steady-state form: with warm scratch
    /// capacity the fold never touches the allocator.
    pub fn merge_view_with(
        &mut self,
        view: &SketchView<'_>,
        scratch: &mut WeightedMergeScratch,
    ) -> Result<(), SketchError> {
        let config = self.config();
        let vc = view.config();
        // The payload admission predicate (`matches_config`): mapping
        // family, store family, and α must agree; `max_bins` may differ
        // (the receiver's bound governs).
        if vc.mapping != config.mapping
            || vc.store != config.store
            || (vc.alpha - config.alpha).abs() >= 1e-12
        {
            return Err(SketchError::IncompatibleMerge(format!(
                "store/mapping mismatch: {config:?} vs {vc:?}"
            )));
        }
        if view.is_empty() {
            return Ok(());
        }
        scratch.pos.clear();
        scratch.neg.clear();
        view.append_weighted_positive_bins(&mut scratch.pos);
        view.append_weighted_negative_bins(&mut scratch.neg);
        let (min, max, sum) = view.raw_summary();
        self.absorb_raw(
            view.weighted_zero_count(),
            min,
            max,
            sum,
            &scratch.pos,
            &scratch.neg,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DDSketchBuilder, SketchConfig};

    fn encoded(config: SketchConfig, values: impl IntoIterator<Item = f64>) -> Vec<u8> {
        let mut s = config.build().unwrap();
        for v in values {
            s.add(v).unwrap();
        }
        s.encode()
    }

    #[test]
    fn mixed_walk_equals_decode_then_merge() {
        for config in SketchConfig::all(0.01, 128) {
            let mut live = config.build().unwrap();
            for i in 1..=500 {
                live.add(i as f64 * 0.3).unwrap();
            }
            let frames: Vec<Vec<u8>> = (0..4)
                .map(|k| {
                    encoded(
                        config,
                        (1..=200)
                            .map(|i| (i * (k + 1)) as f64 * if i % 5 == 0 { -0.2 } else { 1.1 }),
                    )
                })
                .collect();
            let views: Vec<SketchView<'_>> = frames
                .iter()
                .map(|f| SketchView::parse(f).unwrap())
                .collect();

            // Baseline: decode + fold + query.
            let mut materialized = live.clone();
            for f in &frames {
                let decoded = AnyDDSketch::decode(f).unwrap();
                materialized.merge_from(&decoded).unwrap();
            }
            let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
            let expected = materialized.quantiles(&qs).unwrap();

            // Decode-free walk.
            let mut scratch = SourceQuantileScratch::default();
            let mut out = Vec::new();
            let sources = std::iter::once(SketchSource::Live(&live))
                .chain(views.iter().map(|v| SketchSource::View(*v)));
            AnyDDSketch::merged_quantiles_sources(sources.clone(), &qs, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(
                out,
                expected,
                "{}: walk must match materialized",
                config.name()
            );

            // Decode-free fold.
            let mut folded = live.clone();
            folded
                .merge_sources(views.iter().map(|v| SketchSource::View(*v)))
                .unwrap();
            assert_eq!(
                folded.to_payload(),
                materialized.to_payload(),
                "{}: merge_sources must match decode-then-merge",
                config.name()
            );
        }
    }

    #[test]
    fn sources_reject_incompatibles_atomically() {
        let mut a = DDSketchBuilder::new(0.01)
            .dense_collapsing(128)
            .build()
            .unwrap();
        a.add(1.0).unwrap();
        let foreign_alpha = encoded(SketchConfig::dense_collapsing(0.02, 128), [1.0]);
        let foreign_store = encoded(SketchConfig::sparse(0.01), [1.0]);
        let before = a.to_payload();
        for frame in [&foreign_alpha, &foreign_store] {
            let view = SketchView::parse(frame).unwrap();
            assert!(matches!(
                a.merge_view(&view),
                Err(SketchError::IncompatibleMerge(_))
            ));
            assert_eq!(a.to_payload(), before, "failed merge must not mutate");
            let mut scratch = SourceQuantileScratch::default();
            let mut out = Vec::new();
            assert!(matches!(
                AnyDDSketch::merged_quantiles_sources(
                    [SketchSource::Live(&a), SketchSource::View(view)].into_iter(),
                    &[0.5],
                    &mut scratch,
                    &mut out
                ),
                Err(SketchError::IncompatibleMerge(_))
            ));
        }
        // Cross-variant live sources are rejected by the dispatch too.
        let sparse = SketchConfig::sparse(0.01).build().unwrap();
        let mut scratch = SourceQuantileScratch::default();
        let mut out = Vec::new();
        assert!(matches!(
            AnyDDSketch::merged_quantiles_sources(
                [SketchSource::Live(&a), SketchSource::Live(&sparse)].into_iter(),
                &[0.5],
                &mut scratch,
                &mut out
            ),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn view_only_sources_need_no_live_sketch() {
        let frames: Vec<Vec<u8>> = (1..=3)
            .map(|k| {
                encoded(
                    SketchConfig::fast(0.01, 256),
                    (1..=100).map(|i| (i * k) as f64),
                )
            })
            .collect();
        let views: Vec<SketchView<'_>> = frames
            .iter()
            .map(|f| SketchView::parse(f).unwrap())
            .collect();
        let mut scratch = SourceQuantileScratch::default();
        let mut out = Vec::new();
        AnyDDSketch::merged_quantiles_sources(
            views.iter().map(|v| SketchSource::View(*v)),
            &[0.5, 0.99],
            &mut scratch,
            &mut out,
        )
        .unwrap();
        let mut union = AnyDDSketch::decode(&frames[0]).unwrap();
        for f in &frames[1..] {
            union.merge_from(&AnyDDSketch::decode(f).unwrap()).unwrap();
        }
        assert_eq!(out, union.quantiles(&[0.5, 0.99]).unwrap());
        // Empty source set: empty qs succeed, data queries say Empty.
        let none = std::iter::empty::<SketchSource<'_, AnyDDSketch>>();
        assert!(
            AnyDDSketch::merged_quantiles_sources(none.clone(), &[], &mut scratch, &mut out)
                .is_ok()
        );
        assert!(matches!(
            AnyDDSketch::merged_quantiles_sources(none, &[0.5], &mut scratch, &mut out),
            Err(SketchError::Empty)
        ));
    }
}
