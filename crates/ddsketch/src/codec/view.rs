//! [`SketchView`]: a validated, zero-allocation view over encoded sketch
//! bytes.
//!
//! An aggregator that receives thousands of `DDS2` payloads per second
//! does not need a materialized sketch per payload — it needs the
//! payload's *bins*, walked in place. `SketchView::parse` validates a
//! byte buffer once (one forward pass, no allocation) and then exposes
//! the same bin-walk surface as a live sketch: header accessors, exact
//! totals, and a double-ended [`ViewBinIter`] over the varint-delta bins
//! of each store. Views plug into the merge plane through
//! [`crate::codec::SketchSource`], so quantiles over N payloads and
//! absorption into a resident sketch both run straight over the wire
//! bytes.
//!
//! A caller that retains the frame bytes (the pipeline's aggregator, a
//! payload cache) can detach a view's [`SketchViewMeta`] — the parse
//! result with the borrow replaced by offsets — and rebind it in O(1)
//! later, paying the validation walk exactly once per frame.

use bytes::Buf;

use super::varint::{get_varint, rsplit_varint, scan_varint, scan_weighted_count, unzigzag};
use super::{MAGIC, MAGIC_V1, MAGIC_V3};
use crate::config::SketchConfig;
use crate::mapping::MappingKind;
use crate::store::StoreKind;
use sketch_core::SketchError;

/// One store's encoded bin section, as offsets into the frame.
///
/// `offset..offset + len` spans the section's varints *after* the leading
/// bin-count varint: `zigzag(first_index), count, (gap, count)*`. The
/// summary fields let rank walks budget totals and clamp bounds without
/// a second decode.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinSection {
    offset: usize,
    len: usize,
    bins: usize,
    /// Index of the first (lowest) bin; meaningless when `bins == 0`.
    /// With `last`, bounds the section's bucket span for the dense
    /// decode-growth ceiling.
    first: i32,
    /// Index of the last (highest) bin; meaningless when `bins == 0`.
    /// Seeds the back cursor of the double-ended bin walk.
    last: i32,
    /// Sum of the section's counts. Exact for the integer dialects;
    /// zero for `DDS3` sections (whose total lives in `ftotal`).
    total: u64,
    /// Sum of the section's counts as an `f64` — exact for `DDS3`
    /// sections, a rounding of `total` for the integer dialects.
    ftotal: f64,
}

impl BinSection {
    /// Validate one bin section of `frame` starting at `*pos`, advancing
    /// the cursor past it.
    fn parse(frame: &[u8], pos: &mut usize) -> Result<Self, SketchError> {
        let n = scan_varint(frame, pos)?;
        // A bin is at least two bytes (index-or-gap varint + count
        // varint); clamp the declared length against the bytes actually
        // present *before* trusting it anywhere (hostile payloads declare
        // absurd lengths hoping for a huge allocation or a long loop).
        let n = usize::try_from(n)
            .ok()
            .filter(|n| {
                n.checked_mul(2)
                    .is_some_and(|floor| floor <= frame.len() - *pos)
            })
            .ok_or_else(|| SketchError::Malformed(format!("bin count {n} exceeds payload size")))?;
        let offset = *pos;
        let (mut first, mut last, mut total) = (0i64, 0i64, 0u64);
        if n > 0 {
            // First bin: absolute zigzag index (peeled so the loop body
            // is branch-minimal — this validation walk runs once per
            // received payload on the aggregator's hot path).
            let mut idx = unzigzag(scan_varint(frame, pos)?);
            first = idx;
            if idx < i64::from(i32::MIN) || idx > i64::from(i32::MAX) {
                return Err(SketchError::Malformed(format!(
                    "bin index {idx} out of i32 range"
                )));
            }
            let count = scan_varint(frame, pos)?;
            if count == 0 {
                return Err(SketchError::Malformed("zero-count bin".into()));
            }
            total = count;
            for _ in 1..n {
                // Indices are strictly ascending, so after the first only
                // the upper bound can be violated.
                idx = idx
                    .checked_add(scan_varint(frame, pos)? as i64)
                    .and_then(|v| v.checked_add(1))
                    .ok_or_else(|| SketchError::Malformed("bin index overflow".into()))?;
                if idx > i64::from(i32::MAX) {
                    return Err(SketchError::Malformed(format!(
                        "bin index {idx} out of i32 range"
                    )));
                }
                let count = scan_varint(frame, pos)?;
                if count == 0 {
                    return Err(SketchError::Malformed("zero-count bin".into()));
                }
                total = total
                    .checked_add(count)
                    .ok_or_else(|| SketchError::Malformed("bin count total overflow".into()))?;
            }
            last = idx;
        }
        Ok(Self {
            offset,
            len: *pos - offset,
            bins: n,
            first: first as i32,
            last: last as i32,
            total,
            ftotal: total as f64,
        })
    }

    /// Validate one **`DDS3`** bin section of `frame` starting at `*pos`.
    /// Same structure as the integer layout, but each count is a weighted
    /// count (see [`scan_weighted_count`]): every bin's count must be
    /// finite and strictly positive, and the section total must stay
    /// finite.
    fn parse_weighted(frame: &[u8], pos: &mut usize) -> Result<Self, SketchError> {
        let n = scan_varint(frame, pos)?;
        // A weighted bin still needs at least 2 bytes (index varint +
        // count tag); clamp before trusting the declared length.
        let n = usize::try_from(n)
            .ok()
            .filter(|n| {
                n.checked_mul(2)
                    .is_some_and(|floor| floor <= frame.len() - *pos)
            })
            .ok_or_else(|| SketchError::Malformed(format!("bin count {n} exceeds payload size")))?;
        let offset = *pos;
        let (mut first, mut ftotal) = (0i64, 0.0f64);
        let mut idx = 0i64;
        for k in 0..n {
            if k == 0 {
                idx = unzigzag(scan_varint(frame, pos)?);
                first = idx;
                if idx < i64::from(i32::MIN) || idx > i64::from(i32::MAX) {
                    return Err(SketchError::Malformed(format!(
                        "bin index {idx} out of i32 range"
                    )));
                }
            } else {
                idx = idx
                    .checked_add(scan_varint(frame, pos)? as i64)
                    .and_then(|v| v.checked_add(1))
                    .ok_or_else(|| SketchError::Malformed("bin index overflow".into()))?;
                if idx > i64::from(i32::MAX) {
                    return Err(SketchError::Malformed(format!(
                        "bin index {idx} out of i32 range"
                    )));
                }
            }
            let count = scan_weighted_count(frame, pos)?;
            if !count.is_finite() || count <= 0.0 {
                return Err(SketchError::Malformed(format!(
                    "weighted bin count {count} is not a positive finite value"
                )));
            }
            ftotal += count;
        }
        if !ftotal.is_finite() {
            return Err(SketchError::Malformed("bin count total overflow".into()));
        }
        Ok(Self {
            offset,
            len: *pos - offset,
            bins: n,
            first: first as i32,
            last: if n > 0 { idx as i32 } else { 0 },
            total: 0,
            ftotal,
        })
    }

    /// Bucket-index span the section covers (0 when empty).
    fn span(&self) -> u64 {
        if self.bins == 0 {
            0
        } else {
            (i64::from(self.last) - i64::from(self.first) + 1).unsigned_abs()
        }
    }

    /// Decode the whole section into `out` in one tight cursor loop — the
    /// fold path's bulk transfer, ~2× faster than draining the
    /// double-ended iterator bin by bin (no per-item iterator state or
    /// capacity checks).
    fn append_to(&self, frame: &[u8], out: &mut Vec<(i32, u64)>) {
        if self.bins == 0 {
            return;
        }
        let bytes = &frame[self.offset..self.offset + self.len];
        let mut pos = 0usize;
        out.reserve(self.bins);
        let mut idx = unzigzag(ViewBinIter::expect_varint(bytes, &mut pos));
        let count = ViewBinIter::expect_varint(bytes, &mut pos);
        out.push((idx as i32, count));
        for _ in 1..self.bins {
            idx += ViewBinIter::expect_varint(bytes, &mut pos) as i64 + 1;
            let count = ViewBinIter::expect_varint(bytes, &mut pos);
            out.push((idx as i32, count));
        }
    }

    /// Decode a whole **`DDS3`** section into `out` (appended) in one
    /// cursor loop — the weighted fold path's bulk transfer.
    fn append_weighted_to(&self, frame: &[u8], out: &mut Vec<(i32, f64)>) {
        if self.bins == 0 {
            return;
        }
        let bytes = &frame[self.offset..self.offset + self.len];
        let mut pos = 0usize;
        out.reserve(self.bins);
        let mut idx = unzigzag(ViewBinIter::expect_varint(bytes, &mut pos));
        let count = Self::expect_weighted(bytes, &mut pos);
        out.push((idx as i32, count));
        for _ in 1..self.bins {
            idx += ViewBinIter::expect_varint(bytes, &mut pos) as i64 + 1;
            let count = Self::expect_weighted(bytes, &mut pos);
            out.push((idx as i32, count));
        }
    }

    /// Infallible weighted-count decode over a region `parse_weighted`
    /// already validated.
    #[inline]
    fn expect_weighted(bytes: &[u8], pos: &mut usize) -> f64 {
        scan_weighted_count(bytes, pos).expect("bin region validated by SketchView::parse")
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    fn iter<'a>(&self, frame: &'a [u8]) -> ViewBinIter<'a> {
        ViewBinIter {
            bytes: &frame[self.offset..self.offset + self.len],
            remaining: self.bins,
            front_index: 0,
            front_started: false,
            back_index: i64::from(self.last),
        }
    }

    fn weighted_iter<'a>(&self, frame: &'a [u8], weighted: bool) -> WeightedViewBinIter<'a> {
        WeightedViewBinIter {
            weighted,
            bytes: &frame[self.offset..self.offset + self.len],
            remaining: self.bins,
            front_index: 0,
            front_started: false,
        }
    }
}

/// Double-ended iterator over a view's `(index, count)` bins in ascending
/// index order — the wire-format counterpart of [`crate::store::BinIter`].
///
/// Forward iteration decodes the delta-coded varints in stream order.
/// *Backward* iteration exploits LEB128's self-delimiting continuation
/// bits ([`rsplit_varint`]): each bin is exactly two varints, so the back
/// cursor peels `(gap, count)` pairs off the end of the (pre-validated)
/// region while tracking the running index arithmetically from the
/// section's last index. No allocation, no re-scan, O(1) amortized per
/// bin from either end — which is what lets the negative-store quantile
/// walk (largest `|x|` first) run over encoded bytes.
#[derive(Debug, Clone)]
pub struct ViewBinIter<'a> {
    /// Unconsumed byte region (front and back cursors share it).
    bytes: &'a [u8],
    /// Bins not yet yielded from either end.
    remaining: usize,
    /// Index of the most recently yielded front bin.
    front_index: i64,
    front_started: bool,
    /// Index of the next bin the back cursor will yield.
    back_index: i64,
}

impl ViewBinIter<'_> {
    /// Decoding is infallible here because [`SketchView::parse`] already
    /// validated every varint in the region.
    #[inline]
    fn expect_varint(bytes: &[u8], pos: &mut usize) -> u64 {
        scan_varint(bytes, pos).expect("bin region validated by SketchView::parse")
    }
}

impl Iterator for ViewBinIter<'_> {
    type Item = (i32, u64);

    #[inline]
    fn next(&mut self) -> Option<(i32, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let mut pos = 0usize;
        let idx = if self.front_started {
            self.front_index + Self::expect_varint(self.bytes, &mut pos) as i64 + 1
        } else {
            self.front_started = true;
            unzigzag(Self::expect_varint(self.bytes, &mut pos))
        };
        let count = Self::expect_varint(self.bytes, &mut pos);
        self.bytes = &self.bytes[pos..];
        self.front_index = idx;
        self.remaining -= 1;
        Some((idx as i32, count))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for ViewBinIter<'_> {
    fn next_back(&mut self) -> Option<(i32, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let (rest, count) = rsplit_varint(self.bytes);
        let (rest, delta) = rsplit_varint(rest);
        let idx = self.back_index;
        self.bytes = rest;
        self.remaining -= 1;
        if self.remaining > 0 {
            // The consumed bin still has a predecessor, so `delta` was its
            // gap; when it was bin 0, `delta` was the zigzag'd first index
            // and there is nothing left to track.
            self.back_index = idx - delta as i64 - 1;
        }
        Some((idx as i32, count))
    }
}

impl ExactSizeIterator for ViewBinIter<'_> {}

/// Forward-only iterator over a view's `(index, count)` bins with **f64**
/// counts — the dialect-agnostic weighted walk: integer-dialect counts
/// are widened to `f64`, `DDS3` counts decode natively.
///
/// Forward-only by necessity: the `DDS3` escape encoding embeds 8 raw
/// `f64` bytes whose bit patterns are opaque to the LEB128 boundary scan
/// that makes [`ViewBinIter`] double-ended. Descending walks over
/// weighted payloads materialize into a scratch buffer instead (see
/// [`SketchView::append_weighted_negative_bins`]).
#[derive(Debug, Clone)]
pub struct WeightedViewBinIter<'a> {
    /// Whether counts decode as `DDS3` weighted counts (vs plain varints).
    weighted: bool,
    bytes: &'a [u8],
    remaining: usize,
    front_index: i64,
    front_started: bool,
}

impl Iterator for WeightedViewBinIter<'_> {
    type Item = (i32, f64);

    #[inline]
    fn next(&mut self) -> Option<(i32, f64)> {
        if self.remaining == 0 {
            return None;
        }
        let mut pos = 0usize;
        let idx = if self.front_started {
            self.front_index + ViewBinIter::expect_varint(self.bytes, &mut pos) as i64 + 1
        } else {
            self.front_started = true;
            unzigzag(ViewBinIter::expect_varint(self.bytes, &mut pos))
        };
        let count = if self.weighted {
            BinSection::expect_weighted(self.bytes, &mut pos)
        } else {
            ViewBinIter::expect_varint(self.bytes, &mut pos) as f64
        };
        self.bytes = &self.bytes[pos..];
        self.front_index = idx;
        self.remaining -= 1;
        Some((idx as i32, count))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for WeightedViewBinIter<'_> {}

/// Everything [`SketchView::parse`] computed, detached from the borrow.
#[derive(Debug, Clone, Copy)]
struct ViewMeta {
    config: SketchConfig,
    /// Whether the payload is a `DDS3` weighted frame (f64 counts).
    weighted: bool,
    /// Exact integer totals for the `DDS1`/`DDS2` dialects; zero for
    /// weighted frames (whose totals live in the `f*` fields).
    zero_count: u64,
    count: u64,
    /// `f64` totals: exact for weighted frames, a rounding of the exact
    /// integer totals otherwise.
    fzero: f64,
    fcount: f64,
    min: f64,
    max: f64,
    sum: f64,
    positive: BinSection,
    negative: BinSection,
}

/// A borrowed, validated, zero-allocation view over encoded `DDS2` (or
/// legacy `DDS1`) sketch bytes.
///
/// [`SketchView::parse`] makes exactly one forward pass over the buffer:
/// it checks the magic, header, and every bin varint (strictly ascending
/// indices, non-zero counts, no overflow, no trailing garbage) and
/// records per-store summaries — after which every accessor is O(1) and
/// every bin walk is a cursor over the borrowed bytes. No store is ever
/// constructed; `Copy`ing a view copies a slice and a few scalars.
///
/// The view's lifetime is the byte buffer's: a view never outlives (or
/// copies) the frame it was parsed from, which is what makes it safe to
/// hand out walks over a network buffer that will be reused for the next
/// payload — the borrow checker pins the buffer for as long as any walk
/// is live. Callers that *retain* frames can detach the parse result
/// with [`SketchView::meta`] and rebind it in O(1) with
/// [`SketchViewMeta::bind`].
///
/// Views of legacy `DDS1` payloads carry the store family **guess**
/// documented in [`crate::codec`] (bounded ⇒ collapsing-dense, unbounded
/// ⇒ dense); parse `DDS2` producers to avoid the ambiguity.
#[derive(Debug, Clone, Copy)]
pub struct SketchView<'a> {
    frame: &'a [u8],
    meta: ViewMeta,
}

impl<'a> SketchView<'a> {
    /// Validate `bytes` and borrow a view over them.
    ///
    /// # Errors
    ///
    /// [`SketchError::Malformed`] for structural corruption (bad magic,
    /// truncation, hostile length claims, non-ascending or zero-count
    /// bins, a summary inconsistent with the counts, trailing garbage)
    /// and [`SketchError::Decode`]/[`SketchError::InvalidConfig`] for
    /// structurally-valid payloads whose header names an unknown or
    /// unsupported configuration.
    pub fn parse(frame: &'a [u8]) -> Result<Self, SketchError> {
        let mut header = frame;
        let buf = &mut header;
        if buf.remaining() < 4 {
            return Err(SketchError::Malformed("bad magic".into()));
        }
        let (v1, weighted) = match &buf[..4] {
            m if m == MAGIC => (false, false),
            m if m == MAGIC_V1 => (true, false),
            m if m == MAGIC_V3 => (false, true),
            _ => return Err(SketchError::Malformed("bad magic".into())),
        };
        buf.advance(4);
        if !buf.has_remaining() {
            return Err(SketchError::Malformed("truncated header".into()));
        }
        let mapping = MappingKind::from_u8(buf.get_u8())?;
        let store = if v1 {
            None
        } else {
            if !buf.has_remaining() {
                return Err(SketchError::Malformed("truncated header".into()));
            }
            Some(StoreKind::from_u8(buf.get_u8())?)
        };
        if buf.remaining() < 8 {
            return Err(SketchError::Malformed("truncated header".into()));
        }
        let alpha = buf.get_f64_le();
        let bin_limit = get_varint(buf)?;
        let store = store.unwrap_or(if bin_limit > 0 {
            // The documented DDS1 heuristic; see the module docs.
            StoreKind::CollapsingDense
        } else {
            StoreKind::Unbounded
        });
        let (zero_count, fzero) = if weighted {
            let mut pos = frame.len() - buf.len();
            let z = scan_weighted_count(frame, &mut pos)?;
            if !z.is_finite() || z < 0.0 {
                return Err(SketchError::Malformed(format!(
                    "weighted zero-bucket count {z} is not a finite non-negative value"
                )));
            }
            buf.advance(pos - (frame.len() - buf.len()));
            (0, z)
        } else {
            let z = get_varint(buf)?;
            (z, z as f64)
        };
        if buf.remaining() < 24 {
            return Err(SketchError::Malformed("truncated summary".into()));
        }
        let min = buf.get_f64_le();
        let max = buf.get_f64_le();
        let sum = buf.get_f64_le();
        let mut pos = frame.len() - buf.len();
        let (positive, negative) = if weighted {
            let p = BinSection::parse_weighted(frame, &mut pos)?;
            let n = BinSection::parse_weighted(frame, &mut pos)?;
            (p, n)
        } else {
            let p = BinSection::parse(frame, &mut pos)?;
            let n = BinSection::parse(frame, &mut pos)?;
            (p, n)
        };
        if pos != frame.len() {
            return Err(SketchError::Malformed(format!(
                "{} trailing bytes after the negative store",
                frame.len() - pos
            )));
        }
        let config = SketchConfig {
            alpha,
            mapping,
            store,
            max_bins: usize::try_from(bin_limit)
                .map_err(|_| SketchError::Malformed("bin limit exceeds usize".into()))?,
        };
        // Every view must name a configuration a sketch could actually be
        // built with (same contract as `AnyDDSketch::decode`), so callers
        // can rely on `config().build()` succeeding.
        config.validate()?;
        // Same dense-growth ceiling as the payload decoder (the two
        // readers must accept exactly the same payloads).
        super::validate_dense_growth(store, bin_limit, positive.span(), negative.span())?;
        let (count, fcount) = if weighted {
            let fcount = fzero + positive.ftotal + negative.ftotal;
            if !fcount.is_finite() {
                return Err(SketchError::Malformed("total count overflow".into()));
            }
            (0, fcount)
        } else {
            let count = zero_count
                .checked_add(positive.total)
                .and_then(|c| c.checked_add(negative.total))
                .ok_or_else(|| SketchError::Malformed("total count overflow".into()))?;
            (count, count as f64)
        };
        // Same consistency rule as `codec::validate_summary`: the two
        // readers must accept exactly the same payloads.
        let empty = if weighted { fcount == 0.0 } else { count == 0 };
        let consistent = if empty {
            min == f64::INFINITY && max == f64::NEG_INFINITY && sum == 0.0
        } else {
            min.is_finite() && max.is_finite() && min <= max && !sum.is_nan()
        };
        if !consistent {
            return Err(SketchError::Malformed(format!(
                "summary (min {min}, max {max}, sum {sum}) is inconsistent with count {fcount}"
            )));
        }
        Ok(Self {
            frame,
            meta: ViewMeta {
                config,
                weighted,
                zero_count,
                count,
                fzero,
                fcount,
                min,
                max,
                sum,
                positive,
                negative,
            },
        })
    }

    /// Detach the parse result from the borrow, so a caller retaining the
    /// frame bytes can rebind later in O(1) — see [`SketchViewMeta`].
    pub fn meta(&self) -> SketchViewMeta {
        SketchViewMeta {
            meta: self.meta,
            frame_len: self.frame.len(),
        }
    }

    /// The runtime configuration this payload was produced with (for
    /// `DDS1` bytes, the documented store-family guess).
    pub fn config(&self) -> SketchConfig {
        self.meta.config
    }

    /// Mapping family of the encoded sketch.
    pub fn mapping_kind(&self) -> MappingKind {
        self.meta.config.mapping
    }

    /// Store family of the encoded sketch.
    pub fn store_kind(&self) -> StoreKind {
        self.meta.config.store
    }

    /// The relative accuracy `α` the producer ran with.
    pub fn relative_accuracy(&self) -> f64 {
        self.meta.config.alpha
    }

    /// The producer's bucket limit, if its store family is bounded.
    pub fn bin_limit(&self) -> Option<usize> {
        (self.meta.config.max_bins > 0).then_some(self.meta.config.max_bins)
    }

    /// Whether this is a `DDS3` weighted frame (`f64` counts). Weighted
    /// views only join the weighted merge plane; the integer accessors
    /// ([`SketchView::count`], [`SketchView::positive_bins`], …) are
    /// reserved for the `DDS1`/`DDS2` dialects.
    pub fn is_weighted(&self) -> bool {
        self.meta.weighted
    }

    /// Total number of encoded occurrences (integer dialects; zero for
    /// weighted frames — use [`SketchView::weighted_count`]).
    pub fn count(&self) -> u64 {
        self.meta.count
    }

    /// Total encoded weight as an `f64`: exact for `DDS3` frames, the
    /// rounded integer total for `DDS1`/`DDS2`.
    pub fn weighted_count(&self) -> f64 {
        self.meta.fcount
    }

    /// Whether the payload holds no data.
    pub fn is_empty(&self) -> bool {
        self.meta.fcount == 0.0
    }

    /// Count of values in the exact zero bucket (integer dialects; zero
    /// for weighted frames — use [`SketchView::weighted_zero_count`]).
    pub fn zero_count(&self) -> u64 {
        self.meta.zero_count
    }

    /// Weight in the exact zero bucket as an `f64` (all dialects).
    pub fn weighted_zero_count(&self) -> f64 {
        self.meta.fzero
    }

    /// The tracked minimum, `None` when empty — same contract as
    /// [`crate::DDSketch::min`].
    pub fn min(&self) -> Option<f64> {
        (self.meta.fcount > 0.0).then_some(self.meta.min)
    }

    /// The tracked maximum, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.meta.fcount > 0.0).then_some(self.meta.max)
    }

    /// Exact sum of the encoded values.
    pub fn sum(&self) -> f64 {
        self.meta.sum
    }

    /// Exact mean, or `None` if empty.
    pub fn average(&self) -> Option<f64> {
        (self.meta.fcount > 0.0).then(|| self.meta.sum / self.meta.fcount)
    }

    /// Number of non-empty buckets across both stores plus the zero
    /// bucket, mirroring [`crate::DDSketch::num_bins`].
    pub fn num_bins(&self) -> usize {
        self.meta.positive.bins + self.meta.negative.bins + usize::from(self.meta.zero_count > 0)
    }

    /// Walk the positive store's bins in ascending index order.
    ///
    /// # Panics
    ///
    /// On a `DDS3` weighted view, whose counts are not integers — use
    /// [`SketchView::weighted_positive_bins`] instead (callers route on
    /// [`SketchView::is_weighted`]).
    pub fn positive_bins(&self) -> ViewBinIter<'a> {
        assert!(
            !self.meta.weighted,
            "integer bin walk over a DDS3 weighted payload; use weighted_positive_bins"
        );
        self.meta.positive.iter(self.frame)
    }

    /// Walk the negative store's bins in ascending `|x|`-index order.
    ///
    /// # Panics
    ///
    /// On a `DDS3` weighted view; see [`SketchView::positive_bins`].
    pub fn negative_bins(&self) -> ViewBinIter<'a> {
        assert!(
            !self.meta.weighted,
            "integer bin walk over a DDS3 weighted payload; use weighted_negative_bins"
        );
        self.meta.negative.iter(self.frame)
    }

    /// Walk the positive store's bins with `f64` counts, ascending —
    /// works on every dialect (integer counts are widened).
    pub fn weighted_positive_bins(&self) -> WeightedViewBinIter<'a> {
        self.meta
            .positive
            .weighted_iter(self.frame, self.meta.weighted)
    }

    /// Walk the negative store's bins with `f64` counts, ascending
    /// `|x|`-index order — every dialect.
    pub fn weighted_negative_bins(&self) -> WeightedViewBinIter<'a> {
        self.meta
            .negative
            .weighted_iter(self.frame, self.meta.weighted)
    }

    /// Bulk-decode the positive store's bins with `f64` counts onto
    /// `out` (appended) — the weighted fold path, every dialect.
    pub(crate) fn append_weighted_positive_bins(&self, out: &mut Vec<(i32, f64)>) {
        if self.meta.weighted {
            self.meta.positive.append_weighted_to(self.frame, out);
        } else {
            out.extend(self.meta.positive.weighted_iter(self.frame, false));
        }
    }

    /// Bulk-decode the negative store's bins with `f64` counts onto `out`.
    pub(crate) fn append_weighted_negative_bins(&self, out: &mut Vec<(i32, f64)>) {
        if self.meta.weighted {
            self.meta.negative.append_weighted_to(self.frame, out);
        } else {
            out.extend(self.meta.negative.weighted_iter(self.frame, false));
        }
    }

    pub(crate) fn negative_section(&self) -> BinSection {
        self.meta.negative
    }

    /// Bulk-decode the positive store's bins onto `out`; see
    /// [`BinSection::append_to`].
    pub(crate) fn append_positive_bins(&self, out: &mut Vec<(i32, u64)>) {
        self.meta.positive.append_to(self.frame, out);
    }

    /// Bulk-decode the negative store's bins onto `out`.
    pub(crate) fn append_negative_bins(&self, out: &mut Vec<(i32, u64)>) {
        self.meta.negative.append_to(self.frame, out);
    }

    /// Raw min/max/sum (empty-state sentinels included), for the merge
    /// plane's accumulation passes.
    pub(crate) fn raw_summary(&self) -> (f64, f64, f64) {
        (self.meta.min, self.meta.max, self.meta.sum)
    }

    /// Estimate the q-quantile straight off the encoded bytes —
    /// bit-identical to decoding the payload and calling
    /// [`crate::DDSketch::quantile`] (property-tested across every
    /// configuration), with no store ever built.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }

    /// Estimate several quantiles in one double-cursor walk; see
    /// [`SketchView::quantile`].
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        let mut scratch = super::source::SourceQuantileScratch::default();
        self.quantiles_into(qs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`SketchView::quantiles`] into caller-owned buffers: with `scratch`
    /// and `out` reused across calls the walk allocates nothing.
    pub fn quantiles_into(
        &self,
        qs: &[f64],
        scratch: &mut super::source::SourceQuantileScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        crate::AnyDDSketch::merged_quantiles_sources(
            std::iter::once(super::source::SketchSource::View(*self)),
            qs,
            scratch,
            out,
        )
    }
}

/// A [`SketchView`]'s parse result with the borrow replaced by offsets:
/// `Copy`, lifetime-free, and rebindable to the original frame bytes in
/// O(1) via [`SketchViewMeta::bind`] — no varint is ever re-validated.
///
/// This is the "parse once, read many" contract for callers that retain
/// frames (the pipeline's `Aggregator` keeps pending payload bytes and a
/// meta per frame; every fold and every query rebinds instead of
/// rescanning). `bind` checks that the buffer has the meta's recorded
/// length and rejects others, but it cannot prove byte-for-byte identity
/// — binding a *different* equal-length buffer yields garbage estimates
/// or a panic from the bin walk (never memory unsafety). Keep metas next
/// to the frames they came from.
#[derive(Debug, Clone, Copy)]
pub struct SketchViewMeta {
    meta: ViewMeta,
    frame_len: usize,
}

impl SketchViewMeta {
    /// Rebind to the frame this meta was parsed from.
    pub fn bind<'a>(&self, frame: &'a [u8]) -> Result<SketchView<'a>, SketchError> {
        if frame.len() != self.frame_len {
            return Err(SketchError::Malformed(format!(
                "meta was parsed from a {}-byte frame, got {} bytes",
                self.frame_len,
                frame.len()
            )));
        }
        Ok(SketchView {
            frame,
            meta: self.meta,
        })
    }

    /// The runtime configuration recorded at parse time.
    pub fn config(&self) -> SketchConfig {
        self.meta.config
    }

    /// Total number of encoded occurrences recorded at parse time.
    pub fn count(&self) -> u64 {
        self.meta.count
    }
}
