//! Standard sketch configurations (paper Section 2.2 / Section 4).
//!
//! These are the statically-typed counterparts of the runtime
//! [`crate::SketchConfig`] presets: each constructor here builds the
//! concrete [`DDSketch`] instantiation that the matching config's
//! [`crate::AnyDDSketch`] wraps, with zero dispatch overhead. Prefer
//! [`crate::DDSketchBuilder`] when the configuration is an operational
//! knob; prefer these when it is fixed at compile time.

use crate::mapping::{CubicInterpolatedMapping, LogarithmicMapping};
use crate::sketch::DDSketch;
use crate::store::{
    CollapsingHighestDenseStore, CollapsingLowestDenseStore, CollapsingSparseStore, DenseStore,
    SparseStore,
};
use sketch_core::SketchError;

/// The basic sketch of Section 2.1: exact logarithmic mapping, unbounded
/// dense stores, no collapsing — the α guarantee holds for *every* quantile
/// of *any* stream, at the cost of size linear in the bucket span.
pub type UnboundedDDSketch = DDSketch<LogarithmicMapping, DenseStore, DenseStore>;

/// The paper's evaluated configuration ("DDSketch" in Table 2): exact
/// logarithmic mapping, dense stores bounded to `m` buckets that collapse
/// the lowest (positive side) / highest (negative side) indices.
pub type BoundedDDSketch =
    DDSketch<LogarithmicMapping, CollapsingLowestDenseStore, CollapsingHighestDenseStore>;

/// "DDSketch (fast)": cubic-interpolated mapping (no transcendentals on the
/// insertion path) with bounded dense stores.
pub type FastDDSketch =
    DDSketch<CubicInterpolatedMapping, CollapsingLowestDenseStore, CollapsingHighestDenseStore>;

/// Sparse, unbounded sketch: memory proportional to non-empty buckets
/// (paper §2.2's space-over-speed option).
pub type SparseDDSketch = DDSketch<LogarithmicMapping, SparseStore, SparseStore>;

/// Algorithm-3-exact sketch: sparse stores bounding the number of
/// *non-empty* buckets, collapsing the two lowest when exceeded.
///
/// Note: the negative-value side also collapses its two lowest `|x|`
/// buckets (the values nearest zero), which differs from the dense presets
/// (those collapse the most-negative values). For the positive-value
/// workloads the paper evaluates, the two behaviours coincide.
pub type PaperExactDDSketch =
    DDSketch<LogarithmicMapping, CollapsingSparseStore, CollapsingSparseStore>;

/// Weighted mirror of [`UnboundedDDSketch`]: the same mapping and store
/// family counting in `f64`, so occurrences can carry fractional weights
/// ([`DDSketch::add_with_count`]) and decay in place
/// ([`DDSketch::scale_counts`]).
pub type WeightedUnboundedDDSketch = DDSketch<LogarithmicMapping, DenseStore<f64>, DenseStore<f64>>;

/// Weighted mirror of [`BoundedDDSketch`].
pub type WeightedBoundedDDSketch =
    DDSketch<LogarithmicMapping, CollapsingLowestDenseStore<f64>, CollapsingHighestDenseStore<f64>>;

/// Weighted mirror of [`FastDDSketch`].
pub type WeightedFastDDSketch = DDSketch<
    CubicInterpolatedMapping,
    CollapsingLowestDenseStore<f64>,
    CollapsingHighestDenseStore<f64>,
>;

/// Weighted mirror of [`SparseDDSketch`].
pub type WeightedSparseDDSketch = DDSketch<LogarithmicMapping, SparseStore<f64>, SparseStore<f64>>;

/// Weighted mirror of [`PaperExactDDSketch`].
pub type WeightedPaperExactDDSketch =
    DDSketch<LogarithmicMapping, CollapsingSparseStore<f64>, CollapsingSparseStore<f64>>;

fn validate_bins(max_bins: usize) -> Result<(), SketchError> {
    if max_bins == 0 {
        return Err(SketchError::InvalidConfig(
            "max_bins must be positive".into(),
        ));
    }
    Ok(())
}

/// Build an [`UnboundedDDSketch`] with relative accuracy `alpha`.
pub fn unbounded(alpha: f64) -> Result<UnboundedDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        DenseStore::new(),
        DenseStore::new(),
    ))
}

/// Build a [`BoundedDDSketch`] — the paper's `α = 0.01`, `m = 2048`
/// configuration is `logarithmic_collapsing(0.01, 2048)`.
pub fn logarithmic_collapsing(alpha: f64, max_bins: usize) -> Result<BoundedDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingLowestDenseStore::new(max_bins),
        CollapsingHighestDenseStore::new(max_bins),
    ))
}

/// Build a [`FastDDSketch`] ("DDSketch (fast)" in the paper's figures).
pub fn fast(alpha: f64, max_bins: usize) -> Result<FastDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        CubicInterpolatedMapping::new(alpha)?,
        CollapsingLowestDenseStore::new(max_bins),
        CollapsingHighestDenseStore::new(max_bins),
    ))
}

/// Build a [`SparseDDSketch`].
pub fn sparse(alpha: f64) -> Result<SparseDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        SparseStore::new(),
        SparseStore::new(),
    ))
}

/// Build a [`PaperExactDDSketch`] implementing Algorithm 3 literally.
pub fn paper_exact(alpha: f64, max_bins: usize) -> Result<PaperExactDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingSparseStore::new(max_bins),
        CollapsingSparseStore::new(max_bins),
    ))
}

/// Build a [`WeightedUnboundedDDSketch`].
pub fn weighted_unbounded(alpha: f64) -> Result<WeightedUnboundedDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        DenseStore::<f64>::default(),
        DenseStore::<f64>::default(),
    ))
}

/// Build a [`WeightedBoundedDDSketch`].
pub fn weighted_logarithmic_collapsing(
    alpha: f64,
    max_bins: usize,
) -> Result<WeightedBoundedDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingLowestDenseStore::<f64>::with_max_bins(max_bins),
        CollapsingHighestDenseStore::<f64>::with_max_bins(max_bins),
    ))
}

/// Build a [`WeightedFastDDSketch`].
pub fn weighted_fast(alpha: f64, max_bins: usize) -> Result<WeightedFastDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        CubicInterpolatedMapping::new(alpha)?,
        CollapsingLowestDenseStore::<f64>::with_max_bins(max_bins),
        CollapsingHighestDenseStore::<f64>::with_max_bins(max_bins),
    ))
}

/// Build a [`WeightedSparseDDSketch`].
pub fn weighted_sparse(alpha: f64) -> Result<WeightedSparseDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        SparseStore::<f64>::default(),
        SparseStore::<f64>::default(),
    ))
}

/// Build a [`WeightedPaperExactDDSketch`].
pub fn weighted_paper_exact(
    alpha: f64,
    max_bins: usize,
) -> Result<WeightedPaperExactDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingSparseStore::<f64>::with_max_bins(max_bins),
        CollapsingSparseStore::<f64>::with_max_bins(max_bins),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::lower_quantile_index;

    #[test]
    fn constructors_validate_parameters() {
        assert!(unbounded(0.0).is_err());
        assert!(logarithmic_collapsing(0.01, 0).is_err());
        assert!(fast(2.0, 1024).is_err());
        assert!(fast(0.01, 0).is_err());
        assert!(sparse(-1.0).is_err());
        assert!(paper_exact(0.01, 0).is_err());
    }

    /// All five presets must agree (within 2α) on the same stream.
    #[test]
    fn presets_agree_on_quantiles() {
        let alpha = 0.01;
        let mut u = unbounded(alpha).unwrap();
        let mut b = logarithmic_collapsing(alpha, 2048).unwrap();
        let mut f = fast(alpha, 2048).unwrap();
        let mut s = sparse(alpha).unwrap();
        let mut p = paper_exact(alpha, 2048).unwrap();

        let mut values: Vec<f64> = (1..=20_000).map(|i| (i as f64).sqrt() * 3.7).collect();
        for &v in &values {
            u.add(v).unwrap();
            b.add(v).unwrap();
            f.add(v).unwrap();
            s.add(v).unwrap();
            p.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.5, 0.95, 0.99] {
            let actual = values[lower_quantile_index(q, values.len())];
            for (name, est) in [
                ("unbounded", u.quantile(q).unwrap()),
                ("bounded", b.quantile(q).unwrap()),
                ("fast", f.quantile(q).unwrap()),
                ("sparse", s.quantile(q).unwrap()),
                ("paper_exact", p.quantile(q).unwrap()),
            ] {
                let rel = (est - actual).abs() / actual;
                assert!(rel <= alpha + 1e-9, "{name} q={q}: rel {rel}");
            }
        }
        // None of them should have collapsed on this narrow-range stream.
        assert!(!b.has_collapsed());
        assert!(!f.has_collapsed());
        assert!(!p.has_collapsed());
    }

    #[test]
    fn paper_table2_configuration_handles_microseconds_to_a_year() {
        // Paper §2.2: "for α = 0.01, a sketch of size 2048 can handle
        // values from 80 microseconds to 1 year" (in seconds).
        let mut s = logarithmic_collapsing(0.01, 2048).unwrap();
        let year = 365.25 * 24.0 * 3600.0;
        s.add(80e-6).unwrap();
        s.add(year).unwrap();
        assert!(
            !s.has_collapsed(),
            "80µs..1y must fit in 2048 buckets at α=0.01"
        );
    }

    /// Every weighted preset fed integral `f64` counts must mirror its
    /// `u64` twin exactly: same weighted totals, same quantile estimates
    /// through the weighted rank walk.
    #[test]
    fn weighted_presets_mirror_integer_presets_on_integral_weights() {
        let alpha = 0.01;
        let stream: Vec<(f64, u64)> = (1..=3000)
            .map(|i| {
                let v = match i % 7 {
                    0 => 0.0,
                    1 | 2 => (i as f64).sqrt() * 2.1,
                    3 => -(i as f64) * 0.4,
                    _ => (i as f64) * 0.9,
                };
                (v, (i % 4 + 1) as u64)
            })
            .collect();
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];

        macro_rules! check_pair {
            ($name:literal, $u:expr, $w:expr) => {{
                let mut u = $u;
                let mut w = $w;
                for &(v, k) in &stream {
                    u.add_n(v, k).unwrap();
                    w.add_with_count(v, k as f64).unwrap();
                }
                assert_eq!(u.count() as f64, w.weighted_count(), $name);
                assert_eq!(u.sum(), w.sum(), $name);
                assert_eq!(u.min(), w.min(), $name);
                assert_eq!(u.max(), w.max(), $name);
                for &q in &qs {
                    assert_eq!(
                        u.quantile(q).unwrap(),
                        w.weighted_quantile(q).unwrap(),
                        "{} q={q}",
                        $name
                    );
                }
            }};
        }
        check_pair!(
            "unbounded",
            unbounded(alpha).unwrap(),
            weighted_unbounded(alpha).unwrap()
        );
        check_pair!(
            "bounded",
            logarithmic_collapsing(alpha, 512).unwrap(),
            weighted_logarithmic_collapsing(alpha, 512).unwrap()
        );
        check_pair!(
            "fast",
            fast(alpha, 512).unwrap(),
            weighted_fast(alpha, 512).unwrap()
        );
        check_pair!(
            "sparse",
            sparse(alpha).unwrap(),
            weighted_sparse(alpha).unwrap()
        );
        check_pair!(
            "paper_exact",
            paper_exact(alpha, 512).unwrap(),
            weighted_paper_exact(alpha, 512).unwrap()
        );
    }

    /// Fractional weights drive the weighted rank walk: a heavy tail value
    /// dominates the median once its weight does.
    #[test]
    fn fractional_weights_shift_quantiles() {
        let mut s = weighted_unbounded(0.01).unwrap();
        s.add_with_count(1.0, 1.5).unwrap();
        s.add_with_count(100.0, 6.0).unwrap();
        let med = s.weighted_quantile(0.5).unwrap();
        assert!(med > 90.0, "weight 6.0 at 100 must dominate, got {med}");
        // Decay the heavy bucket away and the light one re-emerges.
        s.scale_counts(0.25).unwrap();
        s.add_with_count(1.0, 10.0).unwrap();
        let med = s.weighted_quantile(0.5).unwrap();
        assert!(
            med < 1.2,
            "after decay the light value dominates, got {med}"
        );
        // Invalid weights are rejected.
        assert!(s.add_with_count(1.0, f64::NAN).is_err());
        assert!(s.add_with_count(1.0, -1.0).is_err());
        assert!(s.add_with_count(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sparse_uses_less_memory_on_sparse_data() {
        let mut dense = unbounded(0.01).unwrap();
        let mut sp = sparse(0.01).unwrap();
        // Two extreme values: a huge dense span, only two sparse bins.
        for v in [1e-6, 1e6] {
            dense.add(v).unwrap();
            sp.add(v).unwrap();
        }
        assert!(sp.memory_bytes() * 10 < dense.memory_bytes());
    }
}
