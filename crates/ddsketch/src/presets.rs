//! Standard sketch configurations (paper Section 2.2 / Section 4).
//!
//! These are the statically-typed counterparts of the runtime
//! [`crate::SketchConfig`] presets: each constructor here builds the
//! concrete [`DDSketch`] instantiation that the matching config's
//! [`crate::AnyDDSketch`] wraps, with zero dispatch overhead. Prefer
//! [`crate::DDSketchBuilder`] when the configuration is an operational
//! knob; prefer these when it is fixed at compile time.

use crate::mapping::{CubicInterpolatedMapping, LogarithmicMapping};
use crate::sketch::DDSketch;
use crate::store::{
    CollapsingHighestDenseStore, CollapsingLowestDenseStore, CollapsingSparseStore, DenseStore,
    SparseStore,
};
use sketch_core::SketchError;

/// The basic sketch of Section 2.1: exact logarithmic mapping, unbounded
/// dense stores, no collapsing — the α guarantee holds for *every* quantile
/// of *any* stream, at the cost of size linear in the bucket span.
pub type UnboundedDDSketch = DDSketch<LogarithmicMapping, DenseStore, DenseStore>;

/// The paper's evaluated configuration ("DDSketch" in Table 2): exact
/// logarithmic mapping, dense stores bounded to `m` buckets that collapse
/// the lowest (positive side) / highest (negative side) indices.
pub type BoundedDDSketch =
    DDSketch<LogarithmicMapping, CollapsingLowestDenseStore, CollapsingHighestDenseStore>;

/// "DDSketch (fast)": cubic-interpolated mapping (no transcendentals on the
/// insertion path) with bounded dense stores.
pub type FastDDSketch =
    DDSketch<CubicInterpolatedMapping, CollapsingLowestDenseStore, CollapsingHighestDenseStore>;

/// Sparse, unbounded sketch: memory proportional to non-empty buckets
/// (paper §2.2's space-over-speed option).
pub type SparseDDSketch = DDSketch<LogarithmicMapping, SparseStore, SparseStore>;

/// Algorithm-3-exact sketch: sparse stores bounding the number of
/// *non-empty* buckets, collapsing the two lowest when exceeded.
///
/// Note: the negative-value side also collapses its two lowest `|x|`
/// buckets (the values nearest zero), which differs from the dense presets
/// (those collapse the most-negative values). For the positive-value
/// workloads the paper evaluates, the two behaviours coincide.
pub type PaperExactDDSketch =
    DDSketch<LogarithmicMapping, CollapsingSparseStore, CollapsingSparseStore>;

fn validate_bins(max_bins: usize) -> Result<(), SketchError> {
    if max_bins == 0 {
        return Err(SketchError::InvalidConfig(
            "max_bins must be positive".into(),
        ));
    }
    Ok(())
}

/// Build an [`UnboundedDDSketch`] with relative accuracy `alpha`.
pub fn unbounded(alpha: f64) -> Result<UnboundedDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        DenseStore::new(),
        DenseStore::new(),
    ))
}

/// Build a [`BoundedDDSketch`] — the paper's `α = 0.01`, `m = 2048`
/// configuration is `logarithmic_collapsing(0.01, 2048)`.
pub fn logarithmic_collapsing(alpha: f64, max_bins: usize) -> Result<BoundedDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingLowestDenseStore::new(max_bins),
        CollapsingHighestDenseStore::new(max_bins),
    ))
}

/// Build a [`FastDDSketch`] ("DDSketch (fast)" in the paper's figures).
pub fn fast(alpha: f64, max_bins: usize) -> Result<FastDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        CubicInterpolatedMapping::new(alpha)?,
        CollapsingLowestDenseStore::new(max_bins),
        CollapsingHighestDenseStore::new(max_bins),
    ))
}

/// Build a [`SparseDDSketch`].
pub fn sparse(alpha: f64) -> Result<SparseDDSketch, SketchError> {
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        SparseStore::new(),
        SparseStore::new(),
    ))
}

/// Build a [`PaperExactDDSketch`] implementing Algorithm 3 literally.
pub fn paper_exact(alpha: f64, max_bins: usize) -> Result<PaperExactDDSketch, SketchError> {
    validate_bins(max_bins)?;
    Ok(DDSketch::from_parts(
        LogarithmicMapping::new(alpha)?,
        CollapsingSparseStore::new(max_bins),
        CollapsingSparseStore::new(max_bins),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::lower_quantile_index;

    #[test]
    fn constructors_validate_parameters() {
        assert!(unbounded(0.0).is_err());
        assert!(logarithmic_collapsing(0.01, 0).is_err());
        assert!(fast(2.0, 1024).is_err());
        assert!(fast(0.01, 0).is_err());
        assert!(sparse(-1.0).is_err());
        assert!(paper_exact(0.01, 0).is_err());
    }

    /// All five presets must agree (within 2α) on the same stream.
    #[test]
    fn presets_agree_on_quantiles() {
        let alpha = 0.01;
        let mut u = unbounded(alpha).unwrap();
        let mut b = logarithmic_collapsing(alpha, 2048).unwrap();
        let mut f = fast(alpha, 2048).unwrap();
        let mut s = sparse(alpha).unwrap();
        let mut p = paper_exact(alpha, 2048).unwrap();

        let mut values: Vec<f64> = (1..=20_000).map(|i| (i as f64).sqrt() * 3.7).collect();
        for &v in &values {
            u.add(v).unwrap();
            b.add(v).unwrap();
            f.add(v).unwrap();
            s.add(v).unwrap();
            p.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.5, 0.95, 0.99] {
            let actual = values[lower_quantile_index(q, values.len())];
            for (name, est) in [
                ("unbounded", u.quantile(q).unwrap()),
                ("bounded", b.quantile(q).unwrap()),
                ("fast", f.quantile(q).unwrap()),
                ("sparse", s.quantile(q).unwrap()),
                ("paper_exact", p.quantile(q).unwrap()),
            ] {
                let rel = (est - actual).abs() / actual;
                assert!(rel <= alpha + 1e-9, "{name} q={q}: rel {rel}");
            }
        }
        // None of them should have collapsed on this narrow-range stream.
        assert!(!b.has_collapsed());
        assert!(!f.has_collapsed());
        assert!(!p.has_collapsed());
    }

    #[test]
    fn paper_table2_configuration_handles_microseconds_to_a_year() {
        // Paper §2.2: "for α = 0.01, a sketch of size 2048 can handle
        // values from 80 microseconds to 1 year" (in seconds).
        let mut s = logarithmic_collapsing(0.01, 2048).unwrap();
        let year = 365.25 * 24.0 * 3600.0;
        s.add(80e-6).unwrap();
        s.add(year).unwrap();
        assert!(
            !s.has_collapsed(),
            "80µs..1y must fit in 2048 buckets at α=0.01"
        );
    }

    #[test]
    fn sparse_uses_less_memory_on_sparse_data() {
        let mut dense = unbounded(0.01).unwrap();
        let mut sp = sparse(0.01).unwrap();
        // Two extreme values: a huge dense span, only two sparse bins.
        for v in [1e-6, 1e6] {
            dense.add(v).unwrap();
            sp.add(v).unwrap();
        }
        assert!(sp.memory_bytes() * 10 < dense.memory_bytes());
    }
}
