//! # DDSketch
//!
//! A fast and fully-mergeable quantile sketch with relative-error
//! guarantees — a from-scratch Rust implementation of
//! *Masson, Rim & Lee, "DDSketch", PVLDB 12(12), 2019*.
//!
//! A DDSketch summarizes a stream of values so that any q-quantile can be
//! estimated within relative error `α`: the returned `x̃_q` satisfies
//! `|x̃_q − x_q| ≤ α·x_q`. Unlike rank-error sketches, this guarantee does
//! not degrade on heavy-tailed data, which is exactly where rank-error
//! sketches can be off by orders of magnitude on the p99.
//!
//! Two sketches built with the same parameters merge *exactly*: the merged
//! sketch is bucket-for-bucket identical to a single sketch over the union
//! of the streams ("full mergeability"), which is what makes the structure
//! suitable for distributed aggregation pipelines.
//!
//! ## Quick start
//!
//! Configuration is runtime data: [`DDSketchBuilder`] resolves to a
//! [`SketchConfig`] and builds an [`AnyDDSketch`], the type-erased sketch
//! every layer of the workspace (pipeline, benchmarks, wire format)
//! operates on.
//!
//! ```
//! use ddsketch::DDSketchBuilder;
//!
//! // α = 1% relative error, at most 2048 buckets (the paper's config).
//! let mut sketch = DDSketchBuilder::new(0.01).dense_collapsing(2048).build().unwrap();
//! for i in 1..=10_000u32 {
//!     sketch.add(f64::from(i)).unwrap();
//! }
//! // True p99 (lower quantile) of 1..=10000 is x_⌊1+0.99·9999⌋ = 9900.
//! let p99 = sketch.quantile(0.99).unwrap();
//! assert!((p99 - 9900.0).abs() <= 0.01 * 9900.0);
//!
//! // Same-config sketches merge exactly.
//! let mut other = DDSketchBuilder::new(0.01).dense_collapsing(2048).build().unwrap();
//! other.add(1e9).unwrap();
//! sketch.merge_from(&other).unwrap();
//! assert_eq!(sketch.count(), 10_001);
//!
//! // Differently-configured sketches refuse to merge instead of silently
//! // corrupting the α guarantee.
//! let sparse = DDSketchBuilder::new(0.01).sparse().build().unwrap();
//! assert!(sketch.merge_from(&sparse).is_err());
//! ```
//!
//! ## Picking a configuration
//!
//! | builder | preset type | mapping | store | use when |
//! |---------|-------------|---------|-------|----------|
//! | `DDSketchBuilder::new(α).unbounded()` | [`presets::unbounded`] | exact log | dense, unbounded | guarantee must hold for every quantile, size is secondary |
//! | `DDSketchBuilder::new(α).dense_collapsing(m)` | [`presets::logarithmic_collapsing`] | exact log | dense, bounded | production default (paper Table 2) |
//! | `DDSketchBuilder::new(α).cubic().dense_collapsing(m)` | [`presets::fast`] | cubic interpolation | dense, bounded | insertion speed matters most |
//! | `DDSketchBuilder::new(α).sparse()` | [`presets::sparse`] | exact log | B-tree | wide value ranges, memory matters |
//! | `DDSketchBuilder::new(α).sparse_collapsing(m)` | [`presets::paper_exact`] | exact log | sparse, Algorithm-3 collapse | studying the paper's exact semantics |
//!
//! The preset constructors return concrete [`DDSketch`] instantiations with
//! zero dispatch overhead; [`AnyDDSketch`] wraps those same five types in an
//! enum (one match per call, no `dyn`) and is bit-identical to them on any
//! stream. Use a preset type when the configuration is fixed at compile
//! time; use [`SketchConfig`]/[`AnyDDSketch`] when it is an operational
//! knob or arrives over the wire.
//!
//! ## Shipping sketches: the self-describing wire format
//!
//! [`AnyDDSketch::decode`] reconstructs whatever configuration was encoded
//! — the aggregator needs no compile-time knowledge of what its agents run:
//!
//! ```
//! use ddsketch::{AnyDDSketch, DDSketchBuilder};
//!
//! let mut agent = DDSketchBuilder::new(0.01).sparse().build().unwrap();
//! agent.add_slice(&[0.012, 0.019, 1.430]).unwrap();
//! let bytes = agent.encode();
//!
//! let arrived = AnyDDSketch::decode(&bytes).unwrap();
//! assert_eq!(arrived.config(), agent.config());
//! assert_eq!(arrived.count(), 3);
//! ```
//!
//! Receivers that only need to *read* payloads — query, merge, forward —
//! should not decode at all: [`SketchView::parse`] validates the bytes in
//! one pass and exposes the live-sketch surface (header accessors, bin
//! walks, bit-identical quantiles) with **zero** allocation, and
//! [`SketchSource`] threads views, decoded payloads, and live sketches
//! through the same merge plane (`merged_quantiles_sources` /
//! `merge_sources`). Frame batching and length-prefixed streams live in
//! [`codec`]; the `pipeline` crate's `Aggregator` puts it all together —
//! 1000 payloads aggregated with zero intermediate sketches, ≥2× faster
//! than decode-then-merge (measured in `benches/codec.rs`).
//!
//! ```
//! use ddsketch::{AnyDDSketch, SketchConfig, SketchView};
//!
//! let mut agent = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
//! agent.add_slice(&[0.012, 0.019, 1.430]).unwrap();
//! let bytes = agent.encode();
//!
//! // Zero-copy: p99 straight off the wire bytes, no sketch built.
//! let view = SketchView::parse(&bytes).unwrap();
//! assert_eq!(view.quantile(0.99).unwrap(), agent.quantile(0.99).unwrap());
//!
//! // Absorb the payload into a resident sketch: one bulk add_bins pass
//! // per store, no intermediate sketch.
//! let mut resident = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
//! resident.merge_view(&view).unwrap();
//! assert_eq!(resident.count(), agent.count());
//! ```
//!
//! ## Batched ingestion
//!
//! High-throughput producers should buffer values and flush them through
//! `add_slice`, the end-to-end batched fast path (available on the preset
//! types, [`AnyDDSketch`], and generically via
//! [`sketch_core::QuantileSketch::add_slice`]):
//!
//! ```
//! use ddsketch::DDSketchBuilder;
//!
//! let mut sketch = DDSketchBuilder::new(0.01).dense_collapsing(2048).build().unwrap();
//! let latencies: Vec<f64> = (1..=4096).map(|i| f64::from(i) * 1e-4).collect();
//! for batch in latencies.chunks(1024) {
//!     sketch.add_slice(batch).unwrap();
//! }
//! assert_eq!(sketch.count(), 4096);
//! ```
//!
//! `add_slice` classifies the batch in one pass, computes bucket indices
//! with a tight, inlined kernel ([`IndexMapping::index_batch`]), and hands
//! each store its side as one bulk [`Store::add_indices`] call that pays
//! growth/collapse bookkeeping once per batch instead of once per value.
//! The result is **bit-identical** to per-value `add` (same bins, count,
//! sum, min, max — property-tested across every preset) while sustaining
//! over 2× the throughput at batch size 1024 on the dense presets (see
//! `benches/add_batch.rs` in the bench crate; measured speedups are
//! recorded in the workspace `ROADMAP.md`). Batches containing NaN, ±∞, or
//! out-of-range values are rejected **atomically**: the error names the
//! offending value and the sketch is left untouched.
//!
//! The pipeline layers expose the same fast path: `ConcurrentSketch::
//! add_slice` ingests a batch under a single shard-lock acquisition, and
//! `TimeSeriesStore::record_slice` ingests a batch with one cell lookup.
//!
//! When you need several quantiles, prefer `quantiles`: it sorts the
//! requested ranks and walks each store's cumulative counts once, instead
//! of rescanning per quantile.
//!
//! ## Weighted ingestion
//!
//! Every count in the sketch generalizes from `u64` to `f64`
//! (the [`store::Count`] abstraction): [`AnyWeightedDDSketch`] is the
//! type-erased weighted twin of [`AnyDDSketch`], with the same five
//! configurations. `add_with_count(value, w)` inserts one observation at
//! weight `w` — a pre-aggregated client submission ("this value occurred
//! 1 000 times"), an importance weight, or a fractional multiplicity —
//! and for **integral** weights the result is bit-identical to calling
//! `add(value)` `w` times (property-tested across every configuration).
//! Weighted sketches also decay in place (`scale_counts(λ)`, the
//! ingest-time exponential-decay primitive behind the pipeline's decayed
//! sliding windows) and subtract with floor-at-zero semantics
//! (`sub_sketch`). On the wire they travel as the `DDS3` dialect, whose
//! varint fast path keeps integer-weight payloads as compact as `DDS2`;
//! a weighted receiver ([`codec::WeightedSketchPayload`],
//! [`AnyWeightedDDSketch::decode`], `merge_view`) accepts all three
//! dialects, so mixed fleets drain through one merge walk.
//!
//! ```
//! use ddsketch::{AnyWeightedDDSketch, SketchConfig};
//!
//! let config = SketchConfig::dense_collapsing(0.01, 2048);
//! let mut sketch = AnyWeightedDDSketch::new(config).unwrap();
//! // A client reporting pre-aggregated observations:
//! sketch.add_with_count(0.012, 1000.0).unwrap();
//! sketch.add_with_count(0.250, 10.0).unwrap();
//! assert_eq!(sketch.weighted_count(), 1010.0);
//!
//! // Ingest-time decay: halve the weight of everything seen so far.
//! sketch.scale_counts(0.5).unwrap();
//! assert_eq!(sketch.weighted_count(), 505.0);
//!
//! // DDS3 round-trips exactly; integer dialects decode into the same
//! // weighted receiver.
//! let restored = AnyWeightedDDSketch::decode(&sketch.encode()).unwrap();
//! assert_eq!(restored.weighted_count(), sketch.weighted_count());
//! assert_eq!(restored.quantile(0.5).unwrap(), sketch.quantile(0.5).unwrap());
//! ```
//!
//! ## Aggregation plane
//!
//! Full mergeability (Proposition 3) is the read-side counterpart of
//! batched ingestion, and it gets the same bulk treatment. Two k-way
//! primitives — on the preset types and on [`AnyDDSketch`] — replace
//! pairwise `merge_from` folds:
//!
//! * `merge_many(&[&sketch])` merges any number of compatible sketches
//!   with **one** capacity/collapse decision per store (one reallocation
//!   and at most one fold for the whole union, instead of up to k of
//!   each). Bit-identical to folding `merge_from` in order.
//! * `merged_quantiles(&[&sketch], &qs)` answers quantiles of the merge
//!   **without materializing it**: one sorted-rank k-way walk over the
//!   shards' borrowed bins ([`store::BinIter`] — zero copies), with
//!   bounded-store collapse accounted for by clamping each bin to the
//!   index the real merge would fold it to ([`Store::merge_clamp`]).
//!   Identical — including collapsed tails — to merging and then calling
//!   `quantiles`; property-tested across every preset.
//!
//! ```
//! use ddsketch::{AnyDDSketch, DDSketchBuilder};
//!
//! let shards: Vec<AnyDDSketch> = (0..4)
//!     .map(|shard| {
//!         let mut s = DDSketchBuilder::new(0.01).dense_collapsing(2048).build().unwrap();
//!         for i in 1..=1000u32 {
//!             s.add(f64::from(shard * 1000 + i)).unwrap();
//!         }
//!         s
//!     })
//!     .collect();
//! let refs: Vec<&AnyDDSketch> = shards.iter().collect();
//!
//! // Quantiles of the merge, no merged sketch ever built:
//! let p = AnyDDSketch::merged_quantiles(&refs, &[0.5, 0.99]).unwrap();
//!
//! // ... identical to materializing with one k-way merge:
//! let mut merged = shards[0].clone();
//! merged.merge_many(&refs[1..]).unwrap();
//! assert_eq!(p, merged.quantiles(&[0.5, 0.99]).unwrap());
//! ```
//!
//! Both primitives have allocation-conscious forms for callers that ask
//! the same question every tick:
//!
//! * `merged_quantiles_into` walks an **iterator** of borrowed sketches
//!   into caller-owned buffers through a reusable
//!   [`MergedQuantileScratch`] — on the dense store families the walk
//!   performs **zero** heap allocations at steady state (held there by a
//!   counting-allocator test).
//! * `weighted_merged_quantiles_into` scales each sketch's bins by a
//!   per-sketch weight *inside the rank walk* — the query-time
//!   exponential decay behind "recent-biased" sliding-window reads. For
//!   integer weights it is bit-identical to the unweighted walk over
//!   weight-many copies of each sketch (property-tested), and the dense
//!   families keep the vectorized column strategy (weighted f64 column
//!   sums), so even a 3600-shard decayed read stays in the milliseconds.
//!
//! The pipeline crate rides this plane end to end: `ConcurrentSketch::
//! snapshot` copies each shard under its own lock and runs one
//! `merge_many` outside all locks; `ConcurrentSketch::quantiles` answers
//! straight off the borrowed shards with the zero-copy walk;
//! `TimeSeriesStore` interns metric names into ids (allocation-free
//! lookups, range-scanned per-metric series), rolls fine windows up with
//! one `merge_many` per coarse cell, bounds a long-lived aggregator with
//! `evict_before`, and serves trailing-width reads over existing cells
//! via `sliding_view`; `SlidingWindowSketch` answers the paper's opening
//! question — "the p99 over the last five minutes" — from a ring of
//! per-slot sketches read by one `merged_quantiles_into` walk, with a
//! two-stack suffix-aggregate layout whose steady-state query folds at
//! most three sketches regardless of slot count, and a
//! `quantiles_decayed` read on the weighted walk.
//!
//! ## Concurrency model
//!
//! The sequential sketches above are `&mut self` and single-writer. For
//! multi-core ingest the [`atomic`] module provides a third plane:
//! [`AtomicDDSketch`] / [`AnyAtomicDDSketch`] take **`&self`** for every
//! ingestion method — the hot `add` is one relaxed `fetch_add` into an
//! atomic dense store ([`store::AtomicDenseStore`]) plus relaxed striped
//! summary updates. No lock and no CAS loop on the fast path; store
//! growth and bucket collapse run on a rare mutex-guarded slow path whose
//! effects are published with `Release`/`Acquire` and fenced from readers
//! by a seqlock epoch.
//!
//! The memory-ordering contract, in one line each:
//!
//! * **Counter updates are `Relaxed`** — counts are commutative sums, so
//!   no ordering between writers is needed, only atomicity per counter.
//! * **Table publication and fold epochs are `Release`/`Acquire`** — a
//!   reader that sees a new table or an even epoch also sees the writes
//!   that built it; snapshots retry while an epoch is odd or changed.
//! * **Quiesced reads are exact** — after writers quiesce with a
//!   happens-before edge to the reader (thread join, channel hand-off), a
//!   snapshot is bit-identical (bins, count, min, max; sum up to addition
//!   reassociation) to a single-threaded sketch over the union of every
//!   writer's values. Mid-race, each counter reads at some instant during
//!   the read — never torn, lost, or double-counted.
//!
//! Only the dense store families run lock-free (bucket identity must be
//! an array slot); sparse configs are rejected by
//! [`AnyAtomicDDSketch::new`] and stay on the locked-shard plane in the
//! `pipeline` crate, whose `ConcurrentSketch` picks the right plane per
//! config automatically and adds a thread-local `LocalIngest` front-end
//! for writers that want to batch even the atomic traffic.
//!
//! ```
//! use ddsketch::{AnyAtomicDDSketch, SketchConfig};
//!
//! let sketch = AnyAtomicDDSketch::new(SketchConfig::dense_collapsing(0.01, 2048)).unwrap();
//! std::thread::scope(|scope| {
//!     for t in 0..4u32 {
//!         let sketch = &sketch; // shared reference: no lock, no clone
//!         scope.spawn(move || {
//!             for i in 1..=1000u32 {
//!                 sketch.add(f64::from(t * 1000 + i)).unwrap();
//!             }
//!         });
//!     }
//! });
//! // Writers joined => the snapshot equals the single-threaded union.
//! let snap = sketch.snapshot().unwrap();
//! assert_eq!(snap.count(), 4000);
//! ```

pub mod any;
pub mod atomic;
pub mod codec;
pub mod config;
pub mod mapping;
pub mod presets;
mod sketch;
pub mod store;

pub use any::{AnyDDSketch, AnyWeightedDDSketch};
pub use atomic::{AnyAtomicDDSketch, AtomicDDSketch, AtomicSketchScratch, WeightedAtomicDDSketch};
pub use codec::{
    FrameDecoder, FrameReader, FrameWriter, SketchPayload, SketchSource, SketchView,
    SketchViewMeta, SourceQuantileScratch, WeightedMergeScratch, WeightedSketchPayload,
    WeightedViewBinIter,
};
pub use config::{DDSketchBuilder, SketchConfig, DEFAULT_MAX_BINS};
pub use mapping::{
    CubicInterpolatedMapping, IndexMapping, LinearInterpolatedMapping, LogarithmicMapping,
    MappingKind, QuadraticInterpolatedMapping,
};
pub use presets::{
    fast, logarithmic_collapsing, paper_exact, sparse, unbounded, weighted_fast,
    weighted_logarithmic_collapsing, weighted_paper_exact, weighted_sparse, weighted_unbounded,
    BoundedDDSketch, FastDDSketch, PaperExactDDSketch, SparseDDSketch, UnboundedDDSketch,
    WeightedBoundedDDSketch, WeightedFastDDSketch, WeightedPaperExactDDSketch,
    WeightedSparseDDSketch, WeightedUnboundedDDSketch,
};
pub use sketch::{DDSketch, MergedQuantileScratch};
pub use store::{
    CollapsingHighestDenseStore, CollapsingLowestDenseStore, CollapsingSparseStore, Count,
    DenseStore, SparseStore, Store, StoreKind,
};

// Re-export the shared vocabulary so downstream users need only this crate.
pub use sketch_core::{
    ConcurrentIngest, MemoryFootprint, MergeableSketch, QuantileSketch, SketchError,
};
