//! Rank arithmetic shared by every sketch and by the evaluation oracle.
//!
//! The paper's definition (Section 1): for a sorted multiset
//! `x(1) ≤ … ≤ x(n)`, the q-quantile item is `x(⌊1 + q(n−1)⌋)` for
//! `0 ≤ q ≤ 1`. We work with zero-based indices internally, so the
//! q-quantile lives at index `⌊q(n−1)⌋`.

/// Zero-based index of the lower q-quantile in a sorted sample of size `n`.
///
/// Mirrors the paper's `⌊1 + q(n−1)⌋` (one-based) definition. `q` is clamped
/// to `[0, 1]`; `n` must be nonzero.
///
/// # Panics
///
/// Panics if `n == 0` — an empty multiset has no quantiles; callers are
/// expected to surface that as `None`/error before reaching rank math.
#[inline]
pub fn lower_quantile_index(q: f64, n: usize) -> usize {
    assert!(n > 0, "quantile of an empty multiset is undefined");
    let q = q.clamp(0.0, 1.0);
    let rank = q * (n as f64 - 1.0);
    // `rank` is within [0, n-1]; floor then clamp defensively against FP
    // round-up at q = 1.0 on very large n.
    (rank.floor() as usize).min(n - 1)
}

/// The real-valued target rank `q·(n−1)` used by sketch cumulative walks
/// (Algorithm 2 loops while `count ≤ q(n−1)`).
#[inline]
pub fn target_rank(q: f64, n: u64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    q * (n.saturating_sub(1)) as f64
}

/// Rank of a query value `v` within a *sorted* slice: the number of elements
/// less than or equal to `v` (the paper's `R(v)`).
///
/// Used by the rank-error metric: a sketch's estimate `x̃` has rank error
/// `|R(x̃) − ⌊1 + q(n−1)⌋| / n`.
pub fn rank_of_query(sorted: &[f64], v: f64) -> usize {
    // partition_point returns the first index whose element is > v, which is
    // exactly the count of elements <= v.
    sorted.partition_point(|&x| x <= v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_quantile_index_matches_paper_definition() {
        // n = 5, q = 0.5 → ⌊1 + 0.5·4⌋ = 3 (one-based) → index 2.
        assert_eq!(lower_quantile_index(0.5, 5), 2);
        // q = 0 → minimum.
        assert_eq!(lower_quantile_index(0.0, 5), 0);
        // q = 1 → maximum.
        assert_eq!(lower_quantile_index(1.0, 5), 4);
        // q = 0.99 on n = 100 → ⌊0.99·99⌋ = 98.
        assert_eq!(lower_quantile_index(0.99, 100), 98);
    }

    #[test]
    fn lower_quantile_is_floor_not_round() {
        // q = 0.75, n = 2 → ⌊0.75⌋ = 0, i.e. the *first* element.
        assert_eq!(lower_quantile_index(0.75, 2), 0);
        assert_eq!(lower_quantile_index(0.76, 5), 3); // ⌊3.04⌋
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        assert_eq!(lower_quantile_index(-0.3, 10), 0);
        assert_eq!(lower_quantile_index(1.7, 10), 9);
    }

    #[test]
    #[should_panic(expected = "empty multiset")]
    fn quantile_of_empty_panics() {
        lower_quantile_index(0.5, 0);
    }

    #[test]
    fn target_rank_basics() {
        assert_eq!(target_rank(0.5, 101), 50.0);
        assert_eq!(target_rank(0.0, 10), 0.0);
        assert_eq!(target_rank(1.0, 10), 9.0);
        // n = 0 must not underflow.
        assert_eq!(target_rank(0.5, 0), 0.0);
    }

    #[test]
    fn rank_of_query_counts_less_or_equal() {
        let s = [1.0, 2.0, 2.0, 3.0, 10.0];
        assert_eq!(rank_of_query(&s, 0.5), 0);
        assert_eq!(rank_of_query(&s, 1.0), 1);
        assert_eq!(rank_of_query(&s, 2.0), 3);
        assert_eq!(rank_of_query(&s, 9.99), 4);
        assert_eq!(rank_of_query(&s, 10.0), 5);
        assert_eq!(rank_of_query(&s, 11.0), 5);
    }

    #[test]
    fn rank_of_query_on_empty() {
        assert_eq!(rank_of_query(&[], 1.0), 0);
    }
}
