//! Traits implemented by every quantile sketch in the workspace.

use crate::error::SketchError;

/// Error returned by [`MergeableSketch::merge_from`].
pub type MergeError = SketchError;

/// A streaming quantile summary.
///
/// The trait captures the operations the paper's evaluation exercises for
/// all four sketches: insertion (Figure 8), quantile queries (Figures 4, 10,
/// 11), and the bookkeeping needed by the harness (`count`, emptiness).
pub trait QuantileSketch {
    /// Insert a single observation.
    ///
    /// Non-finite values are rejected with `UnsupportedValue`; bounded
    /// sketches may also reject out-of-range values.
    fn add(&mut self, value: f64) -> Result<(), SketchError>;

    /// Insert `count` copies of `value`. Default: repeated [`QuantileSketch::add`].
    ///
    /// Sketches with weighted bucket counters override this with an O(1)
    /// implementation.
    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        for _ in 0..count {
            self.add(value)?;
        }
        Ok(())
    }

    /// Insert a batch of observations.
    ///
    /// Default: per-value [`QuantileSketch::add`] that stops at the first
    /// unsupported value — values before it are already ingested, so the
    /// default is **not** atomic. Sketches with a bulk ingestion path
    /// (DDSketch's fused batch kernel) override this with an atomic,
    /// bit-identical fast path; benchmark harnesses call this method so
    /// every contender gets its best batch path uniformly.
    fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        for &v in values {
            self.add(v)?;
        }
        Ok(())
    }

    /// Estimate the q-quantile, `0 ≤ q ≤ 1`.
    ///
    /// Returns `Empty` for sketches with no data and `InvalidQuantile` for
    /// `q` outside `[0, 1]` (NaN included).
    fn quantile(&self, q: f64) -> Result<f64, SketchError>;

    /// Estimate several quantiles at once. Default: repeated [`QuantileSketch::quantile`].
    fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Number of observations inserted (respecting weights).
    fn count(&self) -> u64;

    /// Whether the sketch has seen no data.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;
}

/// A sketch that can absorb another sketch of the same type.
///
/// "Fully mergeable" in the paper's sense means merged sketches are as
/// accurate as a single sketch over the union of the data, and merging can
/// itself be distributed (merge results can be merged again). One-way
/// mergeable sketches (GKArray) still implement this trait; the weaker
/// guarantee is documented on the implementation.
pub trait MergeableSketch: Sized {
    /// Merge `other` into `self`.
    ///
    /// Fails with `IncompatibleMerge` when the two sketches were built with
    /// different parameters (γ, bounds, …).
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// Shared-reference ingestion for sketches that admit concurrent writers.
///
/// The methods mirror [`QuantileSketch`]'s ingestion trio but take `&self`:
/// an implementor promises that any number of threads may call them on the
/// same sketch simultaneously without locks on the caller's side, and that
/// once writers quiesce (with a happens-before edge to the reader, e.g. a
/// thread join) the sketch's contents equal what a single thread inserting
/// the union of all values would have produced. Mid-race reads see each
/// counter at some instant during the read — never torn, lost, or
/// double-counted values.
///
/// Validation contracts are inherited unchanged: non-finite and
/// out-of-range values are rejected with `UnsupportedValue` and leave the
/// sketch untouched.
pub trait ConcurrentIngest: Sync {
    /// Insert a single observation through a shared reference.
    fn add(&self, value: f64) -> Result<(), SketchError>;

    /// Insert `count` copies of `value`. Default: one [`ConcurrentIngest::add`]
    /// per copy; weighted implementations override with O(1).
    fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        for _ in 0..count {
            self.add(value)?;
        }
        Ok(())
    }

    /// Insert a batch of observations.
    ///
    /// Unlike the `&mut` default on [`QuantileSketch::add_slice`],
    /// implementations should validate the whole batch before ingesting
    /// any of it (all-or-nothing), because a concurrent caller cannot
    /// roll back a half-applied batch.
    fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        for &v in values {
            self.add(v)?;
        }
        Ok(())
    }

    /// Number of observations inserted. Exact at quiescence; while racing
    /// writers, a value the sketch held at some instant during the call.
    fn count(&self) -> u64;

    /// Whether the sketch has seen no data (same racing-read caveat as
    /// [`ConcurrentIngest::count`]).
    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

/// In-memory footprint accounting used by Figure 6.
///
/// The paper compares "sketch size in memory in kB" across the four Java
/// implementations. We report the number of *heap + inline* bytes the
/// sketch's data structures occupy, computed structurally (capacity-aware),
/// which is the same quantity a JVM memory profiler reports modulo object
/// headers.
pub trait MemoryFootprint {
    /// Total bytes: `size_of::<Self>()` plus owned heap allocations
    /// (measured by capacity, since reserved-but-unused capacity is real
    /// resident memory).
    fn memory_bytes(&self) -> usize;

    /// Convenience: kB (1000 bytes, matching the paper's axis).
    fn memory_kb(&self) -> f64 {
        self.memory_bytes() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately naive sketch that stores everything, used to exercise
    /// the trait default methods.
    struct ExactSketch {
        values: Vec<f64>,
    }

    impl QuantileSketch for ExactSketch {
        fn add(&mut self, value: f64) -> Result<(), SketchError> {
            if !value.is_finite() {
                return Err(SketchError::UnsupportedValue(value));
            }
            self.values.push(value);
            Ok(())
        }

        fn quantile(&self, q: f64) -> Result<f64, SketchError> {
            if !(0.0..=1.0).contains(&q) {
                return Err(SketchError::InvalidQuantile(q));
            }
            if self.values.is_empty() {
                return Err(SketchError::Empty);
            }
            let mut sorted = self.values.clone();
            sorted.sort_by(f64::total_cmp);
            Ok(sorted[crate::rank::lower_quantile_index(q, sorted.len())])
        }

        fn count(&self) -> u64 {
            self.values.len() as u64
        }

        fn name(&self) -> &'static str {
            "Exact"
        }
    }

    #[test]
    fn default_add_n_repeats() {
        let mut s = ExactSketch { values: vec![] };
        s.add_n(2.0, 5).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.5).unwrap(), 2.0);
    }

    #[test]
    fn default_add_slice_loops_and_stops_at_first_bad_value() {
        let mut s = ExactSketch { values: vec![] };
        s.add_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.count(), 3);
        // The loop fallback is not atomic: values before the unsupported
        // one are already ingested when the error surfaces.
        assert!(s.add_slice(&[4.0, f64::NAN, 5.0]).is_err());
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn default_quantiles_maps_each() {
        let mut s = ExactSketch { values: vec![] };
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.add(v).unwrap();
        }
        let qs = s.quantiles(&[0.0, 1.0]).unwrap();
        assert_eq!(qs, vec![1.0, 4.0]);
    }

    #[test]
    fn default_is_empty_uses_count() {
        let s = ExactSketch { values: vec![] };
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        let mut s = ExactSketch { values: vec![] };
        assert!(matches!(
            s.add(f64::INFINITY),
            Err(SketchError::UnsupportedValue(_))
        ));
        assert!(s.add(f64::NAN).is_err());
    }

    #[test]
    fn invalid_quantile_rejected() {
        let mut s = ExactSketch { values: vec![] };
        s.add(1.0).unwrap();
        assert!(matches!(
            s.quantile(f64::NAN),
            Err(SketchError::InvalidQuantile(_))
        ));
        assert!(s.quantile(-0.1).is_err());
        assert!(s.quantile(1.1).is_err());
    }
}
