//! Error types shared across the workspace.

use std::fmt;

/// Errors surfaced by sketch operations.
///
/// The sketches in this workspace are infallible on their hot paths (adding
/// a finite value never errors); the error cases concentrate on
/// configuration, queries on empty sketches, values a bounded sketch cannot
/// represent, and decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// Invalid construction parameter (e.g. relative accuracy outside
    /// `(0, 1)`, zero bucket limit, inverted bounds).
    InvalidConfig(String),
    /// The input value cannot be inserted (NaN, infinite, or outside a
    /// bounded sketch's trackable range).
    UnsupportedValue(f64),
    /// A quantile was requested from an empty sketch.
    Empty,
    /// The requested quantile is outside `[0, 1]`.
    InvalidQuantile(f64),
    /// Two sketches with incompatible configurations were merged
    /// (e.g. different γ / relative accuracy, different bounded ranges).
    IncompatibleMerge(String),
    /// A serialized sketch could not be decoded.
    Decode(String),
    /// Serialized bytes are structurally corrupt (truncated, oversized
    /// length claims, trailing garbage, invalid varints): the byte-level
    /// counterpart of [`SketchError::Decode`], which covers semantic
    /// mismatches on structurally-valid payloads. Decoders return this
    /// *before* acting on hostile claims (e.g. before allocating for a
    /// declared bin count), so malformed input can never balloon memory.
    Malformed(String),
    /// An underlying I/O operation failed while reading or writing a
    /// sketch stream (frame streams, checkpoints). Carries the rendered
    /// `std::io::Error`, keeping this enum `Clone + PartialEq`.
    Io(String),
    /// A read on a non-blocking or timeout-configured source could not
    /// make progress right now (`ErrorKind::WouldBlock` / `TimedOut`).
    /// Unlike [`SketchError::Io`] this is retryable: stream readers
    /// surface it *without losing position*, so the caller can poll or
    /// wait and then repeat the same call to resume exactly where the
    /// read left off (mid-header, mid-length, or mid-body).
    WouldBlock,
    /// A timestamped observation fell before the live range of a sliding
    /// window: its slot has already been evicted, so it can no longer be
    /// attributed. Carries the observation's timestamp and the window's
    /// current lower bound (both in seconds).
    StaleTimestamp {
        /// The observation's timestamp.
        ts_secs: u64,
        /// The oldest timestamp the window still covers.
        window_start: u64,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SketchError::UnsupportedValue(v) => write!(f, "unsupported input value: {v}"),
            SketchError::Empty => write!(f, "sketch is empty"),
            SketchError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside the valid range [0, 1]")
            }
            SketchError::IncompatibleMerge(msg) => write!(f, "incompatible merge: {msg}"),
            SketchError::Decode(msg) => write!(f, "decode error: {msg}"),
            SketchError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            SketchError::Io(msg) => write!(f, "I/O error: {msg}"),
            SketchError::WouldBlock => {
                write!(
                    f,
                    "read would block (timeout or non-blocking source); retry to resume"
                )
            }
            SketchError::StaleTimestamp {
                ts_secs,
                window_start,
            } => write!(
                f,
                "timestamp {ts_secs}s predates the sliding window (oldest covered: {window_start}s)"
            ),
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SketchError::InvalidConfig("alpha must be in (0,1)".into());
        assert!(e.to_string().contains("alpha"));
        assert!(SketchError::Empty.to_string().contains("empty"));
        assert!(SketchError::UnsupportedValue(f64::NAN)
            .to_string()
            .contains("NaN"));
        assert!(SketchError::InvalidQuantile(1.5)
            .to_string()
            .contains("1.5"));
        assert!(SketchError::IncompatibleMerge("gamma".into())
            .to_string()
            .contains("gamma"));
        assert!(SketchError::Decode("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(
            SketchError::Malformed("bin count 9999 exceeds payload".into())
                .to_string()
                .contains("malformed")
        );
        assert!(SketchError::Io("connection reset".into())
            .to_string()
            .contains("connection reset"));
        assert!(SketchError::WouldBlock.to_string().contains("retry"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SketchError::Empty);
    }
}
