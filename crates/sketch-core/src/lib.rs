//! Shared vocabulary for the DDSketch reproduction workspace.
//!
//! Every quantile sketch in this workspace (DDSketch, GKArray, HDR
//! Histogram, Moments sketch) implements the [`QuantileSketch`] trait so the
//! evaluation harness, examples, and integration tests can treat them
//! uniformly. The module also pins down the *exact* quantile definition used
//! throughout the paper (the lower quantile, Section 1):
//!
//! > given a multiset `S` of size `n`, the q-quantile item is the item whose
//! > rank in the sorted multiset is `⌊1 + q(n − 1)⌋`.
//!
//! Keeping that single definition in one place is load-bearing: relative and
//! rank errors in the evaluation are computed against this rank, and
//! off-by-one disagreements between sketches would otherwise masquerade as
//! accuracy differences.

pub mod error;
pub mod rank;
pub mod traits;

pub use error::SketchError;
pub use rank::{lower_quantile_index, rank_of_query, target_rank};
pub use traits::{ConcurrentIngest, MemoryFootprint, MergeError, MergeableSketch, QuantileSketch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        // Smoke test that the public facade compiles and the rank helper is
        // reachable through the crate root.
        assert_eq!(lower_quantile_index(0.5, 3), 1);
    }
}
