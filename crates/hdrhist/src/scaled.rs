//! Adapter running the integer HDR histogram over `f64` streams.

use crate::HdrHistogram;
use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// An [`HdrHistogram`] recording `f64` values by fixed-point scaling.
///
/// The paper runs the (integer) Java HDR Histogram on data sets with
/// fractional values (`power`) and sub-unit values (`pareto` starts at 1);
/// the standard approach is to pick a unit scale: a value `v` is recorded
/// as `round(v × scale)`. Because the histogram's guarantee is *relative*,
/// scaling does not change it — except that values below `~10^d / scale`
/// gain quantization error of up to `0.5/scale` absolute, which is exactly
/// the bounded-range limitation the paper calls out for HDR.
#[derive(Debug, Clone)]
pub struct ScaledHdr {
    inner: HdrHistogram,
    scale: f64,
}

impl ScaledHdr {
    /// Track `f64` values in `[0, highest_value]` with `significant_digits`
    /// decimal digits of relative precision; `scale` converts values to
    /// integer units (e.g. `1e6` to record seconds at microsecond
    /// granularity).
    pub fn new(
        highest_value: f64,
        scale: f64,
        significant_digits: u8,
    ) -> Result<Self, SketchError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(SketchError::InvalidConfig(format!(
                "scale must be positive, got {scale}"
            )));
        }
        let highest = highest_value * scale;
        if !(highest.is_finite() && highest >= 2.0 && highest <= u64::MAX as f64 / 2.0) {
            return Err(SketchError::InvalidConfig(format!(
                "highest_value × scale = {highest} outside the trackable integer range"
            )));
        }
        Ok(Self {
            inner: HdrHistogram::new(1, highest as u64, significant_digits)?,
            scale,
        })
    }

    /// The underlying integer histogram.
    pub fn inner(&self) -> &HdrHistogram {
        &self.inner
    }

    /// The fixed-point scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl QuantileSketch for ScaledHdr {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        if !value.is_finite() || value < 0.0 {
            return Err(SketchError::UnsupportedValue(value));
        }
        self.inner.record((value * self.scale).round() as u64)
    }

    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        if !value.is_finite() || value < 0.0 {
            return Err(SketchError::UnsupportedValue(value));
        }
        self.inner
            .record_n((value * self.scale).round() as u64, count)
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.inner.value_at_quantile(q)? as f64 / self.scale)
    }

    fn count(&self) -> u64 {
        self.inner.total_count()
    }

    fn name(&self) -> &'static str {
        "HDRHistogram"
    }
}

impl MergeableSketch for ScaledHdr {
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if (self.scale - other.scale).abs() > f64::EPSILON * self.scale {
            return Err(SketchError::IncompatibleMerge(
                "ScaledHdr with different scales".into(),
            ));
        }
        self.inner.merge(&other.inner)
    }
}

impl MemoryFootprint for ScaledHdr {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<HdrHistogram>()
            + self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn construction_validates() {
        assert!(ScaledHdr::new(1e6, 0.0, 2).is_err());
        assert!(ScaledHdr::new(f64::INFINITY, 1.0, 2).is_err());
        assert!(ScaledHdr::new(1e30, 1e30, 2).is_err());
        assert!(ScaledHdr::new(1e6, 1e3, 2).is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let mut h = ScaledHdr::new(1e6, 1e3, 2).unwrap();
        assert!(h.add(-1.0).is_err());
        assert!(h.add(f64::NAN).is_err());
        assert!(h.add(2e6).is_err(), "beyond the bounded range");
        assert!(h.add(5.0).is_ok());
    }

    #[test]
    fn fractional_values_keep_relative_accuracy() {
        // The power data set regime: values in [0.076, 12] kW. Scale 1e5
        // gives integer headroom for 2 significant digits.
        let mut h = ScaledHdr::new(12.0, 1e5, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut values: Vec<f64> = (0..50_000)
            .map(|_| 0.076 + rng.random::<f64>().powi(2) * 11.0)
            .collect();
        for &v in &values {
            h.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.5, 0.95, 0.99] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = h.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(rel <= 0.011, "q={q}: est {est} vs {actual} rel {rel}");
        }
    }

    #[test]
    fn merge_roundtrip() {
        let mut a = ScaledHdr::new(1e9, 1.0, 2).unwrap();
        let mut b = ScaledHdr::new(1e9, 1.0, 2).unwrap();
        for i in 1..1000 {
            a.add(f64::from(i)).unwrap();
            b.add(f64::from(i * 1000)).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 1998);
        let incompatible = ScaledHdr::new(1e9, 10.0, 2).unwrap();
        assert!(a.merge_from(&incompatible).is_err());
    }
}
