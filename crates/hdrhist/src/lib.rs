//! # HDR Histogram
//!
//! A from-scratch implementation of Gil Tene's High Dynamic Range
//! histogram — the *relative-error, bounded-range* baseline of the DDSketch
//! paper (Table 1: "relative / bounded / full" mergeability; Figures 6–11).
//!
//! ## How it works
//!
//! Values are non-negative integers in a configured range
//! `[lowest_discernible, highest_trackable]`. The range is covered by
//! *buckets* that double in width, each split into `sub_bucket_count`
//! equal-width sub-buckets. With `sub_bucket_count ≥ 2·10^d`, consecutive
//! sub-bucket boundaries are within `10^−d` relative distance, which is the
//! "significant decimal digits" guarantee. Index arithmetic is a couple of
//! shifts and a leading-zeros count ("extremely fast insertion times ...
//! only requiring low-level binary operations", paper Section 1.2).
//!
//! ## Scope
//!
//! Exactly what the paper exercises: recording (weighted), quantile
//! queries, merging, memory accounting — plus a [`ScaledHdr`] adapter that
//! maps `f64` data streams onto the integer histogram so it can run on the
//! paper's data sets.
//!
//! ```
//! use hdrhist::HdrHistogram;
//!
//! // Track 1 ns .. 1 hour (in ns) with 2 significant digits.
//! let mut h = HdrHistogram::new(1, 3_600_000_000_000, 2).unwrap();
//! h.record(250_000).unwrap(); // 250 µs
//! h.record_n(1_000_000, 99).unwrap();
//! let p99 = h.value_at_quantile(0.99).unwrap();
//! assert!((p99 as f64 - 1_000_000.0).abs() <= 10_000.0); // within 1%
//! ```

mod scaled;

pub use scaled::ScaledHdr;

use sketch_core::{MemoryFootprint, SketchError};

/// An HDR histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct HdrHistogram {
    lowest_discernible: u64,
    highest_trackable: u64,
    significant_digits: u8,
    /// `floor(log2(lowest_discernible))`: values are tracked in units of
    /// `2^unit_magnitude`.
    unit_magnitude: u32,
    /// Number of sub-buckets per bucket; a power of two ≥ `2·10^d`.
    sub_bucket_count: u64,
    sub_bucket_half_count: u64,
    sub_bucket_half_count_magnitude: u32,
    /// Mask selecting values that fall in bucket 0.
    sub_bucket_mask: u64,
    /// Number of doubling buckets needed to reach `highest_trackable`.
    bucket_count: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl HdrHistogram {
    /// Create a histogram tracking `[lowest_discernible, highest_trackable]`
    /// with `significant_digits ∈ 1..=5` decimal digits of relative
    /// precision.
    ///
    /// `lowest_discernible` must be ≥ 1 and `highest_trackable` at least
    /// `2 × lowest_discernible`.
    pub fn new(
        lowest_discernible: u64,
        highest_trackable: u64,
        significant_digits: u8,
    ) -> Result<Self, SketchError> {
        if !(1..=5).contains(&significant_digits) {
            return Err(SketchError::InvalidConfig(format!(
                "significant_digits must be in 1..=5, got {significant_digits}"
            )));
        }
        if lowest_discernible < 1 {
            return Err(SketchError::InvalidConfig(
                "lowest_discernible must be >= 1".into(),
            ));
        }
        if highest_trackable < 2 * lowest_discernible {
            return Err(SketchError::InvalidConfig(format!(
                "highest_trackable ({highest_trackable}) must be >= 2 × lowest_discernible ({lowest_discernible})"
            )));
        }

        // Sub-buckets fine enough that one sub-bucket step at the start of
        // a bucket is below 10^-d relative: 2^ceil(log2(2·10^d)).
        let largest_single_unit_resolution = 2 * 10u64.pow(u32::from(significant_digits));
        let sub_bucket_count_magnitude =
            (largest_single_unit_resolution as f64).log2().ceil() as u32;
        let sub_bucket_count = 1u64 << sub_bucket_count_magnitude;
        let sub_bucket_half_count = sub_bucket_count / 2;
        let sub_bucket_half_count_magnitude = sub_bucket_count_magnitude - 1;
        let unit_magnitude = (lowest_discernible as f64).log2().floor() as u32;
        let sub_bucket_mask = (sub_bucket_count - 1) << unit_magnitude;

        // Count doubling buckets until the range covers highest_trackable.
        let mut smallest_untrackable = sub_bucket_count << unit_magnitude;
        let mut bucket_count = 1u32;
        while smallest_untrackable <= highest_trackable {
            if smallest_untrackable > u64::MAX / 2 {
                bucket_count += 1;
                break;
            }
            smallest_untrackable <<= 1;
            bucket_count += 1;
        }

        let counts_len = ((u64::from(bucket_count) + 1) * sub_bucket_half_count) as usize;
        Ok(Self {
            lowest_discernible,
            highest_trackable,
            significant_digits,
            unit_magnitude,
            sub_bucket_count,
            sub_bucket_half_count,
            sub_bucket_half_count_magnitude,
            sub_bucket_mask,
            bucket_count,
            counts: vec![0; counts_len],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        })
    }

    /// The configured number of significant decimal digits.
    pub fn significant_digits(&self) -> u8 {
        self.significant_digits
    }

    /// The configured upper range bound.
    pub fn highest_trackable(&self) -> u64 {
        self.highest_trackable
    }

    /// The configured lower range bound.
    pub fn lowest_discernible(&self) -> u64 {
        self.lowest_discernible
    }

    /// Number of doubling buckets covering the range.
    pub fn bucket_count(&self) -> u32 {
        self.bucket_count
    }

    /// Number of sub-buckets per doubling bucket.
    pub fn sub_bucket_count(&self) -> u64 {
        self.sub_bucket_count
    }

    /// Implied relative error of quantile estimates:
    /// `10^(−significant_digits)`.
    pub fn relative_accuracy(&self) -> f64 {
        10f64.powi(-i32::from(self.significant_digits))
    }

    #[inline]
    fn bucket_index(&self, value: u64) -> u32 {
        // Index of the highest set bit at or above sub-bucket resolution;
        // 0 for values fitting entirely within bucket 0.
        let pow2_ceiling = 63 - (value | self.sub_bucket_mask).leading_zeros();
        pow2_ceiling - (self.sub_bucket_half_count_magnitude + self.unit_magnitude)
    }

    #[inline]
    fn sub_bucket_index(&self, value: u64, bucket_index: u32) -> u64 {
        value >> (bucket_index + self.unit_magnitude)
    }

    #[inline]
    fn counts_index(&self, value: u64) -> usize {
        let bucket = self.bucket_index(value);
        let sub = self.sub_bucket_index(value, bucket);
        debug_assert!(sub >= self.sub_bucket_half_count || bucket == 0);
        // Bucket 0 uses the full sub-bucket range [0, sub_bucket_count);
        // every later bucket only uses its upper half.
        let bucket_base = (u64::from(bucket) + 1) * self.sub_bucket_half_count;
        (bucket_base + sub - self.sub_bucket_half_count) as usize
    }

    /// Lowest value that maps to the counting slot `index`.
    fn value_for_index(&self, index: usize) -> u64 {
        let index = index as u64;
        let mut bucket = (index >> self.sub_bucket_half_count_magnitude) as i64 - 1;
        let mut sub = (index & (self.sub_bucket_half_count - 1)) + self.sub_bucket_half_count;
        if bucket < 0 {
            sub -= self.sub_bucket_half_count;
            bucket = 0;
        }
        sub << (bucket as u32 + self.unit_magnitude)
    }

    /// Width of the counting slot `index`.
    fn bucket_width_for_index(&self, index: usize) -> u64 {
        let index = index as u64;
        let bucket = ((index >> self.sub_bucket_half_count_magnitude) as i64 - 1).max(0);
        1u64 << (bucket as u32 + self.unit_magnitude)
    }

    /// Midpoint of the slot's value range — the estimate with at most
    /// `10^-d` relative error.
    fn median_equivalent(&self, index: usize) -> u64 {
        self.value_for_index(index) + self.bucket_width_for_index(index) / 2
    }

    /// Record `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) -> Result<(), SketchError> {
        if value > self.highest_trackable {
            return Err(SketchError::UnsupportedValue(value as f64));
        }
        if count == 0 {
            return Ok(());
        }
        let idx = self.counts_index(value);
        self.counts[idx] += count;
        self.total += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value) * u128::from(count);
        Ok(())
    }

    /// Record a single value.
    pub fn record(&mut self, value: u64) -> Result<(), SketchError> {
        self.record_n(value, 1)
    }

    /// Total recorded count.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Estimate the q-quantile as an integer value.
    pub fn value_at_quantile(&self, q: f64) -> Result<u64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        if self.total == 0 {
            return Err(SketchError::Empty);
        }
        // Lower-quantile rank (paper Section 1): first slot with
        // cumulative count > q(n−1).
        let rank = sketch_core::target_rank(q, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum as f64 > rank {
                // Clamp the slot-midpoint estimate into the observed range
                // (exact min/max are tracked).
                return Ok(self.median_equivalent(i).clamp(self.min, self.max));
            }
        }
        Ok(self.max)
    }

    /// Number of non-empty counting slots.
    pub fn num_bins(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Whether two histograms have identical bucket layouts.
    pub fn is_compatible_with(&self, other: &Self) -> bool {
        self.lowest_discernible == other.lowest_discernible
            && self.highest_trackable == other.highest_trackable
            && self.significant_digits == other.significant_digits
    }

    /// Merge `other` into `self` by summing all counting slots — fully
    /// mergeable, but O(array length) regardless of how much data the
    /// other histogram holds (the paper: "fully mergeable (though very
    /// slow)").
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if !self.is_compatible_with(other) {
            return Err(SketchError::IncompatibleMerge(
                "HDR histograms with different ranges/precision".into(),
            ));
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        Ok(())
    }
}

impl MemoryFootprint for HdrHistogram {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn construction_validates() {
        assert!(HdrHistogram::new(1, 1_000_000, 0).is_err());
        assert!(HdrHistogram::new(1, 1_000_000, 6).is_err());
        assert!(HdrHistogram::new(0, 1_000_000, 2).is_err());
        assert!(HdrHistogram::new(100, 150, 2).is_err());
        assert!(HdrHistogram::new(1, 3_600_000_000, 3).is_ok());
    }

    #[test]
    fn records_and_counts() {
        let mut h = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        h.record(100).unwrap();
        h.record_n(1000, 5).unwrap();
        assert_eq!(h.total_count(), 6);
        assert!(h.record(2_000_000).is_err());
        assert_eq!(h.total_count(), 6, "failed record must not count");
    }

    #[test]
    fn zero_value_is_trackable() {
        let mut h = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        h.record(0).unwrap();
        assert_eq!(h.value_at_quantile(0.5).unwrap(), 0);
    }

    #[test]
    fn relative_error_guarantee_holds() {
        // d = 2 significant digits → 1% relative error.
        let mut h = HdrHistogram::new(1, 10_000_000_000, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut values: Vec<u64> = (0..100_000)
            .map(|_| {
                // Log-uniform across nine orders of magnitude.
                let e = rng.random::<f64>() * 9.0;
                10f64.powf(e) as u64
            })
            .collect();
        for &v in &values {
            h.record(v).unwrap();
        }
        values.sort_unstable();
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = h.value_at_quantile(q).unwrap();
            let rel = (est as f64 - actual as f64).abs() / (actual as f64).max(1.0);
            assert!(rel <= 0.01 + 1e-9, "q={q}: est {est} vs {actual} rel {rel}");
        }
    }

    #[test]
    fn counts_index_is_monotone_and_invertible() {
        let h = HdrHistogram::new(1, 10_000_000, 2).unwrap();
        let mut prev_idx = 0usize;
        let mut v = 1u64;
        while v < 10_000_000 {
            let idx = h.counts_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            let lo = h.value_for_index(idx);
            let width = h.bucket_width_for_index(idx);
            assert!(
                lo <= v && v < lo + width,
                "value {v} outside its slot [{lo}, {})",
                lo + width
            );
            prev_idx = idx;
            v = v * 17 / 16 + 1;
        }
    }

    #[test]
    fn highest_trackable_is_trackable() {
        let mut h = HdrHistogram::new(1, 3_600_000_000, 3).unwrap();
        h.record(3_600_000_000).unwrap();
        assert_eq!(h.value_at_quantile(1.0).unwrap(), 3_600_000_000);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let mut b = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let mut u = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(1..1_000_000u64);
            a.record(v).unwrap();
            u.record(v).unwrap();
        }
        for _ in 0..10_000 {
            let v = rng.random_range(1..1_000u64);
            b.record(v).unwrap();
            u.record(v).unwrap();
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total_count(), u.total_count());
        assert_eq!(a.counts, u.counts, "merge must be slot-exact");
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(
                a.value_at_quantile(q).unwrap(),
                u.value_at_quantile(q).unwrap()
            );
        }
    }

    #[test]
    fn merge_rejects_incompatible() {
        let mut a = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let b = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        let c = HdrHistogram::new(1, 2_000_000, 2).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn memory_is_fixed_and_range_dependent() {
        use sketch_core::MemoryFootprint;
        let small = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let wide = HdrHistogram::new(1, 2_000_000_000_000, 2).unwrap();
        let precise = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        assert!(wide.memory_bytes() > small.memory_bytes());
        assert!(precise.memory_bytes() > small.memory_bytes());

        // Size must not change with data volume (preallocated).
        let mut h = HdrHistogram::new(1, 1_000_000, 2).unwrap();
        let before = h.memory_bytes();
        for i in 0..100_000u64 {
            h.record(i % 1_000_000).unwrap();
        }
        assert_eq!(h.memory_bytes(), before);
    }

    #[test]
    fn empty_quantile_errors() {
        let h = HdrHistogram::new(1, 1000, 2).unwrap();
        assert!(matches!(h.value_at_quantile(0.5), Err(SketchError::Empty)));
        let mut h = h;
        h.record(5).unwrap();
        assert!(h.value_at_quantile(1.5).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_relative_error(values in proptest::collection::vec(1u64..1_000_000, 1..500)) {
            let mut h = HdrHistogram::new(1, 1_000_000, 2).unwrap();
            for &v in &values {
                h.record(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.5, 1.0] {
                let actual = sorted[sketch_core::lower_quantile_index(q, sorted.len())] as f64;
                let est = h.value_at_quantile(q).unwrap() as f64;
                proptest::prop_assert!(
                    (est - actual).abs() <= 0.01 * actual + 1.0,
                    "q={} est={} actual={}", q, est, actual
                );
            }
        }

        #[test]
        fn prop_slot_roundtrip(v in 1u64..3_600_000_000) {
            let h = HdrHistogram::new(1, 3_600_000_000, 2).unwrap();
            let idx = h.counts_index(v);
            let lo = h.value_for_index(idx);
            let width = h.bucket_width_for_index(idx);
            proptest::prop_assert!(lo <= v && v < lo + width);
        }
    }
}
