//! # t-digest
//!
//! Dunning & Ertl's t-digest — the *biased* rank-error sketch the DDSketch
//! paper discusses in Section 1.2 ("dubbed t-digest ... one of the
//! quantile sketch implementations used by Elasticsearch"). It keeps
//! centroids whose allowed rank-mass shrinks toward the extremes, so tail
//! quantiles (p99.9) get much better *rank* accuracy than uniform
//! rank-error sketches — but, as the paper stresses, "they still have high
//! relative error on heavy-tailed data sets", and like GK it is only
//! one-way mergeable (merging inflates the error).
//!
//! This is the *merging* t-digest: incoming values are buffered and folded
//! into the centroid list with a single sort + greedy pass under the
//! `k1` scale function `k(q) = (δ/2π)·asin(2q − 1)`.
//!
//! ```
//! use tdigest::TDigest;
//! use sketch_core::QuantileSketch;
//!
//! let mut digest = TDigest::new(100.0).unwrap();
//! for i in 0..100_000u32 {
//!     digest.add(f64::from(i)).unwrap();
//! }
//! // Tail quantiles get the most rank precision (the scale function's bias).
//! let p999 = digest.quantile(0.999).unwrap();
//! assert!((p999 - 99_900.0).abs() < 300.0);
//! ```

use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// A weighted centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// The merging t-digest.
#[derive(Debug, Clone)]
pub struct TDigest {
    /// Compression parameter δ: the digest holds at most ~2δ centroids.
    compression: f64,
    /// Centroids sorted by mean.
    centroids: Vec<Centroid>,
    /// Buffered insertions not yet folded in.
    buffer: Vec<Centroid>,
    buffer_capacity: usize,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl TDigest {
    /// Create a digest with compression `delta` (typical: 100–1000).
    pub fn new(delta: f64) -> Result<Self, SketchError> {
        if !(delta.is_finite() && delta >= 10.0) {
            return Err(SketchError::InvalidConfig(format!(
                "compression must be >= 10, got {delta}"
            )));
        }
        let buffer_capacity = (delta as usize) * 5;
        Ok(Self {
            compression: delta,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(buffer_capacity),
            buffer_capacity,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        })
    }

    /// The compression parameter δ.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Number of centroids currently held (after a flush).
    pub fn num_centroids(&self) -> usize {
        self.centroids.len()
    }

    /// The `k1` scale function.
    #[inline]
    fn k_scale(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    /// Inverse of the `k1` scale function.
    #[inline]
    fn k_inverse(&self, k: f64) -> f64 {
        ((2.0 * std::f64::consts::PI * k / self.compression).sin() + 1.0) / 2.0
    }

    /// Fold the buffer into the centroid list (the merging algorithm).
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.append(&mut self.buffer);
        all.sort_by(|a, b| a.mean.total_cmp(&b.mean));

        let total: f64 = all.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::with_capacity((2.0 * self.compression) as usize + 8);
        let mut iter = all.into_iter();
        let mut current = iter.next().expect("buffer non-empty");
        let mut q0 = 0.0; // cumulative quantile at the start of `current`
        let mut q_limit = self.k_inverse(self.k_scale(q0) + 1.0);
        for c in iter {
            let proposed = (current.weight + c.weight) / total + q0;
            if proposed <= q_limit {
                // Absorb into the current centroid (weighted mean).
                let w = current.weight + c.weight;
                current.mean += (c.mean - current.mean) * c.weight / w;
                current.weight = w;
            } else {
                q0 += current.weight / total;
                q_limit = self.k_inverse(self.k_scale(q0) + 1.0);
                merged.push(current);
                current = c;
            }
        }
        merged.push(current);
        self.centroids = merged;
    }

    /// Quantile over flushed centroids with linear interpolation in rank
    /// space (each centroid is centred at its cumulative midpoint).
    fn query_flushed(&self, q: f64) -> f64 {
        debug_assert!(self.buffer.is_empty());
        if self.count == 1 || q <= 0.0 {
            return if q >= 1.0 {
                self.max
            } else if q <= 0.0 {
                self.min
            } else {
                self.sum / self.count as f64
            };
        }
        if q >= 1.0 {
            return self.max;
        }
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let target = q * total;
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let mid = cum + c.weight / 2.0;
            if target < mid {
                let span = (mid - prev_mid).max(f64::MIN_POSITIVE);
                let frac = (target - prev_mid) / span;
                return (prev_mean + (c.mean - prev_mean) * frac).clamp(self.min, self.max);
            }
            cum += c.weight;
            prev_mid = mid;
            prev_mean = c.mean;
        }
        self.max
    }
}

impl QuantileSketch for TDigest {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        self.buffer.push(Centroid {
            mean: value,
            weight: 1.0,
        });
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        if self.buffer.len() >= self.buffer_capacity {
            self.flush();
        }
        Ok(())
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        if self.buffer.is_empty() {
            Ok(self.query_flushed(q))
        } else {
            let mut scratch = self.clone();
            scratch.flush();
            Ok(scratch.query_flushed(q))
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "t-digest"
    }
}

impl MergeableSketch for TDigest {
    /// One-way merge: the other digest's centroids enter the buffer as
    /// weighted points and a flush re-compresses. Centroid means are
    /// weighted averages, so merging loses information (the paper's
    /// "one-way mergeable" classification).
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if (self.compression - other.compression).abs() > 1e-9 {
            return Err(SketchError::IncompatibleMerge(
                "t-digests with different compression".into(),
            ));
        }
        if other.count == 0 {
            return Ok(());
        }
        let mut other = other.clone();
        other.flush();
        self.buffer.extend_from_slice(&other.centroids);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.flush();
        Ok(())
    }
}

impl MemoryFootprint for TDigest {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.centroids.capacity() + self.buffer.capacity()) * std::mem::size_of::<Centroid>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn uniform_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>()).collect()
    }

    #[test]
    fn construction_validates() {
        assert!(TDigest::new(5.0).is_err());
        assert!(TDigest::new(f64::NAN).is_err());
        assert!(TDigest::new(100.0).is_ok());
    }

    #[test]
    fn empty_and_error_paths() {
        let mut d = TDigest::new(100.0).unwrap();
        assert!(matches!(d.quantile(0.5), Err(SketchError::Empty)));
        assert!(d.add(f64::INFINITY).is_err());
        d.add(1.0).unwrap();
        assert!(d.quantile(-0.1).is_err());
        assert_eq!(d.quantile(0.5).unwrap(), 1.0);
    }

    #[test]
    fn extremes_are_exact() {
        let mut d = TDigest::new(100.0).unwrap();
        let values = uniform_values(50_000, 1);
        for &v in &values {
            d.add(v).unwrap();
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(d.quantile(0.0).unwrap(), sorted[0]);
        assert_eq!(d.quantile(1.0).unwrap(), sorted[sorted.len() - 1]);
    }

    #[test]
    fn rank_accuracy_on_uniform() {
        let mut d = TDigest::new(200.0).unwrap();
        let values = uniform_values(200_000, 2);
        for &v in &values {
            d.add(v).unwrap();
        }
        d.flush();
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let est = d.quantile(q).unwrap();
            let rank = sorted.partition_point(|&x| x <= est) as f64 / n as f64;
            // δ = 200 gives well under 1% rank error mid-range and much
            // better at the tails.
            let allowed = if !(0.05..=0.95).contains(&q) {
                0.003
            } else {
                0.01
            };
            assert!((rank - q).abs() <= allowed, "q={q}: est rank {rank}");
        }
    }

    #[test]
    fn tail_bias_beats_uniform_error() {
        // The defining property: rank error at p99.9 is far below the
        // mid-range allowance.
        let mut d = TDigest::new(100.0).unwrap();
        let values = uniform_values(500_000, 3);
        for &v in &values {
            d.add(v).unwrap();
        }
        d.flush();
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        let est = d.quantile(0.999).unwrap();
        let rank = sorted.partition_point(|&x| x <= est) as f64 / sorted.len() as f64;
        assert!((rank - 0.999).abs() < 1e-3, "p99.9 rank {rank}");
    }

    #[test]
    fn centroid_count_is_bounded() {
        let mut d = TDigest::new(100.0).unwrap();
        for &v in &uniform_values(300_000, 4) {
            d.add(v).unwrap();
        }
        d.flush();
        assert!(
            d.num_centroids() <= 220,
            "centroids {} exceed ~2δ",
            d.num_centroids()
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut d = TDigest::new(100.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100_000 {
            d.add(1.0 / (1.0 - rng.random::<f64>()).max(1e-12)).unwrap(); // Pareto
        }
        d.flush();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=100 {
            let v = d.quantile(f64::from(k) / 100.0).unwrap();
            assert!(v >= prev, "not monotone at q={}", f64::from(k) / 100.0);
            prev = v;
        }
    }

    #[test]
    fn merge_preserves_count_and_extremes() {
        let mut a = TDigest::new(100.0).unwrap();
        let mut b = TDigest::new(100.0).unwrap();
        for &v in &uniform_values(50_000, 6) {
            a.add(v).unwrap();
            b.add(v + 10.0).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        assert!(a.quantile(1.0).unwrap() > 10.0);
        let c = TDigest::new(200.0).unwrap();
        assert!(a.merge_from(&c).is_err(), "different compression rejected");
    }

    #[test]
    fn memory_is_bounded() {
        use sketch_core::MemoryFootprint;
        let mut d = TDigest::new(100.0).unwrap();
        for &v in &uniform_values(1_000_000, 7) {
            d.add(v).unwrap();
        }
        d.flush();
        assert!(d.memory_bytes() < 64 * 1024, "bytes {}", d.memory_bytes());
    }

    proptest::proptest! {
        #[test]
        fn prop_estimates_stay_in_range(values in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
            let mut d = TDigest::new(50.0).unwrap();
            for &v in &values {
                d.add(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let est = d.quantile(q).unwrap();
                proptest::prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1]);
            }
        }
    }
}
