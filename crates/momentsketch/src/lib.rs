//! # Moments sketch
//!
//! A quantile sketch that stores only the first `k` sample moments (power
//! sums), reconstructing quantiles with a maximum-entropy solver — the
//! "Moments" baseline of the DDSketch paper (Gan, Ding, Tai, Sharan &
//! Bailis, *Moment-based quantile sketches for efficient high cardinality
//! aggregation queries*, VLDB 2018).
//!
//! The sketch is tiny (k + a few floats, independent of `n`) and has the
//! fastest merges of all the baselines (vector addition). Its accuracy
//! guarantee is on *average* rank error only, and — as the DDSketch paper
//! stresses — it "has a bounded range as the moments quickly grow larger,
//! and they will eventually cause floating point overflow errors"; the
//! `span` data set (values up to 1.9·10¹²) is exactly that failure mode.
//! The `compressed` option applies `arcsinh` to every value before
//! accumulating moments (the reference implementation's "compression"),
//! which tames the growth and is what the paper enables in Table 2.
//!
//! ```
//! use momentsketch::MomentSketch;
//! use sketch_core::QuantileSketch;
//!
//! let mut sketch = MomentSketch::paper_default(); // k = 20, compressed
//! for i in 0..10_000u32 {
//!     sketch.add(f64::from(i) / 100.0).unwrap();
//! }
//! // A uniform distribution is easy for the maxent solver.
//! let p50 = sketch.quantile(0.5).unwrap();
//! assert!((p50 - 50.0).abs() < 1.0);
//! ```

pub mod solver;

pub use solver::SolvedDensity;

use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// Maximum supported number of moments; beyond this the solve is hopelessly
/// ill-conditioned in f64 (the reference implementation recommends ≤ 20).
pub const MAX_K: usize = 25;

/// A moments-based quantile sketch.
#[derive(Debug, Clone)]
pub struct MomentSketch {
    /// Power sums Σ uⁱ for i ∈ 0..k of the (possibly transformed) values.
    power_sums: Vec<f64>,
    /// Whether values are arcsinh-transformed before accumulation.
    compressed: bool,
    /// Extremes in the transformed domain (solver bounds).
    t_min: f64,
    t_max: f64,
    /// Extremes in the raw domain (for q = 0 / q = 1 and clamping).
    raw_min: f64,
    raw_max: f64,
}

impl MomentSketch {
    /// Create a sketch tracking `k` moments (`1 ≤ k ≤ 25`); the paper's
    /// configuration is `k = 20` with compression enabled.
    pub fn new(k: usize, compressed: bool) -> Result<Self, SketchError> {
        if k == 0 || k > MAX_K {
            return Err(SketchError::InvalidConfig(format!(
                "k must be in 1..={MAX_K}, got {k}"
            )));
        }
        Ok(Self {
            power_sums: vec![0.0; k],
            compressed,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
            raw_min: f64::INFINITY,
            raw_max: f64::NEG_INFINITY,
        })
    }

    /// The paper's Table 2 configuration: `k = 20`, compression on.
    pub fn paper_default() -> Self {
        Self::new(20, true).expect("20 <= MAX_K")
    }

    /// Number of tracked moments.
    pub fn k(&self) -> usize {
        self.power_sums.len()
    }

    /// Whether the arcsinh compression transform is enabled.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    #[inline]
    fn transform(&self, v: f64) -> f64 {
        if self.compressed {
            v.asinh()
        } else {
            v
        }
    }

    #[inline]
    fn untransform(&self, u: f64) -> f64 {
        if self.compressed {
            u.sinh()
        } else {
            u
        }
    }

    /// Fit the maximum-entropy density for the current moments. Expensive
    /// (iterative solve); batch quantile queries should reuse the result.
    pub fn solve(&self) -> Result<SolvedDensity, SketchError> {
        if self.count() == 0 {
            return Err(SketchError::Empty);
        }
        Ok(solver::solve_max_entropy(
            &self.power_sums,
            self.t_min,
            self.t_max,
        ))
    }

    /// Whether the most recent solve over the current state converges.
    /// Used by the evaluation harness to report the paper's observed
    /// failure on huge-range data.
    pub fn solvable(&self) -> bool {
        self.solve().map(|s| s.converged()).unwrap_or(false)
    }
}

impl QuantileSketch for MomentSketch {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        self.add_n(value, 1)
    }

    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if count == 0 {
            return Ok(());
        }
        let u = self.transform(value);
        let c = count as f64;
        let mut p = 1.0;
        for s in self.power_sums.iter_mut() {
            *s += c * p;
            p *= u;
        }
        self.t_min = self.t_min.min(u);
        self.t_max = self.t_max.max(u);
        self.raw_min = self.raw_min.min(value);
        self.raw_max = self.raw_max.max(value);
        Ok(())
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        if self.count() == 0 {
            return Err(SketchError::Empty);
        }
        if q == 0.0 {
            return Ok(self.raw_min);
        }
        if q == 1.0 {
            return Ok(self.raw_max);
        }
        if self.t_min == self.t_max {
            return Ok(self.raw_min);
        }
        let solved = self.solve()?;
        let u = solved.quantile(q);
        Ok(self.untransform(u).clamp(self.raw_min, self.raw_max))
    }

    fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        if self.count() == 0 {
            return Err(SketchError::Empty);
        }
        if qs.iter().any(|q| !(0.0..=1.0).contains(q)) {
            return Err(SketchError::InvalidQuantile(
                *qs.iter().find(|q| !(0.0..=1.0).contains(*q)).unwrap(),
            ));
        }
        // Solve once, invert many times.
        let degenerate = self.t_min == self.t_max;
        let solved = if degenerate {
            None
        } else {
            Some(self.solve()?)
        };
        Ok(qs
            .iter()
            .map(|&q| {
                if q == 0.0 {
                    self.raw_min
                } else if q == 1.0 {
                    self.raw_max
                } else {
                    match &solved {
                        None => self.raw_min,
                        Some(s) => self
                            .untransform(s.quantile(q))
                            .clamp(self.raw_min, self.raw_max),
                    }
                }
            })
            .collect())
    }

    fn count(&self) -> u64 {
        self.power_sums[0] as u64
    }

    fn name(&self) -> &'static str {
        "MomentSketch"
    }
}

impl MergeableSketch for MomentSketch {
    /// Fully mergeable in O(k): power sums add componentwise ("the Moment
    /// sketch has the fastest merge speeds of all the algorithms", paper
    /// Section 4.3).
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.k() != other.k() || self.compressed != other.compressed {
            return Err(SketchError::IncompatibleMerge(format!(
                "MomentSketch(k={}, compressed={}) vs (k={}, compressed={})",
                self.k(),
                self.compressed,
                other.k(),
                other.compressed
            )));
        }
        for (a, b) in self.power_sums.iter_mut().zip(&other.power_sums) {
            *a += b;
        }
        self.t_min = self.t_min.min(other.t_min);
        self.t_max = self.t_max.max(other.t_max);
        self.raw_min = self.raw_min.min(other.raw_min);
        self.raw_max = self.raw_max.max(other.raw_max);
        Ok(())
    }
}

impl MemoryFootprint for MomentSketch {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.power_sums.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn construction_validates_k() {
        assert!(MomentSketch::new(0, true).is_err());
        assert!(MomentSketch::new(26, true).is_err());
        assert!(MomentSketch::new(20, true).is_ok());
    }

    #[test]
    fn empty_and_error_paths() {
        let s = MomentSketch::paper_default();
        assert!(s.is_empty());
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
        assert!(s.quantiles(&[0.5]).is_err());
        let mut s = s;
        assert!(s.add(f64::NAN).is_err());
        s.add(1.0).unwrap();
        assert!(s.quantile(-0.1).is_err());
        assert!(s.quantiles(&[0.5, 1.2]).is_err());
    }

    #[test]
    fn single_value_and_degenerate_streams() {
        let mut s = MomentSketch::paper_default();
        s.add(7.5).unwrap();
        assert_eq!(s.quantile(0.5).unwrap(), 7.5);
        for _ in 0..100 {
            s.add(7.5).unwrap();
        }
        assert_eq!(s.quantile(0.3).unwrap(), 7.5);
    }

    #[test]
    fn uniform_stream_quantiles() {
        let mut s = MomentSketch::new(12, false).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut values: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>() * 100.0).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            assert!(
                (est - actual).abs() < 2.0,
                "q={q}: est {est} vs actual {actual}"
            );
        }
    }

    #[test]
    fn exponential_stream_with_compression() {
        let mut s = MomentSketch::paper_default();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut values: Vec<f64> = (0..100_000)
            .map(|_| -(1.0 - rng.random::<f64>()).ln() * 10.0)
            .collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.25, 0.5, 0.75, 0.9] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(rel < 0.15, "q={q}: est {est} vs actual {actual} rel {rel}");
        }
    }

    #[test]
    fn weighted_add_matches_repeated() {
        let mut a = MomentSketch::new(8, false).unwrap();
        let mut b = MomentSketch::new(8, false).unwrap();
        a.add_n(3.0, 50).unwrap();
        for _ in 0..50 {
            b.add(3.0).unwrap();
        }
        assert_eq!(a.power_sums, b.power_sums);
    }

    #[test]
    fn merge_is_exact_on_power_sums() {
        let mut a = MomentSketch::new(10, true).unwrap();
        let mut b = MomentSketch::new(10, true).unwrap();
        let mut u = MomentSketch::new(10, true).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..5000 {
            let v = rng.random::<f64>() * 50.0;
            a.add(v).unwrap();
            u.add(v).unwrap();
        }
        for _ in 0..5000 {
            let v = 50.0 + rng.random::<f64>() * 50.0;
            b.add(v).unwrap();
            u.add(v).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), u.count());
        for (x, y) in a.power_sums.iter().zip(&u.power_sums) {
            assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0), "{x} vs {y}");
        }
        let qa = a.quantiles(&[0.1, 0.5, 0.9]).unwrap();
        let qu = u.quantiles(&[0.1, 0.5, 0.9]).unwrap();
        for (x, y) in qa.iter().zip(&qu) {
            assert!((x - y).abs() < 1e-6 * y.abs().max(1.0));
        }
    }

    #[test]
    fn merge_rejects_incompatible() {
        let mut a = MomentSketch::new(10, true).unwrap();
        let b = MomentSketch::new(12, true).unwrap();
        let c = MomentSketch::new(10, false).unwrap();
        assert!(a.merge_from(&b).is_err());
        assert!(a.merge_from(&c).is_err());
    }

    #[test]
    fn memory_is_constant_in_n() {
        use sketch_core::MemoryFootprint;
        let mut s = MomentSketch::paper_default();
        let before = s.memory_bytes();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100_000 {
            s.add(rng.random::<f64>()).unwrap();
        }
        assert_eq!(s.memory_bytes(), before, "Moments sketch is fixed-size");
        assert!(
            before < 512,
            "k=20 sketch should be tiny, got {before} bytes"
        );
    }

    #[test]
    fn huge_range_without_compression_degrades_not_panics() {
        // The paper's span failure mode: values up to 1.9e12 overflow the
        // raw moments (1.9e12^19 ≈ 1e233 per item; the sums survive f64
        // but the solve is hopeless). The sketch must keep answering.
        let mut s = MomentSketch::new(20, false).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = 100.0 * (1.0 / (1.0 - rng.random::<f64>())).powi(4);
            s.add(v.min(1.9e12)).unwrap();
        }
        s.add(1.9e12).unwrap();
        // Must return *something* finite for every quantile.
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(q).unwrap();
            assert!(est.is_finite());
        }
    }

    #[test]
    fn compression_tames_huge_ranges() {
        let mut plain = MomentSketch::new(20, false).unwrap();
        let mut comp = MomentSketch::new(20, true).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut values: Vec<f64> = (0..50_000)
            .map(|_| 100.0 * (1.0 / (1.0 - rng.random::<f64>())).powi(2))
            .collect();
        for &v in &values {
            plain.add(v).unwrap();
            comp.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        let q = 0.5;
        let actual = values[sketch_core::lower_quantile_index(q, values.len())];
        let comp_err = (comp.quantile(q).unwrap() - actual).abs() / actual;
        let plain_err = (plain.quantile(q).unwrap() - actual).abs() / actual;
        assert!(
            comp_err < plain_err || comp_err < 0.05,
            "compression should help on heavy tails: comp {comp_err} vs plain {plain_err}"
        );
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let mut s = MomentSketch::new(10, false).unwrap();
        for i in 1..=1000 {
            s.add(f64::from(i)).unwrap();
        }
        let batch = s.quantiles(&[0.0, 0.25, 0.5, 0.75, 1.0]).unwrap();
        for (q, b) in [0.0, 0.25, 0.5, 0.75, 1.0].iter().zip(&batch) {
            let single = s.quantile(*q).unwrap();
            assert!((single - b).abs() < 1e-12, "q={q}: {single} vs {b}");
        }
    }

    proptest::proptest! {
        // Each case runs a full maxent solve; keep the case count modest.
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_never_panics_and_stays_in_range(
            values in proptest::collection::vec(-1e9f64..1e9, 1..200),
            k in 2usize..16,
            compressed in proptest::bool::ANY,
        ) {
            let mut s = MomentSketch::new(k, compressed).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.0, 0.3, 0.7, 1.0] {
                let est = s.quantile(q).unwrap();
                proptest::prop_assert!(est.is_finite());
                proptest::prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1]);
            }
        }
    }
}
