//! Maximum-entropy density estimation from moments (Gan et al., VLDB 2018).
//!
//! Given the first `k` moments of an unknown distribution on `[a, b]`, the
//! maximum-entropy principle picks the density
//! `f(t) = exp(Σ_j λ_j·T_j(t))` (in Chebyshev basis, on the rescaled domain
//! `t ∈ [−1, 1]`) whose moments match the observations. Finding λ is an
//! unconstrained convex minimization of the dual potential
//!
//! ```text
//! F(λ) = ∫ exp(Σ λ_j T_j(t)) dt − Σ λ_j·m̂_j
//! ```
//!
//! whose gradient is `(moments of f) − m̂` and whose Hessian is the Gram
//! matrix `∫ T_i·T_j·f`. We solve it with damped Newton iterations
//! (explicit Cholesky on the k×k Hessian, backtracking line search) over a
//! fixed quadrature grid, exactly as the reference `momentsketch` solver
//! does.

/// Number of quadrature points for the density grid. Power of two + 1 so
/// the trapezoid rule nests cleanly.
const GRID_SIZE: usize = 1025;

/// Maximum Newton iterations before declaring failure.
const MAX_ITERS: usize = 200;

/// Gradient infinity-norm at which we declare convergence.
const GRAD_TOL: f64 = 1e-8;

/// Result of a maximum-entropy solve: a discretized CDF on `[a, b]`.
#[derive(Debug, Clone)]
pub struct SolvedDensity {
    /// Domain lower bound (in the solver's working space).
    a: f64,
    /// Domain upper bound.
    b: f64,
    /// CDF values at `GRID_SIZE` evenly spaced points on `[a, b]`.
    cdf: Vec<f64>,
    /// Whether Newton converged; if false the CDF is a best-effort
    /// fallback and quantile estimates may be wildly off (this is the
    /// failure mode the DDSketch paper observes for Moments on `span`).
    converged: bool,
}

impl SolvedDensity {
    /// Whether the maximum-entropy optimization converged.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Invert the CDF: the value `x ∈ [a, b]` with `CDF(x) ≈ q`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.cdf.len();
        // First grid point with cdf >= q.
        let i = self.cdf.partition_point(|&c| c < q);
        let x_of = |j: usize| self.a + (self.b - self.a) * j as f64 / (n - 1) as f64;
        if i == 0 {
            return self.a;
        }
        if i >= n {
            return self.b;
        }
        // Linear interpolation between grid points i-1 and i.
        let c0 = self.cdf[i - 1];
        let c1 = self.cdf[i];
        let frac = if c1 > c0 { (q - c0) / (c1 - c0) } else { 0.0 };
        x_of(i - 1) + (x_of(i) - x_of(i - 1)) * frac
    }
}

/// Chebyshev polynomial coefficient table: `coeffs[j][i]` is the
/// coefficient of `t^i` in `T_j(t)`, from `T_{j+1} = 2t·T_j − T_{j−1}`.
fn chebyshev_coefficients(k: usize) -> Vec<Vec<f64>> {
    let mut coeffs: Vec<Vec<f64>> = Vec::with_capacity(k);
    coeffs.push(vec![1.0]); // T_0 = 1
    if k > 1 {
        coeffs.push(vec![0.0, 1.0]); // T_1 = t
    }
    for j in 2..k {
        let mut c = vec![0.0; j + 1];
        for (i, &prev) in coeffs[j - 1].iter().enumerate() {
            c[i + 1] += 2.0 * prev;
        }
        for (i, &prev2) in coeffs[j - 2].iter().enumerate() {
            c[i] -= prev2;
        }
        coeffs.push(c);
    }
    coeffs
}

/// Convert raw power sums `S_i = Σ x^i` (with `S_0 = n`) on `[a, b]` into
/// Chebyshev moments `E[T_j(t)]` of the rescaled variable
/// `t = (2x − (a+b))/(b − a) ∈ [−1, 1]`.
///
/// Returns `None` if the inputs are not finite (the overflow regime the
/// paper describes for large-range data).
pub fn chebyshev_moments(power_sums: &[f64], a: f64, b: f64) -> Option<Vec<f64>> {
    let k = power_sums.len();
    let n = power_sums[0];
    if n <= 0.0 || !power_sums.iter().all(|s| s.is_finite()) {
        return None;
    }
    if !(a.is_finite() && b.is_finite()) || b <= a {
        return None;
    }

    // Raw moments of x.
    let raw: Vec<f64> = power_sums.iter().map(|s| s / n).collect();

    // Power moments of t via the binomial expansion of ((2x − (a+b))/(b−a))^j.
    let c = 0.5 * (a + b);
    let d = 0.5 * (b - a);
    let mut scaled = vec![0.0f64; k];
    let mut binom_row = vec![1.0f64]; // C(j, i) built incrementally
    for (j, slot) in scaled.iter_mut().enumerate() {
        if j > 0 {
            let mut next = vec![1.0; j + 1];
            for i in 1..j {
                next[i] = binom_row[i - 1] + binom_row[i];
            }
            binom_row = next;
        }
        // E[t^j] = d^−j · Σ_i C(j,i)·E[x^i]·(−c)^(j−i)
        let mut acc = 0.0;
        for i in 0..=j {
            acc += binom_row[i] * raw[i] * (-c).powi((j - i) as i32);
        }
        *slot = acc / d.powi(j as i32);
        if !slot.is_finite() {
            return None;
        }
    }

    // Chebyshev change of basis.
    let coeffs = chebyshev_coefficients(k);
    let mut cheb = vec![0.0f64; k];
    for j in 0..k {
        let mut acc = 0.0;
        for (i, &ci) in coeffs[j].iter().enumerate() {
            acc += ci * scaled[i];
        }
        cheb[j] = acc;
    }
    if cheb.iter().all(|m| m.is_finite()) {
        Some(cheb)
    } else {
        None
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix stored
/// row-major; returns the lower factor or `None` if not positive-definite.
fn cholesky(mat: &[f64], k: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = mat[i * k + j];
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[i * k + i] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    Some(l)
}

/// Solve `L·Lᵀ·x = rhs` given the lower Cholesky factor.
fn cholesky_solve(l: &[f64], k: usize, rhs: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; k];
    for i in 0..k {
        let mut sum = rhs[i];
        for j in 0..i {
            sum -= l[i * k + j] * y[j];
        }
        y[i] = sum / l[i * k + i];
    }
    let mut x = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut sum = y[i];
        for j in i + 1..k {
            sum -= l[j * k + i] * x[j];
        }
        x[i] = sum / l[i * k + i];
    }
    x
}

/// Fit the maximum-entropy density for the given raw power sums on
/// `[a, b]` and return its discretized CDF.
///
/// Always returns a usable `SolvedDensity`; check
/// [`SolvedDensity::converged`] to know whether the moments could actually
/// be matched (non-finite moments or an ill-conditioned solve fall back to
/// the uniform density, mirroring the reference implementation's
/// best-effort behaviour).
pub fn solve_max_entropy(power_sums: &[f64], a: f64, b: f64) -> SolvedDensity {
    let k = power_sums.len();
    let uniform_fallback = |converged: bool| {
        let cdf: Vec<f64> = (0..GRID_SIZE)
            .map(|i| i as f64 / (GRID_SIZE - 1) as f64)
            .collect();
        SolvedDensity {
            a,
            b,
            cdf,
            converged,
        }
    };

    if b <= a || !a.is_finite() || !b.is_finite() {
        return uniform_fallback(false);
    }
    // Degenerate domain: all mass at one point is handled by the caller's
    // min == max fast path; a tiny domain still solves fine.
    let targets = match chebyshev_moments(power_sums, a, b) {
        Some(t) => t,
        None => return uniform_fallback(false),
    };

    // Precompute T_j at the grid points.
    let ts: Vec<f64> = (0..GRID_SIZE)
        .map(|i| -1.0 + 2.0 * i as f64 / (GRID_SIZE - 1) as f64)
        .collect();
    let mut tcheb = vec![vec![0.0f64; GRID_SIZE]; k];
    for (i, &t) in ts.iter().enumerate() {
        tcheb[0][i] = 1.0;
        if k > 1 {
            tcheb[1][i] = t;
        }
        for j in 2..k {
            tcheb[j][i] = 2.0 * t * tcheb[j - 1][i] - tcheb[j - 2][i];
        }
    }
    // Trapezoid weights over [-1, 1].
    let h = 2.0 / (GRID_SIZE - 1) as f64;
    let weight = |i: usize| {
        if i == 0 || i == GRID_SIZE - 1 {
            0.5 * h
        } else {
            h
        }
    };

    let mut lambda = vec![0.0f64; k];
    // Start at the uniform density normalized to mass 1: exp(λ0) · 2 = 1.
    lambda[0] = (0.5f64).ln();

    let potential = |lambda: &[f64], f: &mut Vec<f64>| -> f64 {
        let mut integral = 0.0;
        for i in 0..GRID_SIZE {
            let mut arg = 0.0;
            for j in 0..k {
                arg += lambda[j] * tcheb[j][i];
            }
            // Clamp to avoid inf; an argument this large means divergence
            // and will be caught by the line search / iteration cap.
            let v = arg.min(500.0).exp();
            f[i] = v;
            integral += weight(i) * v;
        }
        let mut dot = 0.0;
        for j in 0..k {
            dot += lambda[j] * targets[j];
        }
        integral - dot
    };

    let mut f = vec![0.0f64; GRID_SIZE];
    let mut pot = potential(&lambda, &mut f);
    let mut converged = false;

    for _ in 0..MAX_ITERS {
        // Gradient: grid moments − targets.
        let mut grad = vec![0.0f64; k];
        for (j, g) in grad.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..GRID_SIZE {
                acc += weight(i) * tcheb[j][i] * f[i];
            }
            *g = acc - targets[j];
        }
        let gnorm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if gnorm < GRAD_TOL {
            converged = true;
            break;
        }
        if !gnorm.is_finite() {
            break;
        }

        // Hessian: H[j][l] = ∫ T_j·T_l·f.
        let mut hess = vec![0.0f64; k * k];
        for j in 0..k {
            for l in 0..=j {
                let mut acc = 0.0;
                for i in 0..GRID_SIZE {
                    acc += weight(i) * tcheb[j][i] * tcheb[l][i] * f[i];
                }
                hess[j * k + l] = acc;
                hess[l * k + j] = acc;
            }
        }

        // Cholesky with escalating ridge regularization.
        let mut ridge = 0.0;
        let trace: f64 = (0..k).map(|j| hess[j * k + j]).sum();
        let chol = loop {
            let mut reg = hess.clone();
            if ridge > 0.0 {
                for j in 0..k {
                    reg[j * k + j] += ridge;
                }
            }
            match cholesky(&reg, k) {
                Some(l) => break Some(l),
                None => {
                    ridge = if ridge == 0.0 {
                        1e-12 * trace.max(1.0)
                    } else {
                        ridge * 100.0
                    };
                    if ridge > trace.max(1.0) {
                        break None;
                    }
                }
            }
        };
        let Some(chol) = chol else { break };
        let step = cholesky_solve(&chol, k, &grad);

        // Backtracking line search on the convex potential.
        let mut alpha = 1.0;
        let mut improved = false;
        let mut trial = vec![0.0f64; k];
        for _ in 0..40 {
            for j in 0..k {
                trial[j] = lambda[j] - alpha * step[j];
            }
            let trial_pot = potential(&trial, &mut f);
            if trial_pot.is_finite() && trial_pot < pot {
                lambda.copy_from_slice(&trial);
                pot = trial_pot;
                improved = true;
                break;
            }
            alpha *= 0.5;
        }
        if !improved {
            break;
        }
    }

    if !converged {
        // Re-evaluate f at the final lambda for the best-effort CDF.
        let _ = potential(&lambda, &mut f);
        if !f.iter().all(|v| v.is_finite()) {
            return uniform_fallback(false);
        }
    }

    // Cumulative trapezoid → normalized CDF.
    let mut cdf = vec![0.0f64; GRID_SIZE];
    let mut acc = 0.0;
    for i in 1..GRID_SIZE {
        acc += 0.5 * h * (f[i - 1] + f[i]);
        cdf[i] = acc;
    }
    if acc <= 0.0 || !acc.is_finite() {
        return uniform_fallback(false);
    }
    for c in cdf.iter_mut() {
        *c /= acc;
    }
    SolvedDensity {
        a,
        b,
        cdf,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_sums_of(values: &[f64], k: usize) -> Vec<f64> {
        let mut sums = vec![0.0; k];
        for &v in values {
            let mut p = 1.0;
            for s in sums.iter_mut() {
                *s += p;
                p *= v;
            }
        }
        sums
    }

    #[test]
    fn chebyshev_table_matches_known_polynomials() {
        let c = chebyshev_coefficients(5);
        assert_eq!(c[0], vec![1.0]);
        assert_eq!(c[1], vec![0.0, 1.0]);
        assert_eq!(c[2], vec![-1.0, 0.0, 2.0]); // 2t² − 1
        assert_eq!(c[3], vec![0.0, -3.0, 0.0, 4.0]); // 4t³ − 3t
        assert_eq!(c[4], vec![1.0, 0.0, -8.0, 0.0, 8.0]); // 8t⁴ − 8t² + 1
    }

    #[test]
    fn cholesky_solves_a_known_system() {
        // A = [[4,2],[2,3]], b = [8, 7] → x = [1.1, 1.6]... solve exactly:
        // 4x + 2y = 8; 2x + 3y = 7 → x = 1.25, y = 1.5.
        let a = [4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        let x = cholesky_solve(&l, 2, &[8.0, 7.0]);
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn uniform_distribution_recovers_uniform_quantiles() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let sums = power_sums_of(&values, 10);
        let solved = solve_max_entropy(&sums, 0.0, 1.0);
        assert!(solved.converged());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = solved.quantile(q);
            assert!((est - q).abs() < 0.01, "q={q}: est {est}");
        }
    }

    #[test]
    fn gaussian_like_distribution_is_recovered() {
        // Sum of 12 uniforms ≈ N(6, 1): moments determine it well.
        let mut values = Vec::with_capacity(20_000);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..20_000 {
            let s: f64 = (0..12).map(|_| next()).sum();
            values.push(s);
        }
        let (lo, hi) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let sums = power_sums_of(&values, 12);
        let solved = solve_max_entropy(&sums, lo, hi);
        assert!(solved.converged());
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9] {
            let actual = sorted[(q * (sorted.len() - 1) as f64) as usize];
            let est = solved.quantile(q);
            assert!((est - actual).abs() < 0.1, "q={q}: est {est} vs {actual}");
        }
    }

    #[test]
    fn non_finite_moments_fall_back_gracefully() {
        let sums = vec![100.0, f64::INFINITY, 1.0];
        let solved = solve_max_entropy(&sums, 0.0, 1.0);
        assert!(!solved.converged());
        // Quantiles must still be returned (uniform fallback on [a, b]).
        let est = solved.quantile(0.5);
        assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn inverted_domain_falls_back() {
        let solved = solve_max_entropy(&[10.0, 5.0], 1.0, 0.0);
        assert!(!solved.converged());
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let values: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.001).exp()).collect();
        let (lo, hi) = (values[0], values[values.len() - 1]);
        let sums = power_sums_of(&values, 8);
        let solved = solve_max_entropy(&sums, lo, hi);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = solved.quantile(i as f64 / 100.0);
            assert!(
                v >= prev,
                "CDF inversion not monotone at q={}",
                i as f64 / 100.0
            );
            prev = v;
        }
    }
}
