//! The paper's three evaluation data sets (Section 4.1, Figure 5).
//!
//! * `pareto` — synthetic Pareto(a = 1, b = 1), exactly as in the paper.
//! * `span` — **substitution** for Datadog's proprietary distributed-trace
//!   span durations: "integers in units of nanoseconds ... a wide range of
//!   values (from 100 to 1.9 × 10¹²)". We model it as a mixture of
//!   log-normal bodies (fast RPCs, normal requests, slow batch work) with a
//!   Pareto tail, rounded to integer nanoseconds and clamped to the paper's
//!   exact range. What the experiments exercise — ~10 orders of magnitude
//!   of range and a heavy tail — is reproduced; see DESIGN.md §4.
//! * `power` — **substitution** for the UCI household electric power data
//!   set (global active power in kW, range ≈ [0.076, 11.12], bimodal:
//!   baseline draw plus appliance peaks; Figure 5 right). Modelled as a
//!   log-normal baseline + normal appliance modes, quantized to 1 W
//!   resolution like the original meter data.

use crate::dist::{Distribution, LogNormal, Mixture, Normal, Pareto};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Span durations are clamped to the paper's reported range (ns).
pub const SPAN_MIN_NS: f64 = 100.0;
/// Upper end of the paper's reported span range (ns).
pub const SPAN_MAX_NS: f64 = 1.9e12;
/// Lower end of the UCI power measurements (kW).
pub const POWER_MIN_KW: f64 = 0.076;
/// Upper end of the UCI power measurements (kW).
pub const POWER_MAX_KW: f64 = 11.122;

/// The three paper data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Synthetic Pareto(1, 1).
    Pareto,
    /// Synthetic stand-in for Datadog trace span durations (ns).
    Span,
    /// Synthetic stand-in for UCI household power (kW).
    Power,
}

impl Dataset {
    /// All data sets, in the paper's column order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Pareto, Dataset::Span, Dataset::Power]
    }

    /// Name used in figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Pareto => "pareto",
            Dataset::Span => "span",
            Dataset::Power => "power",
        }
    }

    /// An infinite, seeded value stream.
    pub fn stream(self, seed: u64) -> DataStream {
        DataStream::new(self, seed)
    }

    /// Generate exactly `n` values.
    pub fn generate(self, n: usize, seed: u64) -> Vec<f64> {
        self.stream(seed).take(n).collect()
    }
}

/// The heavy-tailed span-duration mixture (see module docs).
fn span_mixture() -> Mixture {
    Mixture::new(vec![
        // Fast in-process spans: tens of microseconds.
        (
            0.35,
            Box::new(LogNormal::with_median(5.0e4, 1.2)) as Box<dyn Distribution>,
        ),
        // Typical service calls: a few milliseconds.
        (0.35, Box::new(LogNormal::with_median(2.0e6, 1.8))),
        // Slow requests: tens of milliseconds to seconds.
        (0.20, Box::new(LogNormal::with_median(5.0e7, 2.0))),
        // Batch/stuck work: Pareto tail reaching into thousands of seconds.
        (0.10, Box::new(Pareto::new(0.8, 1.0e5))),
    ])
}

/// The bimodal household-power mixture (see module docs).
fn power_mixture() -> Mixture {
    Mixture::new(vec![
        // Standby/baseline draw around 0.3–0.4 kW (the tall left mode of
        // Figure 5 right).
        (
            0.55,
            Box::new(LogNormal::with_median(0.35, 0.35)) as Box<dyn Distribution>,
        ),
        // Ordinary appliance load.
        (0.30, Box::new(Normal::new(1.4, 0.6))),
        // Cooking/heating peaks.
        (0.12, Box::new(Normal::new(3.0, 0.9))),
        // Rare simultaneous heavy loads.
        (0.03, Box::new(Normal::new(5.5, 1.5))),
    ])
}

/// A seeded infinite iterator over one data set.
pub struct DataStream {
    dataset: Dataset,
    dist: Box<dyn Distribution>,
    rng: SmallRng,
}

impl DataStream {
    fn new(dataset: Dataset, seed: u64) -> Self {
        let dist: Box<dyn Distribution> = match dataset {
            Dataset::Pareto => Box::new(Pareto::new(1.0, 1.0)),
            Dataset::Span => Box::new(span_mixture()),
            Dataset::Power => Box::new(power_mixture()),
        };
        Self {
            dataset,
            dist,
            rng: SmallRng::seed_from_u64(seed ^ 0xDD5C_A7C4_0000_0000),
        }
    }

    /// The data set this stream draws from.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }
}

impl Iterator for DataStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let raw = self.dist.sample(&mut self.rng);
        Some(match self.dataset {
            Dataset::Pareto => raw,
            // Integer nanoseconds in the paper's exact range.
            Dataset::Span => raw.clamp(SPAN_MIN_NS, SPAN_MAX_NS).round(),
            // Meter-quantized kilowatts (1 W resolution).
            Dataset::Power => (raw.clamp(POWER_MIN_KW, POWER_MAX_KW) * 1000.0).round() / 1000.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn streams_are_deterministic() {
        for ds in Dataset::all() {
            assert_eq!(ds.generate(1000, 7), ds.generate(1000, 7), "{}", ds.name());
            assert_ne!(ds.generate(1000, 7), ds.generate(1000, 8), "{}", ds.name());
        }
    }

    #[test]
    fn pareto_matches_paper_parameters() {
        // a = b = 1: support [1, ∞), median 2.
        let xs = sorted(Dataset::Pareto.generate(200_001, 1));
        assert!(xs[0] >= 1.0);
        let median = xs[xs.len() / 2];
        assert!((median - 2.0).abs() < 0.05, "median {median}");
        // Figure 5 left: significant mass out to 1e5 at this scale.
        assert!(xs[xs.len() - 1] > 1e4);
    }

    #[test]
    fn span_is_integer_ns_with_paper_range() {
        let xs = Dataset::Span.generate(200_000, 2);
        assert!(
            xs.iter().all(|&x| x.fract() == 0.0),
            "span durations are integers"
        );
        assert!(xs.iter().all(|&x| (SPAN_MIN_NS..=SPAN_MAX_NS).contains(&x)));
        let xs = sorted(xs);
        // Wide range: several orders of magnitude between p1 and max
        // (the paper's span histogram spans 100 .. 1.9e12).
        let p01 = xs[xs.len() / 100];
        let max = xs[xs.len() - 1];
        assert!(max / p01 > 1e5, "span not wide enough: p01 {p01} max {max}");
        // Heavy tail: p99 ≫ median.
        let median = xs[xs.len() / 2];
        let p99 = xs[xs.len() * 99 / 100];
        assert!(
            p99 / median > 50.0,
            "span tail too light: {median} vs {p99}"
        );
    }

    #[test]
    fn power_is_bounded_dense_and_bimodal() {
        let xs = Dataset::Power.generate(200_000, 3);
        assert!(xs
            .iter()
            .all(|&x| (POWER_MIN_KW..=POWER_MAX_KW).contains(&x)));
        // Quantized to 1 W (within f64 representation error of w/1000).
        assert!(xs
            .iter()
            .all(|&x| ((x * 1000.0).round() - x * 1000.0).abs() < 1e-9));
        let xs = sorted(xs);
        let median = xs[xs.len() / 2];
        let p99 = xs[xs.len() * 99 / 100];
        // Short tail: p99 within one order of magnitude of the median
        // (this is the paper's light-tailed contrast data set).
        assert!(
            p99 / median < 20.0,
            "power tail too heavy: {median} vs {p99}"
        );
        // Bimodality: baseline mode below 0.6 kW holds a large share and
        // the appliance regime above 1 kW holds another.
        let low = xs.iter().filter(|&&x| x < 0.6).count() as f64 / xs.len() as f64;
        let high = xs.iter().filter(|&&x| x > 1.0).count() as f64 / xs.len() as f64;
        assert!(low > 0.3, "baseline mode missing ({low})");
        assert!(high > 0.2, "appliance mode missing ({high})");
    }

    #[test]
    fn span_tail_is_no_fatter_than_pareto_guidance() {
        // The paper's size bounds assume the empirical tail is no fatter
        // than Pareto; sanity-check the generator stays within the clamp.
        let xs = sorted(Dataset::Span.generate(500_000, 4));
        assert_eq!(xs[xs.len() - 1].min(SPAN_MAX_NS), xs[xs.len() - 1]);
    }

    #[test]
    fn generate_respects_n() {
        assert_eq!(Dataset::Pareto.generate(0, 1).len(), 0);
        assert_eq!(Dataset::Span.generate(12345, 1).len(), 12345);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::Pareto.name(), "pareto");
        assert_eq!(Dataset::Span.name(), "span");
        assert_eq!(Dataset::Power.name(), "power");
    }
}
