//! Probability distributions for workload generation.
//!
//! Implemented from first principles (inverse-CDF and Box–Muller) on top of
//! `rand`'s uniform source so the workspace needs no extra dependencies and
//! every sampler is obviously reproducible from a seed.

use rand::RngExt;

/// A samplable one-dimensional distribution.
///
/// Object-safe so mixtures can hold heterogeneous components.
pub trait Distribution: Send + Sync {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution; requires `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform requires lo < hi");
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }
}

/// Pareto distribution with CDF `F(t; a, b) = 1 − (b/t)^a` for `t ≥ b`
/// (the paper's Section 3 heavy-tail reference family; the `pareto` data
/// set uses `a = b = 1`).
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Shape `a` (smaller = heavier tail).
    shape: f64,
    /// Scale `b` (minimum value).
    scale: f64,
}

impl Pareto {
    /// Create a Pareto distribution; both parameters must be positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "Pareto parameters must be positive"
        );
        Self { shape, scale }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        // Inverse CDF: b · (1−u)^(−1/a); cap u away from 1 so the result
        // stays finite.
        let u = rng.random::<f64>().min(1.0 - 1e-16);
        self.scale * (1.0 - u).powf(-1.0 / self.shape)
    }
}

/// Exponential distribution with rate λ (used by the paper's Section 3.3
/// size-bound example).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution; `rate` must be positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self { rate }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        let u = rng.random::<f64>().min(1.0 - 1e-16);
        -(1.0 - u).ln() / self.rate
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution; `std_dev` must be positive.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev > 0.0, "std_dev must be positive");
        Self { mean, std_dev }
    }

    /// One standard-normal draw.
    fn standard(rng: &mut dyn rand::Rng) -> f64 {
        // Box–Muller; u1 bounded away from 0 so ln is finite.
        let u1 = rng.random::<f64>().max(1e-300);
        let u2 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))` — the paper's example of a
/// distribution whose logarithm is subexponential (Section 3).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Parameters of the underlying normal (of the logarithm).
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { mu, sigma }
    }

    /// Log-normal with a given median (`exp(mu)`).
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// Weibull distribution (scale, shape) — a useful latency model with a
/// tunable tail between exponential and heavy.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Create a Weibull distribution; both parameters must be positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale > 0.0 && shape > 0.0,
            "Weibull parameters must be positive"
        );
        Self { scale, shape }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        let u = rng.random::<f64>().min(1.0 - 1e-16);
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }
}

/// Weighted mixture of distributions.
pub struct Mixture {
    components: Vec<(f64, Box<dyn Distribution>)>,
    total_weight: f64,
}

impl Mixture {
    /// Build a mixture from `(weight, distribution)` pairs; weights need
    /// not sum to one but must be positive.
    pub fn new(components: Vec<(f64, Box<dyn Distribution>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| *w > 0.0),
            "mixture weights must be positive"
        );
        let total_weight = components.iter().map(|(w, _)| w).sum();
        Self {
            components,
            total_weight,
        }
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        let mut pick = rng.random::<f64>() * self.total_weight;
        for (w, d) in &self.components {
            pick -= w;
            if pick <= 0.0 {
                return d.sample(rng);
            }
        }
        self.components.last().expect("non-empty").1.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn draw(d: &dyn Distribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn uniform_stays_in_range_with_right_mean() {
        let d = Uniform::new(2.0, 6.0);
        let xs = draw(&d, 50_000, 1);
        assert!(xs.iter().all(|&x| (2.0..6.0).contains(&x)));
        assert!((mean(&xs) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::new(0.5); // mean 2
        let xs = draw(&d, 100_000, 2);
        assert!(xs.iter().all(|&x| x >= 0.0));
        assert!((mean(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn pareto_respects_scale_and_median() {
        // Pareto(a=1, b=1): median = b·2^(1/a) = 2.
        let d = Pareto::new(1.0, 1.0);
        let mut xs = draw(&d, 100_001, 3);
        assert!(xs.iter().all(|&x| x >= 1.0));
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 2.0).abs() < 0.05, "median {median}");
        // Heavy tail: the max of 1e5 samples of Pareto(1) is typically ≫ 1e3.
        assert!(xs[xs.len() - 1] > 1e3);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        let xs = draw(&d, 100_000, 4);
        let m = mean(&xs);
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((var - 9.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(50.0, 1.0);
        let mut xs = draw(&d, 100_001, 5);
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median / 50.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(2.0, 1.0); // == Exp(rate 1/2), mean 2
        let xs = draw(&w, 100_000, 6);
        assert!((mean(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn mixture_weights_are_respected() {
        let m = Mixture::new(vec![
            (
                0.8,
                Box::new(Uniform::new(0.0, 1.0)) as Box<dyn Distribution>,
            ),
            (0.2, Box::new(Uniform::new(100.0, 101.0))),
        ]);
        let xs = draw(&m, 100_000, 7);
        let high = xs.iter().filter(|&&x| x > 50.0).count() as f64 / xs.len() as f64;
        assert!((high - 0.2).abs() < 0.01, "high fraction {high}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Pareto::new(1.0, 1.0);
        assert_eq!(draw(&d, 100, 42), draw(&d, 100, 42));
        assert_ne!(draw(&d, 100, 42), draw(&d, 100, 43));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_inverted_range() {
        let _ = Uniform::new(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pareto_rejects_bad_shape() {
        let _ = Pareto::new(0.0, 1.0);
    }
}
