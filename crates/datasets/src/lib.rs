//! # datasets
//!
//! Workload generation for the DDSketch reproduction: the paper's three
//! evaluation data sets (`pareto`, `span`, `power` — Section 4.1) plus the
//! distribution toolkit they are built from. Everything is seeded and
//! deterministic so every figure in the evaluation is exactly
//! reproducible.
//!
//! ```
//! use datasets::Dataset;
//!
//! let values = Dataset::Pareto.generate(1000, 42);
//! assert_eq!(values.len(), 1000);
//! assert!(values.iter().all(|&v| v >= 1.0)); // Pareto(1, 1) support
//! ```

pub mod dist;
pub mod sets;

pub use dist::{Distribution, Exponential, LogNormal, Mixture, Normal, Pareto, Uniform, Weibull};
pub use sets::{DataStream, Dataset, POWER_MAX_KW, POWER_MIN_KW, SPAN_MAX_NS, SPAN_MIN_NS};
