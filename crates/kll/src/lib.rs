//! # KLL
//!
//! The Karnin–Lang–Liberty sketch — the randomized, *fully mergeable*
//! rank-error sketch the DDSketch paper cites as the culmination of the
//! randomized line of work (Section 1.2, reference \[25\]: "a rank-error
//! quantile sketch that uses only O((1/ε)·log log(1/δ)) space ... with
//! full mergeability"). The paper also notes that in practice the
//! relative error of randomized rank sketches on heavy tails is even
//! worse than the deterministic ones — which this implementation lets the
//! extension experiment demonstrate.
//!
//! ## Structure
//!
//! A hierarchy of *compactors*: level `h` holds items each representing
//! `2^h` original values. When a level overflows its capacity
//! (`k·c^(depth−h)`, geometrically decaying toward lower levels with
//! `c = 2/3`), it sorts itself and promotes every other item (random
//! even/odd choice) to level `h+1` — halving the stored items while
//! preserving ranks in expectation.
//!
//! ```
//! use kll::KllSketch;
//! use sketch_core::QuantileSketch;
//!
//! let mut sketch = KllSketch::new(200).unwrap();
//! for i in 0..50_000u32 {
//!     sketch.add(f64::from(i)).unwrap();
//! }
//! let p50 = sketch.quantile(0.5).unwrap();
//! assert!((p50 - 25_000.0).abs() < 1_500.0); // rank error ≈ O(1/k)
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// Capacity decay rate between compactor levels.
const DECAY: f64 = 2.0 / 3.0;
/// Minimum compactor capacity.
const MIN_CAPACITY: usize = 2;

/// The KLL quantile sketch.
#[derive(Debug, Clone)]
pub struct KllSketch {
    /// Top-level capacity parameter; rank error ≈ O(1/k).
    k: usize,
    /// `compactors[h]` holds items of weight `2^h`.
    compactors: Vec<Vec<f64>>,
    count: u64,
    min: f64,
    max: f64,
    rng: SmallRng,
}

impl KllSketch {
    /// Create a sketch with parameter `k ≥ 8` (rank error ≈ O(1/k);
    /// `k = 200` is the common default) and a deterministic seed for the
    /// compaction coin flips.
    pub fn with_seed(k: usize, seed: u64) -> Result<Self, SketchError> {
        if k < 8 {
            return Err(SketchError::InvalidConfig(format!(
                "k must be >= 8, got {k}"
            )));
        }
        Ok(Self {
            k,
            compactors: vec![Vec::new()],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_4A11u64),
        })
    }

    /// Create a sketch with a fixed default seed (deterministic runs).
    pub fn new(k: usize) -> Result<Self, SketchError> {
        Self::with_seed(k, 0)
    }

    /// The capacity parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of compactor levels.
    pub fn num_levels(&self) -> usize {
        self.compactors.len()
    }

    /// Total retained items across all levels.
    pub fn num_retained(&self) -> usize {
        self.compactors.iter().map(Vec::len).sum()
    }

    /// Capacity of level `h` in a hierarchy of current depth.
    fn capacity(&self, level: usize) -> usize {
        let depth = self.compactors.len();
        let exponent = (depth - 1 - level) as i32;
        ((self.k as f64 * DECAY.powi(exponent)).ceil() as usize).max(MIN_CAPACITY)
    }

    /// Compact any levels over capacity, promoting halves upward.
    fn compress(&mut self) {
        let mut level = 0;
        while level < self.compactors.len() {
            if self.compactors[level].len() > self.capacity(level) {
                if level + 1 == self.compactors.len() {
                    self.compactors.push(Vec::new());
                }
                let mut items = std::mem::take(&mut self.compactors[level]);
                items.sort_by(f64::total_cmp);
                let offset = usize::from(self.rng.random::<bool>());
                // Keep every other item at double weight on the next level.
                let promoted: Vec<f64> = items.iter().skip(offset).step_by(2).copied().collect();
                self.compactors[level + 1].extend(promoted);
                // Compacting may overflow the next level; the loop
                // continues upward and re-checks.
            }
            level += 1;
        }
    }

    /// All `(value, weight)` pairs currently retained.
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut items = Vec::with_capacity(self.num_retained());
        for (level, values) in self.compactors.iter().enumerate() {
            let weight = 1u64 << level;
            items.extend(values.iter().map(|&v| (v, weight)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        items
    }
}

impl QuantileSketch for KllSketch {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        self.compactors[0].push(value);
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.compactors[0].len() > self.capacity(0) {
            self.compress();
        }
        Ok(())
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        if q <= 0.0 {
            return Ok(self.min);
        }
        if q >= 1.0 {
            return Ok(self.max);
        }
        let items = self.weighted_items();
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = q * (total.saturating_sub(1)) as f64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum as f64 > target {
                return Ok(v.clamp(self.min, self.max));
            }
        }
        Ok(self.max)
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "KLL"
    }
}

impl MergeableSketch for KllSketch {
    /// Fully mergeable: concatenate compactors level-wise, then compress.
    /// The rank-error guarantee of the merged sketch matches a single
    /// sketch over the union (in distribution) — KLL's distinguishing
    /// feature among rank-error sketches.
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.k != other.k {
            return Err(SketchError::IncompatibleMerge(format!(
                "KLL k mismatch: {} vs {}",
                self.k, other.k
            )));
        }
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (level, values) in other.compactors.iter().enumerate() {
            self.compactors[level].extend_from_slice(values);
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compress();
        Ok(())
    }
}

impl MemoryFootprint for KllSketch {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .compactors
                .iter()
                .map(|c| {
                    c.capacity() * std::mem::size_of::<f64>() + std::mem::size_of::<Vec<f64>>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_of(sorted: &[f64], v: f64) -> f64 {
        sorted.partition_point(|&x| x <= v) as f64 / sorted.len() as f64
    }

    #[test]
    fn construction_validates() {
        assert!(KllSketch::new(4).is_err());
        assert!(KllSketch::new(200).is_ok());
    }

    #[test]
    fn empty_and_error_paths() {
        let mut s = KllSketch::new(200).unwrap();
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
        assert!(s.add(f64::NAN).is_err());
        s.add(3.0).unwrap();
        assert_eq!(s.quantile(0.5).unwrap(), 3.0);
        assert!(s.quantile(1.01).is_err());
    }

    #[test]
    fn small_streams_are_exact() {
        let mut s = KllSketch::new(200).unwrap();
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            s.add(v).unwrap();
        }
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(0.5).unwrap(), 3.0);
        assert_eq!(s.quantile(1.0).unwrap(), 5.0);
    }

    #[test]
    fn rank_accuracy_uniform() {
        let mut s = KllSketch::with_seed(200, 9).unwrap();
        let mut rng = SmallRng::seed_from_u64(10);
        let mut values: Vec<f64> = (0..200_000).map(|_| rng.random::<f64>()).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let est = s.quantile(q).unwrap();
            let rank = rank_of(&values, est);
            // k = 200 → rank error well under 2% w.h.p. at this seed.
            assert!((rank - q).abs() < 0.02, "q={q}: rank {rank}");
        }
    }

    #[test]
    fn space_is_logarithmic() {
        let mut s = KllSketch::with_seed(200, 11).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..1_000_000 {
            s.add(rng.random::<f64>()).unwrap();
        }
        // Retained ≈ Σ k·c^i ≈ 3k plus slack for partially-full levels.
        assert!(
            s.num_retained() < 6 * s.k(),
            "retained {} for k {}",
            s.num_retained(),
            s.k()
        );
        assert!(s.num_levels() >= 10, "1e6 values need ≥ ~10 levels");
    }

    #[test]
    fn total_weight_is_preserved() {
        let mut s = KllSketch::with_seed(64, 13).unwrap();
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..100_000 {
            s.add(rng.random::<f64>()).unwrap();
        }
        let total: u64 = s.weighted_items().iter().map(|&(_, w)| w).sum();
        // Each compaction keeps exactly half the weight when the level
        // length is even and can drop/keep one item's weight when odd, so
        // the total stays within a few per mille of the true count.
        let drift = (total as f64 - s.count() as f64).abs() / s.count() as f64;
        assert!(drift < 0.01, "weight drift {drift}");
    }

    #[test]
    fn merge_matches_union_statistically() {
        let mut a = KllSketch::with_seed(200, 15).unwrap();
        let mut b = KllSketch::with_seed(200, 16).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut values: Vec<f64> = Vec::new();
        for i in 0..100_000 {
            let v = rng.random::<f64>() * 100.0;
            if i % 2 == 0 {
                a.add(v).unwrap();
            } else {
                b.add(v).unwrap();
            }
            values.push(v);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        values.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9] {
            let rank = rank_of(&values, a.quantile(q).unwrap());
            assert!((rank - q).abs() < 0.03, "q={q}: rank {rank} after merge");
        }
        let c = KllSketch::new(100).unwrap();
        assert!(a.merge_from(&c).is_err(), "k mismatch rejected");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut s = KllSketch::with_seed(64, 99).unwrap();
            for i in 0..50_000 {
                s.add(f64::from(i % 1000)).unwrap();
            }
            s
        };
        let (a, b) = (build(), build());
        for k in 0..=10 {
            let q = f64::from(k) / 10.0;
            assert_eq!(a.quantile(q).unwrap(), b.quantile(q).unwrap());
        }
    }

    #[test]
    fn memory_stays_small() {
        use sketch_core::MemoryFootprint;
        let mut s = KllSketch::with_seed(200, 18).unwrap();
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..1_000_000 {
            s.add(rng.random::<f64>()).unwrap();
        }
        assert!(s.memory_bytes() < 64 * 1024, "bytes {}", s.memory_bytes());
    }

    proptest::proptest! {
        #[test]
        fn prop_estimates_within_observed_range(values in proptest::collection::vec(-1e6f64..1e6, 1..400)) {
            let mut s = KllSketch::with_seed(32, 1).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.0, 0.5, 1.0] {
                let est = s.quantile(q).unwrap();
                proptest::prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1]);
            }
        }
    }
}
