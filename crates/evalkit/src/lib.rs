//! # evalkit
//!
//! Evaluation infrastructure for the DDSketch reproduction: the exact
//! quantile oracle all accuracy figures compare against, error metrics
//! matching the paper's definitions, low-noise timing helpers, and the
//! table/CSV output used by every figure binary.

pub mod oracle;
pub mod table;
pub mod timing;

pub use oracle::ExactOracle;
pub use table::{fmt_n, fmt_sci, Table};
pub use timing::{throughput_of, time_min, time_once, Throughput};
