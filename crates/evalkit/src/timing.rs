//! Wall-clock measurement helpers for the speed figures (8 and 9).
//!
//! Criterion handles the microbenchmarks; these helpers are for the figure
//! binaries, which sweep `n` over orders of magnitude and need one number
//! per (sketch, n) cell rather than a full statistical run.

use std::time::Instant;

/// Run `f` once and return elapsed nanoseconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as f64)
}

/// Run `f` `reps` times and return the *minimum* elapsed nanoseconds —
/// the standard low-noise estimator for short deterministic work.
pub fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// A single measurement cell: total time and per-item time.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Items processed.
    pub items: u64,
    /// Total elapsed nanoseconds.
    pub total_ns: f64,
}

impl Throughput {
    /// Nanoseconds per item (the y-axis of Figure 8).
    pub fn ns_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_ns / self.items as f64
        }
    }

    /// Items per second.
    pub fn items_per_sec(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.items as f64 * 1e9 / self.total_ns
        }
    }
}

/// Measure per-item cost of a bulk operation.
pub fn throughput_of(items: u64, f: impl FnOnce()) -> Throughput {
    let ((), total_ns) = time_once(f);
    Throughput { items, total_ns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value_and_positive_time() {
        let (v, ns) = time_once(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ns > 0.0);
    }

    #[test]
    fn time_min_is_not_greater_than_single_runs() {
        let mut acc = 0u64;
        let best = time_min(5, || {
            acc = acc.wrapping_add((0..10_000).sum::<u64>());
        });
        let (_, single) = time_once(|| {
            acc = acc.wrapping_add((0..10_000).sum::<u64>());
        });
        // Not a strict guarantee under scheduling noise, but with 5 reps
        // the minimum should be no larger than ~10× a fresh single run.
        assert!(
            best <= single * 10.0 + 1e6,
            "best {best} vs single {single}"
        );
        assert!(acc > 0);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            items: 1000,
            total_ns: 2_000_000.0,
        };
        assert_eq!(t.ns_per_item(), 2000.0);
        assert_eq!(t.items_per_sec(), 500_000.0);
        let zero = Throughput {
            items: 0,
            total_ns: 100.0,
        };
        assert_eq!(zero.ns_per_item(), 0.0);
    }

    #[test]
    #[should_panic]
    fn time_min_rejects_zero_reps() {
        time_min(0, || {});
    }
}
