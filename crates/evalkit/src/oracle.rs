//! Exact quantile oracle: ground truth for every accuracy figure.

use sketch_core::{lower_quantile_index, rank_of_query};

/// A sorted copy of the full data set, answering exact quantile and rank
/// queries. This is precisely what the paper compares sketches against
/// ("quantiles are famously impossible to compute exactly without holding
/// on to all the data" — the oracle holds all the data).
#[derive(Debug, Clone)]
pub struct ExactOracle {
    sorted: Vec<f64>,
}

impl ExactOracle {
    /// Build from any value collection (NaNs are rejected by debug assert;
    /// the workload generators never produce them).
    pub fn new(mut values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| !v.is_nan()));
        values.sort_by(f64::total_cmp);
        Self { sorted: values }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the oracle holds no data.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The exact lower q-quantile (paper Section 1 definition).
    ///
    /// # Panics
    ///
    /// Panics on an empty oracle.
    pub fn quantile(&self, q: f64) -> f64 {
        self.sorted[lower_quantile_index(q, self.sorted.len())]
    }

    /// The paper's rank `R(v)`: number of elements ≤ `v`.
    pub fn rank(&self, v: f64) -> usize {
        rank_of_query(&self.sorted, v)
    }

    /// The sorted data (borrowed), for histogram-style figures.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Relative error of an estimate for the q-quantile:
    /// `|x̃ − x_q| / |x_q|` (Definition 1). When the true quantile is zero
    /// the absolute error is returned instead.
    pub fn relative_error(&self, q: f64, estimate: f64) -> f64 {
        let actual = self.quantile(q);
        if actual == 0.0 {
            (estimate - actual).abs()
        } else {
            (estimate - actual).abs() / actual.abs()
        }
    }

    /// Rank error of an estimate for the q-quantile, normalized by `n`
    /// (the paper's Definition 2, with `R(v)` = number of elements ≤ `v`
    /// and the one-based target rank `⌊1 + q(n−1)⌋`).
    ///
    /// Two regimes:
    ///
    /// * The estimate **equals stored elements** (a run of duplicates
    ///   occupying one-based ranks `[lo, hi]`): the error is the distance
    ///   from the target to that interval — zero anywhere inside. The
    ///   interval form matters because `x_(r)` is the same value for every
    ///   rank `r` in the run; a sketch must not be penalized for the
    ///   arbitrary choice among ranks whose order statistic it matched
    ///   exactly.
    /// * The estimate is **unseen** (strictly between elements, below the
    ///   minimum, or above the maximum): its rank is simply `R(estimate)`
    ///   and the error is `|R − target|`, per Definition 2. In particular
    ///   an estimate below every element has `R = 0` — a distance of
    ///   `target` ranks, not `target − 1`: the previous implementation
    ///   took a min against the 1-based insertion point here, silently
    ///   crediting unseen estimates with one rank they never covered
    ///   (and reporting a perfect 0 for a below-minimum estimate at
    ///   `q = 0`).
    pub fn rank_error(&self, q: f64, estimate: f64) -> f64 {
        let n = self.sorted.len();
        let target = lower_quantile_index(q, n) as f64 + 1.0; // one-based
        let hi = self.rank(estimate) as f64; // R(estimate), = run top when seen
        let lo = self.sorted.partition_point(|&x| x < estimate) as f64 + 1.0;
        let dist = if lo > hi {
            // Unseen estimate: Definition 2 on R(estimate) directly.
            (hi - target).abs()
        } else if lo <= target && target <= hi {
            0.0
        } else {
            (lo - target).abs().min((hi - target).abs())
        };
        dist / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_paper_definition() {
        let o = ExactOracle::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(o.quantile(0.0), 1.0);
        assert_eq!(o.quantile(0.5), 3.0);
        assert_eq!(o.quantile(1.0), 5.0);
        // ⌊1 + 0.75·4⌋ = 4 → x_(4) = 4.0
        assert_eq!(o.quantile(0.75), 4.0);
    }

    #[test]
    fn relative_error_definition() {
        let o = ExactOracle::new(vec![1.0, 2.0, 3.0, 4.0]);
        // q = 1 → actual 4.0; estimate 4.4 → 10%.
        assert!((o.relative_error(1.0, 4.4) - 0.1).abs() < 1e-12);
        assert_eq!(o.relative_error(1.0, 4.0), 0.0);
    }

    #[test]
    fn relative_error_at_zero_quantile_is_absolute() {
        let o = ExactOracle::new(vec![0.0, 0.0, 1.0]);
        assert_eq!(o.relative_error(0.0, 0.25), 0.25);
    }

    #[test]
    fn rank_error_uses_interval_semantics() {
        let o = ExactOracle::new(vec![1.0, 2.0, 2.0, 2.0, 3.0]);
        // Estimate 2.0 covers ranks 2..=4; any target inside is exact.
        assert_eq!(o.rank_error(0.5, 2.0), 0.0); // target 3
        assert_eq!(o.rank_error(0.25, 2.0), 0.0); // target 2
                                                  // Estimate 3.0 has rank 5; target for q=0 is 1 → error 4/5.
        assert!((o.rank_error(0.0, 3.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rank_error_for_unseen_values() {
        let o = ExactOracle::new(vec![10.0, 20.0, 30.0]);
        // Estimate 15.0 has R = 1, so it is exact for q = 0 (target 1)…
        assert_eq!(o.rank_error(0.0, 15.0), 0.0);
        // …but for q = 1 (target rank 3) Definition 2 gives |1 − 3| = 2
        // ranks → 2/3 (the pre-fix interval min credited it with rank 2,
        // reporting 1/3).
        assert!((o.rank_error(1.0, 15.0) - 2.0 / 3.0).abs() < 1e-12);
        // A spot-on estimate has zero error.
        assert_eq!(o.rank_error(0.0, 10.0), 0.0);
    }

    #[test]
    fn rank_error_at_the_boundaries_follows_definition_2() {
        // Table-driven audit of the below-min / above-max / between-bins
        // edges: (data, q, estimate, expected rank distance). `R` is the
        // number of elements ≤ estimate; unseen estimates score
        // |R − ⌊1+q(n−1)⌋| exactly — no phantom insertion-point credit.
        let cases: &[(&[f64], f64, f64, f64)] = &[
            // Below every element: R = 0. Regression — the pre-fix code
            // returned 0.0 for q = 0 here.
            (&[10.0, 20.0, 30.0], 0.0, 5.0, 1.0),
            (&[10.0, 20.0, 30.0], 0.5, 5.0, 2.0),
            (&[10.0, 20.0, 30.0], 1.0, 5.0, 3.0),
            // Above every element: R = n; exact for q = 1.
            (&[10.0, 20.0, 30.0], 1.0, 35.0, 0.0),
            (&[10.0, 20.0, 30.0], 0.5, 35.0, 1.0),
            (&[10.0, 20.0, 30.0], 0.0, 35.0, 2.0),
            // Strictly between elements: R = #{≤ estimate}.
            (&[10.0, 20.0, 30.0], 0.0, 15.0, 0.0),
            (&[10.0, 20.0, 30.0], 0.5, 15.0, 1.0),
            (&[10.0, 20.0, 30.0], 1.0, 25.0, 1.0),
            // Equal to the extremes (seen): interval semantics.
            (&[10.0, 20.0, 30.0], 0.0, 10.0, 0.0),
            (&[10.0, 20.0, 30.0], 1.0, 30.0, 0.0),
            (&[10.0, 20.0, 30.0], 1.0, 10.0, 2.0),
            // Duplicate run at the minimum covers ranks 1..=2.
            (&[10.0, 10.0, 30.0], 0.0, 10.0, 0.0),
            (&[10.0, 10.0, 30.0], 0.5, 10.0, 0.0),
            (&[10.0, 10.0, 30.0], 1.0, 10.0, 1.0),
            // Below a duplicate-run minimum is still unseen: R = 0.
            (&[10.0, 10.0, 30.0], 0.0, 5.0, 1.0),
            // Single element.
            (&[42.0], 0.0, 42.0, 0.0),
            (&[42.0], 1.0, 41.0, 1.0),
            (&[42.0], 1.0, 43.0, 0.0),
        ];
        for &(data, q, estimate, expected_ranks) in cases {
            let o = ExactOracle::new(data.to_vec());
            let expected = expected_ranks / data.len() as f64;
            let got = o.rank_error(q, estimate);
            assert!(
                (got - expected).abs() < 1e-12,
                "data {data:?}, q {q}, estimate {estimate}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_oracle_panics_on_quantile() {
        let o = ExactOracle::new(vec![]);
        let _ = o.quantile(0.5);
    }
}
