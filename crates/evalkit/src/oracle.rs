//! Exact quantile oracle: ground truth for every accuracy figure.

use sketch_core::{lower_quantile_index, rank_of_query};

/// A sorted copy of the full data set, answering exact quantile and rank
/// queries. This is precisely what the paper compares sketches against
/// ("quantiles are famously impossible to compute exactly without holding
/// on to all the data" — the oracle holds all the data).
#[derive(Debug, Clone)]
pub struct ExactOracle {
    sorted: Vec<f64>,
    /// Parallel to `sorted`. Empty ⇔ every weight is 1 (the unweighted
    /// fast path, which keeps [`ExactOracle::new`]-built oracles exactly
    /// as cheap as before the weighted plane existed).
    weights: Vec<f64>,
}

impl ExactOracle {
    /// Build from any value collection (NaNs are rejected by debug assert;
    /// the workload generators never produce them).
    pub fn new(mut values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| !v.is_nan()));
        values.sort_by(f64::total_cmp);
        Self {
            sorted: values,
            weights: Vec::new(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the oracle holds no data.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The exact lower q-quantile (paper Section 1 definition).
    ///
    /// # Panics
    ///
    /// Panics on an empty oracle.
    pub fn quantile(&self, q: f64) -> f64 {
        self.sorted[lower_quantile_index(q, self.sorted.len())]
    }

    /// The paper's rank `R(v)`: number of elements ≤ `v`.
    pub fn rank(&self, v: f64) -> usize {
        rank_of_query(&self.sorted, v)
    }

    /// The sorted data (borrowed), for histogram-style figures.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Relative error of an estimate for the q-quantile:
    /// `|x̃ − x_q| / |x_q|` (Definition 1). When the true quantile is zero
    /// the absolute error is returned instead.
    pub fn relative_error(&self, q: f64, estimate: f64) -> f64 {
        let actual = self.quantile(q);
        if actual == 0.0 {
            (estimate - actual).abs()
        } else {
            (estimate - actual).abs() / actual.abs()
        }
    }

    /// Rank error of an estimate for the q-quantile, normalized by `n`
    /// (the paper's Definition 2, with `R(v)` = number of elements ≤ `v`
    /// and the one-based target rank `⌊1 + q(n−1)⌋`).
    ///
    /// Two regimes:
    ///
    /// * The estimate **equals stored elements** (a run of duplicates
    ///   occupying one-based ranks `[lo, hi]`): the error is the distance
    ///   from the target to that interval — zero anywhere inside. The
    ///   interval form matters because `x_(r)` is the same value for every
    ///   rank `r` in the run; a sketch must not be penalized for the
    ///   arbitrary choice among ranks whose order statistic it matched
    ///   exactly.
    /// * The estimate is **unseen** (strictly between elements, below the
    ///   minimum, or above the maximum): its rank is simply `R(estimate)`
    ///   and the error is `|R − target|`, per Definition 2. In particular
    ///   an estimate below every element has `R = 0` — a distance of
    ///   `target` ranks, not `target − 1`: the previous implementation
    ///   took a min against the 1-based insertion point here, silently
    ///   crediting unseen estimates with one rank they never covered
    ///   (and reporting a perfect 0 for a below-minimum estimate at
    ///   `q = 0`).
    pub fn rank_error(&self, q: f64, estimate: f64) -> f64 {
        let n = self.sorted.len();
        let target = lower_quantile_index(q, n) as f64 + 1.0; // one-based
        let hi = self.rank(estimate) as f64; // R(estimate), = run top when seen
        let lo = self.sorted.partition_point(|&x| x < estimate) as f64 + 1.0;
        let dist = if lo > hi {
            // Unseen estimate: Definition 2 on R(estimate) directly.
            (hi - target).abs()
        } else if lo <= target && target <= hi {
            0.0
        } else {
            (lo - target).abs().min((hi - target).abs())
        };
        dist / n as f64
    }

    // ---- the weighted count plane ------------------------------------

    /// Insert one value at weight 1 (order-insensitive — the oracle keeps
    /// itself sorted).
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Insert one value carrying an arbitrary positive `f64` weight —
    /// ground truth for pre-aggregated or decayed submissions on the
    /// weighted count plane.
    ///
    /// Weights must be finite and strictly positive (the same domain the
    /// sketches' `add_with_count` accepts). Unit weights keep the oracle
    /// on its unweighted fast path; the first non-unit weight materializes
    /// the parallel weight vector.
    ///
    /// # Panics
    ///
    /// Panics on NaN values and on non-finite or non-positive weights.
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        assert!(!value.is_nan(), "oracle value must not be NaN");
        assert!(
            weight.is_finite() && weight > 0.0,
            "oracle weight must be finite and positive, got {weight}"
        );
        let weighted_mode = !self.weights.is_empty() || weight != 1.0;
        if weighted_mode && self.weights.is_empty() {
            self.weights = vec![1.0; self.sorted.len()];
        }
        let at = self
            .sorted
            .partition_point(|x| x.total_cmp(&value) == std::cmp::Ordering::Less);
        self.sorted.insert(at, value);
        if weighted_mode {
            self.weights.insert(at, weight);
        }
    }

    /// Total stored weight `W` (= `n` while every weight is 1).
    pub fn total_weight(&self) -> f64 {
        if self.weights.is_empty() {
            self.sorted.len() as f64
        } else {
            self.weights.iter().sum()
        }
    }

    /// The weighted rank `R(v)`: total weight of elements ≤ `v` — the
    /// paper's `R(v)` with multiplicities generalized to `f64` weights.
    pub fn weighted_rank(&self, v: f64) -> f64 {
        let below_or_equal = self
            .sorted
            .partition_point(|x| x.total_cmp(&v) != std::cmp::Ordering::Greater);
        if self.weights.is_empty() {
            below_or_equal as f64
        } else {
            self.weights[..below_or_equal].iter().sum()
        }
    }

    /// The exact weighted lower q-quantile: the value whose cumulative
    /// weight first exceeds the target rank `q·(W − 1)` — the same
    /// generalization the weighted sketches walk, so with unit weights
    /// this is bit-identical to [`ExactOracle::quantile`].
    ///
    /// # Panics
    ///
    /// Panics on an empty oracle.
    pub fn weighted_quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "empty oracle has no quantiles");
        if self.weights.is_empty() {
            return self.quantile(q);
        }
        let target = q.clamp(0.0, 1.0) * (self.total_weight() - 1.0).max(0.0);
        let mut cum = 0.0;
        for (v, w) in self.sorted.iter().zip(&self.weights) {
            cum += w;
            if cum > target {
                return *v;
            }
        }
        *self.sorted.last().expect("non-empty")
    }

    /// Definition-2 rank error over **weighted** ranks, normalized by the
    /// total weight `W`. An estimate of weight `w` (`lo` = weight
    /// strictly below it, `hi = lo + w` = `R(estimate)`) covers the
    /// achievable one-based ranks `[lo + min(1, w), hi]`; the target is
    /// the continuous rank `1 + q·(W − 1)` and the error is the distance
    /// from the target to that interval. Three regimes fall out:
    ///
    /// * **unseen** (`w = 0`): the interval collapses to `R(estimate)`
    ///   and the error is `|R − target|`, exactly Definition 2;
    /// * **integral weights**: weight `k` behaves identically to `k`
    ///   replicated copies, so scores agree with [`ExactOracle::rank_error`]
    ///   over the replicated multiset (at integral targets — the weighted
    ///   target takes no floor, the price of a count domain where "rank"
    ///   is no longer an integer);
    /// * **fractional weights** (`w < 1`): the value is an atom of mass
    ///   `w` at rank `hi`, its interval credit shrinking with it. A
    ///   consequence: [`ExactOracle::weighted_quantile`]'s own answer
    ///   scores strictly under `1/W` here rather than exactly zero when
    ///   the chosen value carries less than one unit of weight.
    pub fn weighted_rank_error(&self, q: f64, estimate: f64) -> f64 {
        let w = self.total_weight();
        let target = 1.0 + q.clamp(0.0, 1.0) * (w - 1.0).max(0.0);
        let below = self
            .sorted
            .partition_point(|x| x.total_cmp(&estimate) == std::cmp::Ordering::Less);
        let lo = if self.weights.is_empty() {
            below as f64
        } else {
            self.weights[..below].iter().sum()
        };
        let hi = self.weighted_rank(estimate);
        let first = lo + (hi - lo).min(1.0);
        let dist = if target < first {
            first - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        };
        dist / w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_paper_definition() {
        let o = ExactOracle::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(o.quantile(0.0), 1.0);
        assert_eq!(o.quantile(0.5), 3.0);
        assert_eq!(o.quantile(1.0), 5.0);
        // ⌊1 + 0.75·4⌋ = 4 → x_(4) = 4.0
        assert_eq!(o.quantile(0.75), 4.0);
    }

    #[test]
    fn relative_error_definition() {
        let o = ExactOracle::new(vec![1.0, 2.0, 3.0, 4.0]);
        // q = 1 → actual 4.0; estimate 4.4 → 10%.
        assert!((o.relative_error(1.0, 4.4) - 0.1).abs() < 1e-12);
        assert_eq!(o.relative_error(1.0, 4.0), 0.0);
    }

    #[test]
    fn relative_error_at_zero_quantile_is_absolute() {
        let o = ExactOracle::new(vec![0.0, 0.0, 1.0]);
        assert_eq!(o.relative_error(0.0, 0.25), 0.25);
    }

    #[test]
    fn rank_error_uses_interval_semantics() {
        let o = ExactOracle::new(vec![1.0, 2.0, 2.0, 2.0, 3.0]);
        // Estimate 2.0 covers ranks 2..=4; any target inside is exact.
        assert_eq!(o.rank_error(0.5, 2.0), 0.0); // target 3
        assert_eq!(o.rank_error(0.25, 2.0), 0.0); // target 2
                                                  // Estimate 3.0 has rank 5; target for q=0 is 1 → error 4/5.
        assert!((o.rank_error(0.0, 3.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rank_error_for_unseen_values() {
        let o = ExactOracle::new(vec![10.0, 20.0, 30.0]);
        // Estimate 15.0 has R = 1, so it is exact for q = 0 (target 1)…
        assert_eq!(o.rank_error(0.0, 15.0), 0.0);
        // …but for q = 1 (target rank 3) Definition 2 gives |1 − 3| = 2
        // ranks → 2/3 (the pre-fix interval min credited it with rank 2,
        // reporting 1/3).
        assert!((o.rank_error(1.0, 15.0) - 2.0 / 3.0).abs() < 1e-12);
        // A spot-on estimate has zero error.
        assert_eq!(o.rank_error(0.0, 10.0), 0.0);
    }

    #[test]
    fn rank_error_at_the_boundaries_follows_definition_2() {
        // Table-driven audit of the below-min / above-max / between-bins
        // edges: (data, q, estimate, expected rank distance). `R` is the
        // number of elements ≤ estimate; unseen estimates score
        // |R − ⌊1+q(n−1)⌋| exactly — no phantom insertion-point credit.
        let cases: &[(&[f64], f64, f64, f64)] = &[
            // Below every element: R = 0. Regression — the pre-fix code
            // returned 0.0 for q = 0 here.
            (&[10.0, 20.0, 30.0], 0.0, 5.0, 1.0),
            (&[10.0, 20.0, 30.0], 0.5, 5.0, 2.0),
            (&[10.0, 20.0, 30.0], 1.0, 5.0, 3.0),
            // Above every element: R = n; exact for q = 1.
            (&[10.0, 20.0, 30.0], 1.0, 35.0, 0.0),
            (&[10.0, 20.0, 30.0], 0.5, 35.0, 1.0),
            (&[10.0, 20.0, 30.0], 0.0, 35.0, 2.0),
            // Strictly between elements: R = #{≤ estimate}.
            (&[10.0, 20.0, 30.0], 0.0, 15.0, 0.0),
            (&[10.0, 20.0, 30.0], 0.5, 15.0, 1.0),
            (&[10.0, 20.0, 30.0], 1.0, 25.0, 1.0),
            // Equal to the extremes (seen): interval semantics.
            (&[10.0, 20.0, 30.0], 0.0, 10.0, 0.0),
            (&[10.0, 20.0, 30.0], 1.0, 30.0, 0.0),
            (&[10.0, 20.0, 30.0], 1.0, 10.0, 2.0),
            // Duplicate run at the minimum covers ranks 1..=2.
            (&[10.0, 10.0, 30.0], 0.0, 10.0, 0.0),
            (&[10.0, 10.0, 30.0], 0.5, 10.0, 0.0),
            (&[10.0, 10.0, 30.0], 1.0, 10.0, 1.0),
            // Below a duplicate-run minimum is still unseen: R = 0.
            (&[10.0, 10.0, 30.0], 0.0, 5.0, 1.0),
            // Single element.
            (&[42.0], 0.0, 42.0, 0.0),
            (&[42.0], 1.0, 41.0, 1.0),
            (&[42.0], 1.0, 43.0, 0.0),
        ];
        for &(data, q, estimate, expected_ranks) in cases {
            let o = ExactOracle::new(data.to_vec());
            let expected = expected_ranks / data.len() as f64;
            let got = o.rank_error(q, estimate);
            assert!(
                (got - expected).abs() < 1e-12,
                "data {data:?}, q {q}, estimate {estimate}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_oracle_panics_on_quantile() {
        let o = ExactOracle::new(vec![]);
        let _ = o.quantile(0.5);
    }

    #[test]
    fn unit_weights_stay_bit_identical_to_the_unweighted_oracle() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0, 3.0, -1.0, 0.0];
        let plain = ExactOracle::new(values.to_vec());
        let mut incremental = ExactOracle::new(vec![]);
        for v in values {
            incremental.add(v);
        }
        assert_eq!(incremental.total_weight(), values.len() as f64);
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            assert_eq!(
                incremental.weighted_quantile(q).to_bits(),
                plain.quantile(q).to_bits(),
                "q={q}"
            );
        }
        for est in [-2.0, -1.0, 0.5, 3.0, 4.5, 9.0] {
            assert_eq!(incremental.weighted_rank(est), plain.rank(est) as f64);
        }
    }

    #[test]
    fn integral_weights_equal_replicated_values() {
        // Weight k ≡ k copies: quantiles and rank errors must agree with
        // an oracle over the replicated multiset at every q whose target
        // rank is integral (where the continuous and floored targets
        // coincide).
        let entries = [(2.0, 3.0), (7.0, 1.0), (4.0, 5.0), (-1.0, 2.0)];
        let mut weighted = ExactOracle::new(vec![]);
        let mut replicated = Vec::new();
        for (v, k) in entries {
            weighted.add_weighted(v, k);
            for _ in 0..k as usize {
                replicated.push(v);
            }
        }
        let plain = ExactOracle::new(replicated.clone());
        let n = replicated.len(); // 11 → q·(n−1) integral at tenths
        assert_eq!(weighted.total_weight(), n as f64);
        for i in 0..=(n - 1) {
            let q = i as f64 / (n - 1) as f64;
            assert_eq!(
                weighted.weighted_quantile(q).to_bits(),
                plain.quantile(q).to_bits(),
                "q={q}"
            );
            for est in [-3.0, -1.0, 0.0, 2.0, 3.0, 4.0, 7.0, 8.0] {
                assert!(
                    (weighted.weighted_rank_error(q, est) - plain.rank_error(q, est)).abs() < 1e-12,
                    "q={q} est={est}: weighted {} vs replicated {}",
                    weighted.weighted_rank_error(q, est),
                    plain.rank_error(q, est)
                );
            }
        }
    }

    #[test]
    fn fractional_weights_walk_the_cumulative_weight() {
        let mut o = ExactOracle::new(vec![]);
        o.add_weighted(1.0, 1.0);
        o.add_weighted(2.0, 3.0);
        assert_eq!(o.total_weight(), 4.0);
        // Targets q·(W−1): 0 → 1.0 (cum 1 > 0), anything past the first
        // unit of weight lands on 2.0.
        assert_eq!(o.weighted_quantile(0.0), 1.0);
        assert_eq!(o.weighted_quantile(0.5), 2.0); // target 1.5
        assert_eq!(o.weighted_quantile(1.0), 2.0);
        assert_eq!(o.weighted_rank(1.5), 1.0);
        assert_eq!(o.weighted_rank(2.0), 4.0);

        // Rank error: estimate 2.0 (lo=1, weight 3) covers achievable
        // ranks [2, 4].
        assert_eq!(o.weighted_rank_error(0.5, 2.0), 0.0); // target 2.5 ∈ [2,4]
        assert_eq!(o.weighted_rank_error(1.0, 2.0), 0.0); // target 4.0 ∈ [2,4]
        assert_eq!(o.weighted_rank_error(0.0, 1.0), 0.0); // target 1.0 ∈ [1,1]
                                                          // Unseen estimate 1.5 has R = 1; q=1 target 4 → 3 ranks off, /W.
        assert!((o.weighted_rank_error(1.0, 1.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_oracle_scores_decayed_streams() {
        // An exponentially decayed stream: late values keep full weight,
        // old ones fade. The median of the decayed multiset must lean
        // toward the recent values — and the oracle's own quantile must
        // score zero rank error against itself.
        let mut o = ExactOracle::new(vec![]);
        for age in 0..20 {
            let weight = 0.8_f64.powi(age);
            let value = if age < 10 { 100.0 } else { 1.0 };
            o.add_weighted(value, weight);
        }
        let median = o.weighted_quantile(0.5);
        assert_eq!(median, 100.0, "recent heavy values dominate");
        // The oracle's own quantile always scores under one unit of rank
        // (exactly zero only when the chosen value carries ≥ 1 weight).
        let bound = 1.0 / o.total_weight() + 1e-12;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let err = o.weighted_rank_error(q, o.weighted_quantile(q));
            assert!(err < bound, "q={q}: self-score {err} ≥ {bound}");
        }
    }

    #[test]
    #[should_panic]
    fn negative_weights_are_rejected() {
        let mut o = ExactOracle::new(vec![]);
        o.add_weighted(1.0, -0.5);
    }
}
