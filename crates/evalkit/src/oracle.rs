//! Exact quantile oracle: ground truth for every accuracy figure.

use sketch_core::{lower_quantile_index, rank_of_query};

/// A sorted copy of the full data set, answering exact quantile and rank
/// queries. This is precisely what the paper compares sketches against
/// ("quantiles are famously impossible to compute exactly without holding
/// on to all the data" — the oracle holds all the data).
#[derive(Debug, Clone)]
pub struct ExactOracle {
    sorted: Vec<f64>,
}

impl ExactOracle {
    /// Build from any value collection (NaNs are rejected by debug assert;
    /// the workload generators never produce them).
    pub fn new(mut values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| !v.is_nan()));
        values.sort_by(f64::total_cmp);
        Self { sorted: values }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the oracle holds no data.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The exact lower q-quantile (paper Section 1 definition).
    ///
    /// # Panics
    ///
    /// Panics on an empty oracle.
    pub fn quantile(&self, q: f64) -> f64 {
        self.sorted[lower_quantile_index(q, self.sorted.len())]
    }

    /// The paper's rank `R(v)`: number of elements ≤ `v`.
    pub fn rank(&self, v: f64) -> usize {
        rank_of_query(&self.sorted, v)
    }

    /// The sorted data (borrowed), for histogram-style figures.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Relative error of an estimate for the q-quantile:
    /// `|x̃ − x_q| / |x_q|` (Definition 1). When the true quantile is zero
    /// the absolute error is returned instead.
    pub fn relative_error(&self, q: f64, estimate: f64) -> f64 {
        let actual = self.quantile(q);
        if actual == 0.0 {
            (estimate - actual).abs()
        } else {
            (estimate - actual).abs() / actual.abs()
        }
    }

    /// Rank error of an estimate for the q-quantile, normalized by `n`:
    /// `min over the estimate's rank interval of |R − ⌊1+q(n−1)⌋| / n`.
    ///
    /// The interval form matters because an estimate falling inside a run
    /// of duplicates has every rank in the run; sketches must not be
    /// penalized for the arbitrary choice.
    pub fn rank_error(&self, q: f64, estimate: f64) -> f64 {
        let n = self.sorted.len();
        let target = lower_quantile_index(q, n) as f64 + 1.0; // one-based
        let hi = self.rank(estimate) as f64;
        let lo = self.sorted.partition_point(|&x| x < estimate) as f64 + 1.0;
        let dist = if lo <= target && target <= hi {
            0.0
        } else {
            (lo - target).abs().min((hi - target).abs())
        };
        dist / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_paper_definition() {
        let o = ExactOracle::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(o.quantile(0.0), 1.0);
        assert_eq!(o.quantile(0.5), 3.0);
        assert_eq!(o.quantile(1.0), 5.0);
        // ⌊1 + 0.75·4⌋ = 4 → x_(4) = 4.0
        assert_eq!(o.quantile(0.75), 4.0);
    }

    #[test]
    fn relative_error_definition() {
        let o = ExactOracle::new(vec![1.0, 2.0, 3.0, 4.0]);
        // q = 1 → actual 4.0; estimate 4.4 → 10%.
        assert!((o.relative_error(1.0, 4.4) - 0.1).abs() < 1e-12);
        assert_eq!(o.relative_error(1.0, 4.0), 0.0);
    }

    #[test]
    fn relative_error_at_zero_quantile_is_absolute() {
        let o = ExactOracle::new(vec![0.0, 0.0, 1.0]);
        assert_eq!(o.relative_error(0.0, 0.25), 0.25);
    }

    #[test]
    fn rank_error_uses_interval_semantics() {
        let o = ExactOracle::new(vec![1.0, 2.0, 2.0, 2.0, 3.0]);
        // Estimate 2.0 covers ranks 2..=4; any target inside is exact.
        assert_eq!(o.rank_error(0.5, 2.0), 0.0); // target 3
        assert_eq!(o.rank_error(0.25, 2.0), 0.0); // target 2
                                                  // Estimate 3.0 has rank 5; target for q=0 is 1 → error 4/5.
        assert!((o.rank_error(0.0, 3.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rank_error_for_unseen_values() {
        let o = ExactOracle::new(vec![10.0, 20.0, 30.0]);
        // Estimate 15.0 sits between ranks 1 and 2, so it is exact for
        // q = 0 (target rank 1)…
        assert_eq!(o.rank_error(0.0, 15.0), 0.0);
        // …but for q = 1 (target rank 3) the distance is 1 rank → 1/3.
        assert!((o.rank_error(1.0, 15.0) - 1.0 / 3.0).abs() < 1e-12);
        // A spot-on estimate has zero error.
        assert_eq!(o.rank_error(0.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_oracle_panics_on_quantile() {
        let o = ExactOracle::new(vec![]);
        let _ = o.quantile(0.5);
    }
}
