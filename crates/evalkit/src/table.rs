//! Plain-text table and CSV output for the figure binaries.
//!
//! Every figure binary prints a fixed-width table (the "same rows/series
//! the paper reports") and can optionally persist a CSV next to it so the
//! series can be re-plotted.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned fixed-width text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.max(4)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize as CSV (headers + rows, RFC-4180-style quoting for cells
    /// containing separators).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float in short scientific-ish notation suited to the paper's
/// log-scale figures.
pub fn fmt_sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !v.is_finite() {
        format!("{v}")
    } else {
        let a = v.abs();
        if (0.001..100_000.0).contains(&a) {
            if a >= 100.0 {
                format!("{v:.1}")
            } else {
                format!("{v:.4}")
            }
        } else {
            format!("{v:.3e}")
        }
    }
}

/// Format a count like `1000000` as `1e6`-style shorthand when exact.
pub fn fmt_n(n: u64) -> String {
    if n >= 1000 && n.is_power_of_two() {
        return n.to_string();
    }
    let mut p = 0u32;
    let mut v = n;
    while v >= 10 && v.is_multiple_of(10) {
        v /= 10;
        p += 1;
    }
    if v == 1 && p >= 3 {
        format!("1e{p}")
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["10".into(), "1.5".into()]);
        t.row(vec!["100000".into(), "2.25".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows (plus title line).
        assert_eq!(lines.len(), 5);
        // Right-aligned: both data rows end at the same column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new("demo", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = Table::new("demo", &["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("evalkit_test_csv");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(fmt_sci(0.0), "0");
        assert_eq!(fmt_sci(1234.5), "1234.5");
        assert!(fmt_sci(1.5e9).contains('e'));
        assert!(fmt_sci(2e-9).contains('e'));
        assert_eq!(fmt_sci(0.5), "0.5000");
    }

    #[test]
    fn n_formatting() {
        assert_eq!(fmt_n(1000), "1e3");
        assert_eq!(fmt_n(100_000_000), "1e8");
        assert_eq!(fmt_n(123), "123");
        assert_eq!(fmt_n(1500), "1500");
    }
}
