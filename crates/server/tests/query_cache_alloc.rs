//! Allocation accounting for the epoch-cached read plane.
//!
//! A steady-state cached query — same line, no ingest since the answer
//! was computed — must be **zero** allocations: the answer cache is
//! probed before the parser (which would allocate for the uppercased
//! verb and argument vectors), freshness is a handful of relaxed atomic
//! loads, and the rendered response is one `memcpy` into the caller's
//! reused output buffer.
//!
//! Kept as the only test in this integration binary (like the workspace
//! `zero_alloc*.rs` suites) so no concurrent test's allocations can
//! bleed into the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sketchd::{AgentSender, Bind, IoModel, ServerConfig, ServerHandle};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count the allocations `f` performs.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_cached_queries_do_not_allocate() {
    let server = ServerHandle::spawn(
        &Bind::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            io_model: IoModel::Threaded,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Ingest a few frames over a real socket, then drain.
    let mut sketch = ddsketch::SketchConfig::dense_collapsing(0.01, 2048)
        .build()
        .unwrap();
    for k in 1..=64u32 {
        sketch.add(f64::from(k) * 0.5).unwrap();
    }
    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
    for i in 0..8u64 {
        agent.send("api.latency", i * 10, &sketch).unwrap();
    }
    agent.close().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_ingested < 8 {
        assert!(Instant::now() < deadline, "frames never absorbed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut out = Vec::new();
    assert!(server.execute("SYNC", &mut out));
    // Let the agent's connection thread finish winding down so nothing
    // else is live while the counter runs.
    std::thread::sleep(Duration::from_millis(100));

    for line in [
        "QUANTILE acme 0.5 0.9 0.99",
        "WQUANTILE acme 0.5 0.99",
        "COUNT acme",
        "WCOUNT acme",
        "SERIES acme api.latency 0.5",
    ] {
        // First call computes and caches; second re-serves and sizes
        // the output buffer.
        out.clear();
        assert!(server.execute(line, &mut out));
        assert!(
            out.starts_with(b"+OK"),
            "{line}: {:?}",
            String::from_utf8_lossy(&out)
        );
        out.clear();
        assert!(server.execute(line, &mut out));

        let allocs = allocations_during(|| {
            for _ in 0..256 {
                out.clear();
                assert!(server.execute(line, &mut out));
            }
        });
        assert_eq!(allocs, 0, "steady-state cached query allocated: {line}");
    }

    let stats = server.stats();
    assert!(
        stats.query_cache_hits >= 5 * 257,
        "repeats should all hit the cache ({} hits)",
        stats.query_cache_hits
    );
    server.shutdown().unwrap();
}
