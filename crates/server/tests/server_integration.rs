//! End-to-end integration tests for `sketchd` over real loopback
//! sockets: concurrent agent fleets with corrupt-frame injection and
//! mid-stream disconnects, backpressure, checkpoint/restore through the
//! wire, the server-kill reconnect regression, and protocol errors.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ddsketch::{AnyDDSketch, SketchConfig};
use sketchd::{
    AgentSender, Bind, IoModel, QueryClient, ReadPlane, RetryPolicy, ServerConfig, ServerHandle,
};

/// 2048 bins is comfortably above what the value ranges below populate,
/// so no collapsing happens and bit-identity claims stay about the
/// merge plumbing, not collapse order.
fn cfg() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

fn server_config_for(io_model: IoModel) -> ServerConfig {
    ServerConfig {
        sketch: cfg(),
        window_secs: 10,
        fold_threshold: 8,
        shards_per_tenant: 4,
        staging_bound: 64,
        read_timeout: Duration::from_millis(10),
        io_model,
        ..ServerConfig::default()
    }
}

fn server_config() -> ServerConfig {
    server_config_for(IoModel::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sketchd-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build one agent-side per-window sketch and return its encoded bytes.
fn payload(values: impl IntoIterator<Item = f64>) -> Vec<u8> {
    let mut sketch = cfg().build().unwrap();
    for v in values {
        sketch.add(v).unwrap();
    }
    sketch.encode()
}

/// `AgentSender::close` returns once the frames are flushed to the
/// kernel, not once the server has *read* them — so tests wait until the
/// server accounts for every frame (absorbed + rejected) before
/// asserting on state.
fn await_frames(client: &mut QueryClient, expect: u64) -> sketchd::StatsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().unwrap();
        let seen = stats.frames_ingested + stats.frames_rejected;
        if seen >= expect {
            assert_eq!(seen, expect, "more frames accounted for than sent");
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out at {seen}/{expect} frames"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole soak-shaped test: 50 concurrent agents over TCP
/// loopback, ~2% corrupt payloads and periodic mid-stream disconnects
/// injected, queries running concurrently with ingest — and the final
/// tenant-wide quantiles must be **bit-identical** to a from-scratch
/// union sketch over every valid payload. Runs under both I/O models.
#[test]
fn fifty_agents_with_corruption_equal_the_union_threaded() {
    fifty_agents_with_corruption(IoModel::Threaded);
}

#[cfg(unix)]
#[test]
fn fifty_agents_with_corruption_equal_the_union_reactor() {
    fifty_agents_with_corruption(IoModel::Reactor);
}

fn fifty_agents_with_corruption(io_model: IoModel) {
    const AGENTS: usize = 50;
    const FRAMES_PER_AGENT: usize = 120;
    const VALUES_PER_FRAME: usize = 20;

    let server = ServerHandle::spawn(
        &Bind::Tcp("127.0.0.1:0".into()),
        server_config_for(io_model),
    )
    .unwrap();
    let endpoint = server.endpoint().clone();

    // A concurrent query thread hammers the server throughout ingest.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let query_thread = {
        let endpoint = endpoint.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = QueryClient::connect(&endpoint).unwrap();
            let mut queries = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                client.ping().unwrap();
                // Quantiles may legitimately answer -ERR before the first
                // frame lands; protocol errors are fine, transport errors
                // are not.
                match client.quantiles("acme", &[0.5, 0.99]) {
                    Ok(_) | Err(sketchd::ServerError::Protocol(_)) => {}
                    Err(e) => panic!("query failed: {e}"),
                }
                queries += 1;
            }
            queries
        })
    };

    let handles: Vec<_> = (0..AGENTS)
        .map(|a| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut agent = AgentSender::connect(endpoint, "acme").expect("agent connects");
                let mut union = cfg().build().unwrap();
                let mut corrupt = 0u64;
                for i in 0..FRAMES_PER_AGENT {
                    let metric = format!("m{}", (a + i) % 7);
                    let ts = ((a * 31 + i) % 50) as u64 * 10;
                    if (a + i) % 47 == 0 {
                        // ~2% corrupt payloads: intact framing, garbage
                        // sketch bytes. The server must reject exactly
                        // these and keep the stream alive.
                        agent
                            .send_encoded(&metric, ts, b"DDS2 this is not a sketch")
                            .expect("corrupt frame still ships");
                        corrupt += 1;
                        continue;
                    }
                    if i > 0 && i % 40 == 0 {
                        // Mid-stream disconnect: the next send reconnects.
                        agent.drop_connection();
                    }
                    let values: Vec<f64> = (0..VALUES_PER_FRAME)
                        .map(|k| 0.5 + ((a * 1009 + i * 97 + k * 13) % 997) as f64)
                        .collect();
                    let bytes = payload(values.iter().copied());
                    union
                        .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
                        .unwrap();
                    agent.send_encoded(&metric, ts, &bytes).expect("send");
                }
                let reconnects = agent.reconnects();
                agent.close().expect("clean close");
                (union, corrupt, reconnects)
            })
        })
        .collect();

    let mut reference = cfg().build().unwrap();
    let mut total_corrupt = 0u64;
    let mut total_reconnects = 0u64;
    for handle in handles {
        let (union, corrupt, reconnects) = handle.join().unwrap();
        reference.merge_from(&union).unwrap();
        total_corrupt += corrupt;
        total_reconnects += reconnects;
    }
    assert!(total_corrupt >= AGENTS as u64, "corruption injection ran");
    assert!(
        total_reconnects >= AGENTS as u64,
        "disconnect injection ran"
    );

    let mut client = QueryClient::connect(&endpoint).unwrap();
    let stats = await_frames(&mut client, (AGENTS * FRAMES_PER_AGENT) as u64);
    client.sync().unwrap();

    // Quantiles bit-identical to the from-scratch union.
    let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    let served = client.quantiles("acme", &qs).unwrap();
    let expected = reference.quantiles(&qs).unwrap();
    for (q, (got, want)) in qs.iter().zip(served.iter().zip(expected.iter())) {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "q={q}: served {got} != union {want}"
        );
    }

    // Zero lost or duplicated bins: the counts agree exactly.
    assert_eq!(client.count("acme").unwrap(), reference.count());

    // The corrupt frames were rejected, not absorbed — and nothing else.
    assert_eq!(stats.frames_rejected, total_corrupt);
    assert_eq!(
        stats.frames_ingested,
        (AGENTS * FRAMES_PER_AGENT) as u64 - total_corrupt
    );

    // Metric listing and per-metric series work alongside.
    let metrics = client.metrics("acme").unwrap();
    assert_eq!(metrics, (0..7).map(|i| format!("m{i}")).collect::<Vec<_>>());
    let series = client.series("acme", "m3", 0.5).unwrap();
    assert!(!series.is_empty());
    for (window, value) in &series {
        assert_eq!(window % 10, 0);
        assert!(value.is_finite());
    }

    // The per-shard depth vector is always shaped right, and the
    // reactor's wakeup counters move only under the reactor.
    assert_eq!(stats.staging_depth.len(), 4);
    match io_model {
        IoModel::Reactor => assert!(stats.reactor_wakeups > 0, "reactor wakeups counted"),
        IoModel::Threaded => assert_eq!(stats.reactor_wakeups, 0),
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let queries = query_thread.join().unwrap();
    assert!(queries > 0, "queries ran concurrently with ingest");
    server.shutdown().unwrap();
}

/// The same plumbing end-to-end over a Unix domain socket.
#[cfg(unix)]
#[test]
fn unix_socket_end_to_end() {
    let dir = temp_dir("unix-e2e");
    let server =
        ServerHandle::spawn(&Bind::Unix(dir.join("sketchd.sock")), server_config()).unwrap();
    let mut agent = AgentSender::connect(server.endpoint().clone(), "tenant-a").unwrap();
    let mut reference = cfg().build().unwrap();
    for i in 0..40 {
        let bytes = payload((1..=25).map(|k| f64::from(k) * (i + 1) as f64 * 0.3));
        reference
            .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
            .unwrap();
        agent.send_encoded("api.latency", i * 10, &bytes).unwrap();
    }
    agent.close().unwrap();

    let mut client = QueryClient::connect(server.endpoint()).unwrap();
    await_frames(&mut client, 40);
    client.sync().unwrap();
    assert_eq!(client.count("tenant-a").unwrap(), reference.count());
    let qs = [0.5, 0.95, 0.99];
    assert_eq!(
        client.quantiles("tenant-a", &qs).unwrap(),
        reference.quantiles(&qs).unwrap()
    );
    assert_eq!(client.tenants().unwrap(), vec!["tenant-a".to_string()]);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 2's regression: kill the server mid-stream, restart it on
/// the same endpoint, and verify the sender reconnects and that **no
/// frame was half-written** — every absorbed frame carries exactly its
/// full complement of values, and the framing of the resumed stream is
/// intact.
#[cfg(unix)]
#[test]
fn server_kill_midstream_reconnects_without_torn_frames() {
    const VALUES_PER_FRAME: u64 = 16;
    let dir = temp_dir("kill");
    let sock = dir.join("sketchd.sock");
    let checkpoints = dir.join("ckpt");
    let config = ServerConfig {
        checkpoint_dir: Some(checkpoints.clone()),
        ..server_config()
    };

    let server1 = ServerHandle::spawn(&Bind::Unix(sock.clone()), config.clone()).unwrap();
    let mut agent = AgentSender::with_policy(
        server1.endpoint().clone(),
        "acme",
        RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
        },
    )
    .unwrap();

    let frame_values =
        |i: u64| (0..VALUES_PER_FRAME).map(move |k| 1.0 + ((i * 131 + k * 17) % 499) as f64);
    for i in 0..100u64 {
        agent
            .send_encoded("m", (i % 20) * 10, &payload(frame_values(i)))
            .unwrap();
    }
    // Barrier: everything sent so far is absorbed, then checkpointed by
    // the graceful kill below.
    let mut client = QueryClient::connect(server1.endpoint()).unwrap();
    await_frames(&mut client, 100);
    client.sync().unwrap();
    assert_eq!(client.count("acme").unwrap(), 100 * VALUES_PER_FRAME);
    drop(client);
    server1.shutdown().unwrap();

    // Restart on the same socket path, restoring the checkpoints.
    let server2 = ServerHandle::spawn(&Bind::Unix(sock), config).unwrap();

    // The agent's connection is dead; the next sends must ride the
    // bounded-retry reconnect path and resend whole frames.
    for i in 100..150u64 {
        agent
            .send_encoded("m", (i % 20) * 10, &payload(frame_values(i)))
            .unwrap();
    }
    assert!(agent.reconnects() >= 1, "a reconnect must have happened");
    assert_eq!(agent.frames_sent(), 150);
    agent.close().unwrap();

    let mut client = QueryClient::connect(server2.endpoint()).unwrap();
    await_frames(&mut client, 50);
    client.sync().unwrap();
    let count = client.count("acme").unwrap();
    // No torn frames: the total is an exact multiple of the frame size,
    // and nothing was lost across the kill (pre-kill frames were synced
    // and checkpointed, post-kill frames all reached server2).
    assert_eq!(count % VALUES_PER_FRAME, 0, "half-written frame absorbed");
    assert_eq!(count, 150 * VALUES_PER_FRAME);

    // The restored + resumed state answers exactly like a from-scratch
    // union over all 150 frames.
    let mut reference = cfg().build().unwrap();
    for i in 0..150u64 {
        for v in frame_values(i) {
            reference.add(v).unwrap();
        }
    }
    let qs = [0.1, 0.5, 0.9, 0.99];
    assert_eq!(
        client.quantiles("acme", &qs).unwrap(),
        reference.quantiles(&qs).unwrap()
    );
    server2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tiny staging bound must throttle a fast agent (backpressure
/// observed in the stats) while losing nothing — Condvar blocking under
/// the threaded model, suspension/resume under the reactor.
#[test]
fn backpressure_throttles_without_loss_threaded() {
    backpressure_throttles_without_loss(IoModel::Threaded);
}

#[cfg(unix)]
#[test]
fn backpressure_throttles_without_loss_reactor() {
    backpressure_throttles_without_loss(IoModel::Reactor);
}

fn backpressure_throttles_without_loss(io_model: IoModel) {
    const FRAMES: u64 = 3000;
    let config = ServerConfig {
        shards_per_tenant: 1,
        staging_bound: 1,
        ..server_config_for(io_model)
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let endpoint = server.endpoint().clone();

    // A concurrent quantile loop contends for the shard state lock,
    // slowing the worker enough that the bound-1 queue fills.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let contender = {
        let endpoint = endpoint.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = QueryClient::connect(&endpoint).unwrap();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = client.quantiles("t", &[0.99]);
            }
        })
    };

    let mut agent = AgentSender::connect(endpoint.clone(), "t").unwrap();
    let bytes = payload((1..=10).map(f64::from));
    let per_frame = AnyDDSketch::decode(&bytes).unwrap().count();
    for i in 0..FRAMES {
        agent
            .send_encoded("hot.metric", (i % 10) * 10, &bytes)
            .unwrap();
    }
    agent.close().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    contender.join().unwrap();

    let mut client = QueryClient::connect(&endpoint).unwrap();
    let stats = await_frames(&mut client, FRAMES);
    client.sync().unwrap();
    assert_eq!(client.count("t").unwrap(), FRAMES * per_frame);
    assert!(
        stats.backpressure_waits > 0,
        "a bound-1 queue must have stalled ingest"
    );
    match io_model {
        IoModel::Reactor => assert!(
            stats.ingest_suspensions > 0,
            "the reactor must suspend, not block"
        ),
        IoModel::Threaded => assert_eq!(stats.ingest_suspensions, 0),
    }
    // The staging depth can never exceed the bound.
    for (depth, high) in client.shards("t").unwrap() {
        assert!(depth <= 1, "depth {depth} beyond bound");
        assert!(high <= 1, "high watermark {high} beyond bound");
    }
    server.shutdown().unwrap();
}

/// Arrivals past [`ServerConfig::max_connections`] get a clean
/// protocol-level reject and the slot frees once a held connection
/// closes — under both I/O models.
#[test]
fn connection_cap_rejects_cleanly_threaded() {
    connection_cap_rejects_cleanly(IoModel::Threaded);
}

#[cfg(unix)]
#[test]
fn connection_cap_rejects_cleanly_reactor() {
    connection_cap_rejects_cleanly(IoModel::Reactor);
}

fn connection_cap_rejects_cleanly(io_model: IoModel) {
    use std::io::Read;
    let config = ServerConfig {
        max_connections: 2,
        ..server_config_for(io_model)
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let endpoint = server.endpoint().clone();
    let sketchd::Endpoint::Tcp(addr) = endpoint.clone() else {
        unreachable!()
    };

    // Fill the cap with two live query sessions.
    let mut held_a = QueryClient::connect(&endpoint).unwrap();
    held_a.ping().unwrap();
    let mut held_b = QueryClient::connect(&endpoint).unwrap();
    held_b.ping().unwrap();

    // The third arrival is told why and dropped.
    let mut response = String::new();
    std::net::TcpStream::connect(addr)
        .unwrap()
        .read_to_string(&mut response)
        .unwrap();
    assert_eq!(response, "-ERR server at connection capacity\n");

    let stats = held_a.stats().unwrap();
    assert_eq!(stats.open_connections, 2);
    assert_eq!(stats.connections_rejected, 1);
    assert_eq!(stats.connections_total, 2, "rejects aren't connections");

    // Releasing a held session frees the slot (the server needs a
    // moment to observe the close).
    held_b.quit().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut client) = QueryClient::connect(&endpoint) {
            if client.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "capacity slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown().unwrap();
}

/// Checkpoint DUMP over the socket restores to a store equal to the
/// server's, and CHECKPOINT writes restorable `{tenant}@{shard}.ddts`
/// files.
#[test]
fn dump_and_checkpoint_roundtrip_over_the_wire() {
    let dir = temp_dir("dump");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..server_config()
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
    let mut reference = cfg().build().unwrap();
    for i in 0..60u64 {
        let metric = format!("m{}", i % 5);
        let bytes = payload((1..=30).map(|k| f64::from(k) * 0.7 + i as f64));
        reference
            .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
            .unwrap();
        agent.send_encoded(&metric, (i % 12) * 10, &bytes).unwrap();
    }
    agent.close().unwrap();

    let mut client = QueryClient::connect(server.endpoint()).unwrap();
    await_frames(&mut client, 60);
    client.sync().unwrap();

    // DUMP every shard and union them client-side: the restored stores
    // must hold exactly the server's data.
    let mut dumped_count = 0u64;
    let mut union = cfg().build().unwrap();
    for shard in 0..4 {
        let store = client.fetch_store("acme", shard).unwrap();
        for (_, _, cell) in store.cells() {
            dumped_count += cell.count();
            union.merge_from(cell).unwrap();
        }
        // The query session stays line-oriented after the binary escape.
        client.ping().unwrap();
    }
    assert_eq!(dumped_count, reference.count());
    let qs = [0.5, 0.99];
    assert_eq!(
        union.quantiles(&qs).unwrap(),
        reference.quantiles(&qs).unwrap()
    );

    // CHECKPOINT writes one file per (tenant, shard), each restorable.
    assert_eq!(client.checkpoint().unwrap(), 4);
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        (0..4).map(|i| format!("acme@{i}.ddts")).collect::<Vec<_>>()
    );
    for file in &files {
        let bytes = std::fs::read(dir.join(file)).unwrap();
        pipeline::TimeSeriesStore::restore(bytes.as_slice()).unwrap();
    }
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The weighted count plane through the wire: one agent stream mixing
/// integer `DDS2` and weighted `DDS3` frames, per-tenant totals in
/// `STATS`, `WCOUNT`/`WQUANTILE` answering over both planes, and the
/// `.ddsw` checkpoint surviving a restart.
#[test]
fn weighted_frames_flow_through_stats_queries_and_checkpoints() {
    use ddsketch::AnyWeightedDDSketch;

    const INTEGER_FRAMES: u64 = 24;
    const WEIGHTED_FRAMES: u64 = 24;

    let dir = temp_dir("weighted");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_interval: Some(Duration::from_secs(3600)),
        ..server_config()
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config.clone()).unwrap();
    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();

    // Dyadic weights (multiples of 0.25) keep every f64 partial sum
    // exact, so the assertions below can demand bit equality no matter
    // what order the server folds frames in.
    let mut reference = AnyWeightedDDSketch::new(cfg()).unwrap();
    let mut integer_count = 0u64;
    let mut weighted_total = 0.0f64;

    for i in 0..INTEGER_FRAMES {
        let values: Vec<f64> = (1..=10).map(|k| f64::from(k) * 1.5 + i as f64).collect();
        for v in &values {
            reference.add_with_count(*v, 1.0).unwrap();
        }
        integer_count += values.len() as u64;
        weighted_total += values.len() as f64;
        agent
            .send_encoded(
                &format!("m{}", i % 3),
                (i % 6) * 10,
                &payload(values.iter().copied()),
            )
            .unwrap();
    }
    for i in 0..WEIGHTED_FRAMES {
        let mut frame = AnyWeightedDDSketch::new(cfg()).unwrap();
        for k in 1..=8u32 {
            let v = f64::from(k) * 2.5 + i as f64 * 0.5;
            let w = f64::from(k % 4) * 0.25 + 0.5;
            frame.add_with_count(v, w).unwrap();
            reference.add_with_count(v, w).unwrap();
            weighted_total += w;
        }
        agent
            .send_encoded(&format!("m{}", i % 3), (i % 6) * 10, &frame.encode())
            .unwrap();
    }
    agent.close().unwrap();

    let mut client = QueryClient::connect(server.endpoint()).unwrap();
    let stats = await_frames(&mut client, INTEGER_FRAMES + WEIGHTED_FRAMES);
    client.sync().unwrap();

    // Per-tenant totals ride STATS: absorbed payload count plus the f64
    // weighted value total, round-tripping exactly through the text
    // protocol's shortest-round-trip float rendering.
    assert_eq!(stats.tenants.len(), 1);
    let tenant = &stats.tenants[0];
    assert_eq!(tenant.name, "acme");
    assert_eq!(tenant.frames_absorbed, INTEGER_FRAMES + WEIGHTED_FRAMES);
    assert_eq!(tenant.weighted_total.to_bits(), weighted_total.to_bits());

    // `DDS3` frames never touch the exact integer plane: COUNT (and the
    // windowed store behind SERIES) see only the integer frames.
    assert_eq!(client.count("acme").unwrap(), integer_count);

    // WCOUNT and WQUANTILE answer over both planes, bit-identical to a
    // from-scratch weighted union of every valid frame.
    assert_eq!(
        client.weighted_count("acme").unwrap().to_bits(),
        reference.weighted_count().to_bits()
    );
    let qs = [0.01, 0.25, 0.5, 0.9, 0.99];
    let served = client.weighted_quantiles("acme", &qs).unwrap();
    let expected = reference.quantiles(&qs).unwrap();
    for (q, (got, want)) in qs.iter().zip(served.iter().zip(expected.iter())) {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "q={q}: served {got} != union {want}"
        );
    }
    drop(client);

    // Graceful shutdown takes a final checkpoint: `.ddsw` snapshots sit
    // alongside the `.ddts` stores for shards holding weighted state.
    server.shutdown().unwrap();
    let ddsw_files = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".ddsw"))
        })
        .count();
    assert!(ddsw_files >= 1, "no weighted checkpoint written");

    // A fresh server boots from both planes' checkpoints and answers
    // identically; the per-tenant totals are process-lifetime counters
    // and start over.
    let server2 = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let mut client = QueryClient::connect(server2.endpoint()).unwrap();
    assert_eq!(client.count("acme").unwrap(), integer_count);
    assert_eq!(
        client.weighted_count("acme").unwrap().to_bits(),
        reference.weighted_count().to_bits()
    );
    let restored = client.weighted_quantiles("acme", &qs).unwrap();
    for (got, want) in restored.iter().zip(expected.iter()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    let stats2 = client.stats().unwrap();
    assert_eq!(stats2.tenants.len(), 1);
    assert_eq!(stats2.tenants[0].frames_absorbed, 0);
    assert_eq!(stats2.tenants[0].weighted_total, 0.0);
    server2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL retention: a periodic sweep evicts windowed-store cells that
/// fell out of the trailing retention width, counts them in STATS, and
/// invalidates cached SERIES answers over the evicted data. The
/// resident aggregator (COUNT/QUANTILE) is a lifetime union and is
/// untouched.
#[test]
fn ttl_retention_evicts_stale_windows() {
    let config = ServerConfig {
        retention: Some(Duration::from_secs(30)),
        ..server_config()
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
    // One frame per 10 s window at 0, 10, …, 90: ten cells on one
    // metric (= one shard).
    let mut total = 0u64;
    for w in 0..10u64 {
        let values: Vec<f64> = (1..=12).map(|k| f64::from(k) * 0.5 + w as f64).collect();
        total += values.len() as u64;
        agent
            .send_encoded("api.latency", w * 10, &payload(values))
            .unwrap();
    }
    agent.close().unwrap();

    let mut client = QueryClient::connect(server.endpoint()).unwrap();
    await_frames(&mut client, 10);
    client.sync().unwrap();

    // The sweep interval is clamped to ≤ 500 ms; wait for it to land.
    // With the newest window at [90, 100), the trailing 30 s keeps
    // windows 70/80/90 and evicts the seven older cells — sweeps that
    // ran mid-ingest only evicted cells the final state drops anyway,
    // so the counter converges to exactly 7.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().unwrap();
        if stats.evicted_cells >= 7 {
            assert_eq!(stats.evicted_cells, 7, "over-evicted");
            break;
        }
        assert!(Instant::now() < deadline, "retention sweep never evicted");
        std::thread::sleep(Duration::from_millis(10));
    }

    let series = client.series("acme", "api.latency", 0.5).unwrap();
    let windows: Vec<u64> = series.iter().map(|&(w, _)| w).collect();
    assert_eq!(windows, vec![70, 80, 90], "series kept the trailing width");
    assert_eq!(client.count("acme").unwrap(), total);
    server.shutdown().unwrap();
}

/// Wire-level read-plane coherence, under both I/O models: a server on
/// the epoch-cached read plane answers the whole cacheable query family
/// byte-identically to a locked-fold server fed the same frames, repeat
/// queries serve from the answer cache (byte-identical again, and
/// counted), and the snapshot counters ride STATS.
#[test]
fn epoch_cached_answers_match_locked_fold_over_the_wire() {
    use ddsketch::AnyWeightedDDSketch;

    for io_model in [IoModel::Threaded, IoModel::Reactor] {
        let spawn = |read_plane| {
            let config = ServerConfig {
                read_plane,
                ..server_config_for(io_model)
            };
            ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap()
        };
        let cached = spawn(ReadPlane::EpochCached);
        let locked = spawn(ReadPlane::LockedFold);

        // Identical mixed-plane streams into both servers (dyadic
        // weights keep every f64 partial sum exact).
        for server in [&cached, &locked] {
            let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
            for i in 0..32u64 {
                let bytes = payload((1..=12).map(|k| f64::from(k) * 0.75 + i as f64 * 0.3));
                agent
                    .send_encoded(&format!("m{}", i % 4), (i % 5) * 10, &bytes)
                    .unwrap();
                let mut frame = AnyWeightedDDSketch::new(cfg()).unwrap();
                for k in 1..=6u32 {
                    let v = f64::from(k) * 1.25 + i as f64 * 0.5;
                    let w = f64::from(k % 3) * 0.25 + 0.25;
                    frame.add_with_count(v, w).unwrap();
                }
                agent
                    .send_encoded(&format!("m{}", i % 4), (i % 5) * 10, &frame.encode())
                    .unwrap();
            }
            agent.close().unwrap();
            let mut client = QueryClient::connect(server.endpoint()).unwrap();
            await_frames(&mut client, 64);
            client.sync().unwrap();
        }

        let mut on_cached = QueryClient::connect(cached.endpoint()).unwrap();
        let mut on_locked = QueryClient::connect(locked.endpoint()).unwrap();
        let lines = [
            "COUNT acme",
            "WCOUNT acme",
            "QUANTILE acme 0.01 0.5 0.9 0.99",
            "WQUANTILE acme 0.25 0.5 0.99",
            "SERIES acme m1 0.9",
        ];
        for line in lines {
            let first = on_cached.command(line).unwrap();
            let reference = on_locked.command(line).unwrap();
            assert_eq!(first, reference, "{io_model:?}: {line}");
            // The repeat is an answer-cache hit: byte-identical.
            let again = on_cached.command(line).unwrap();
            assert_eq!(again, first, "{io_model:?}: cached repeat of {line}");
        }
        let stats = on_cached.stats().unwrap();
        assert!(
            stats.query_cache_hits >= lines.len() as u64,
            "{io_model:?}: repeats should hit the cache ({} hits)",
            stats.query_cache_hits
        );
        assert!(
            stats.snapshot_rebuilds >= 1,
            "{io_model:?}: snapshots were never built"
        );
        cached.shutdown().unwrap();
        locked.shutdown().unwrap();
    }
}

/// Protocol violations answer `-ERR` and leave the session usable;
/// corrupt framing drops only the offending ingest connection.
#[test]
fn protocol_errors_are_contained() {
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), server_config()).unwrap();
    let endpoint = server.endpoint().clone();

    let mut client = QueryClient::connect(&endpoint).unwrap();
    for bad in [
        "BOGUS",
        "QUANTILE",
        "QUANTILE nosuch 0.5",
        "COUNT bad/name",
        "SERIES acme",
        "DUMP acme notanumber",
        "PING extra args",
        "WCOUNT",
        "WQUANTILE acme",
    ] {
        let err = client.command(bad).unwrap_err();
        assert!(
            matches!(err, sketchd::ServerError::Protocol(_)),
            "{bad}: {err}"
        );
        // The session survives every -ERR.
        client.ping().unwrap();
    }

    // An ingest stream with corrupt *framing* (a hostile declared
    // length) is dropped without poisoning anything.
    {
        use std::io::Write;
        let sketchd::Endpoint::Tcp(addr) = endpoint else {
            unreachable!()
        };
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"INGEST acme\nDDSF\x01").unwrap();
        raw.write_all(&[0xff; 10]).unwrap(); // varint length ~2^70
        drop(raw);
    }
    // The server keeps serving.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.ping().unwrap();
        if client.stats().unwrap().ingest_disconnects >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "disconnect never counted");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
    agent.send_encoded("m", 0, &payload([1.0, 2.0])).unwrap();
    agent.close().unwrap();
    await_frames(&mut client, 2); // the hostile frame counted one reject
    client.sync().unwrap();
    assert_eq!(client.count("acme").unwrap(), 2);
    server.shutdown().unwrap();
}

/// Graceful shutdown drains every staged frame, takes a final
/// checkpoint, and a new server boots from it with identical state.
#[test]
fn graceful_shutdown_checkpoints_and_restores() {
    let dir = temp_dir("graceful");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_interval: Some(Duration::from_secs(3600)),
        ..server_config()
    };
    let server = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config.clone()).unwrap();
    let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
    let mut reference = cfg().build().unwrap();
    for i in 0..80u64 {
        let bytes = payload((1..=15).map(|k| f64::from(k) + i as f64 * 0.1));
        reference
            .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
            .unwrap();
        agent
            .send_encoded(&format!("m{}", i % 3), (i % 9) * 10, &bytes)
            .unwrap();
    }
    agent.close().unwrap();
    // Wait for the frames to be read off the socket (no SYNC: shutdown
    // itself must wait for whatever is still staged).
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_ingested < 80 {
        assert!(Instant::now() < deadline, "frames never absorbed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let final_stats = server.shutdown().unwrap();
    assert_eq!(final_stats.frames_ingested, 80);
    assert!(
        final_stats.checkpoints_completed >= 1,
        "final checkpoint ran"
    );

    // Boot a fresh server from the checkpoints: identical answers.
    let server2 = ServerHandle::spawn(&Bind::Tcp("127.0.0.1:0".into()), config).unwrap();
    let mut client = QueryClient::connect(server2.endpoint()).unwrap();
    assert_eq!(client.count("acme").unwrap(), reference.count());
    let qs = [0.25, 0.5, 0.75, 0.99];
    assert_eq!(
        client.quantiles("acme", &qs).unwrap(),
        reference.quantiles(&qs).unwrap()
    );
    assert_eq!(
        client.metrics("acme").unwrap(),
        vec!["m0".to_string(), "m1".into(), "m2".into()]
    );
    server2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
