//! The epoch-cached read plane: per-shard read snapshots and the
//! answer cache that serve QUANTILE/WQUANTILE/COUNT/WCOUNT/SERIES
//! without touching the shard state locks at steady state.
//!
//! ## Why
//!
//! Every query used to fold per-shard state under the same
//! `Mutex<ShardState>` the shard workers absorb into, so query latency
//! inherited the ingest plane's lock contention (the PR 7 soak measured
//! a p99 of 10 ms against a p50 of 111 µs). DDSketch's full
//! mergeability means a *copy* of the folded state answers exactly the
//! same — so reads are decoupled from ingest with two layers:
//!
//! * **Read snapshots** ([`ShardSnapshot`]) — an immutable, epoch-
//!   labelled copy of a shard's folded residents, swapped in whole
//!   behind an `Arc`. Shard workers republish every
//!   [`crate::ServerConfig::snapshot_refresh`] absorbed frames and
//!   whenever their staging queue drains; queries on a quiesced shard
//!   rebuild on demand (the PR 3 short-hold pattern: the state lock is
//!   held only for the fold + bin copy, the rank walk runs outside).
//! * **Answer cache** ([`QueryCache`]) — rendered responses keyed by
//!   the raw query line, validated against the epoch vector they were
//!   computed from. A hit is a handful of relaxed atomic loads and one
//!   `memcpy` — no state lock, no parse, zero allocations.
//!
//! ## Staleness contract
//!
//! A served answer is never stale relative to a *quiesced* shard: the
//! freshness predicate accepts a cached epoch only while the shard has
//! staged-but-unabsorbed frames in flight (in which case any answer is
//! inherently racy) or while the snapshot exactly matches the data
//! epoch. After `SYNC` drains the queues, every answer is bit-identical
//! to a fresh under-lock fold — property-tested below and in the
//! workspace suite.

use std::sync::{Arc, Mutex};

use ddsketch::{AnyDDSketch, AnyWeightedDDSketch};

use crate::state::{lock, Stats, Tenant};

/// An immutable, epoch-labelled copy of one shard's folded state — what
/// the read plane answers from instead of the live `ShardState`.
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    /// The shard's combined data epoch at the moment of the copy (taken
    /// under the state lock, after folding, so the label is exact).
    pub epoch: u64,
    /// The integer plane's folded resident.
    pub resident: AnyDDSketch,
    /// The weighted plane's folded resident.
    pub weighted: AnyWeightedDDSketch,
    /// `resident.count()`, denormalized for COUNT/WCOUNT answers.
    pub count: u64,
    /// `weighted.weighted_count()`, denormalized likewise.
    pub weighted_count: f64,
}

/// Which freshness rule validates a cached answer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CacheScope {
    /// Answered from every shard's read snapshot: fresh while each
    /// shard still serves the same snapshot **and** is either
    /// ingest-busy (bounded staleness applies) or exactly caught up —
    /// so quiesced shards always revalidate against the data epoch.
    Snapshots,
    /// Answered under one shard's state lock (SERIES, whose windowed
    /// store is not snapshotted): fresh only while that shard's data
    /// epoch is unchanged.
    Shard(usize),
}

/// The key material a query handler captures while computing a
/// cacheable answer: which tenant, which freshness rule, and the epoch
/// vector the answer was derived from.
#[derive(Debug)]
pub(crate) struct CacheFill {
    pub tenant: Arc<Tenant>,
    pub scope: CacheScope,
    pub epochs: Vec<u64>,
}

#[derive(Debug)]
struct CacheEntry {
    /// The raw query line — keying on bytes (not the parsed command)
    /// lets hits skip `parse_command` entirely, which is what makes the
    /// hit path allocation-free.
    line: String,
    tenant: Arc<Tenant>,
    scope: CacheScope,
    epochs: Vec<u64>,
    response: Vec<u8>,
}

impl CacheEntry {
    /// Lock-free, allocation-free freshness probe.
    fn is_fresh(&self) -> bool {
        match self.scope {
            CacheScope::Snapshots => {
                self.tenant.shards.len() == self.epochs.len()
                    && self
                        .tenant
                        .shards
                        .iter()
                        .zip(&self.epochs)
                        .all(|(shard, &epoch)| {
                            shard.snapshot_epoch() == epoch
                                && (shard.live_depth() > 0 || shard.data_epoch() == epoch)
                        })
            }
            CacheScope::Shard(index) => self
                .tenant
                .shards
                .get(index)
                .zip(self.epochs.first())
                .is_some_and(|(shard, &epoch)| shard.data_epoch() == epoch),
        }
    }
}

/// Answer-cache capacity: a small bounded set scanned linearly — hot
/// dashboards repeat a handful of distinct lines, and a linear scan of
/// ≤ 64 short strings is cheaper than hashing would ever pay back.
const CACHE_CAPACITY: usize = 64;

#[derive(Debug, Default)]
struct CacheState {
    entries: Vec<CacheEntry>,
    /// Ring-eviction cursor once the cache is full.
    victim: usize,
}

/// The server-wide answer cache for hot repeated queries; see the
/// module docs for the freshness contract.
#[derive(Debug, Default)]
pub(crate) struct QueryCache {
    state: Mutex<CacheState>,
}

impl QueryCache {
    /// Serve `line` from the cache if a fresh entry exists, appending
    /// the stored response to `out`. Counts a hit or a miss either way.
    pub(crate) fn serve(&self, line: &str, out: &mut Vec<u8>, stats: &Stats) -> bool {
        let state = lock(&self.state);
        if let Some(entry) = state.entries.iter().find(|e| e.line == line) {
            if entry.is_fresh() {
                out.extend_from_slice(&entry.response);
                Stats::add(&stats.query_cache_hits, 1);
                return true;
            }
        }
        Stats::add(&stats.query_cache_misses, 1);
        false
    }

    /// Record a freshly computed response for `line`. An existing entry
    /// for the same line is updated in place (reusing its buffers);
    /// otherwise the cache grows to [`CACHE_CAPACITY`] and then evicts
    /// round-robin.
    pub(crate) fn store(&self, line: &str, fill: CacheFill, response: &[u8]) {
        let mut state = lock(&self.state);
        let CacheState { entries, victim } = &mut *state;
        if let Some(entry) = entries.iter_mut().find(|e| e.line == line) {
            entry.tenant = fill.tenant;
            entry.scope = fill.scope;
            entry.epochs.clear();
            entry.epochs.extend_from_slice(&fill.epochs);
            entry.response.clear();
            entry.response.extend_from_slice(response);
            return;
        }
        let entry = CacheEntry {
            line: line.to_string(),
            tenant: fill.tenant,
            scope: fill.scope,
            epochs: fill.epochs,
            response: response.to_vec(),
        };
        if entries.len() < CACHE_CAPACITY {
            entries.push(entry);
        } else {
            entries[*victim] = entry;
            *victim = (*victim + 1) % CACHE_CAPACITY;
        }
    }
}

/// Whether a query line names a command the answer cache may serve.
/// Case-insensitive on the verb (like the parser) and allocation-free;
/// a `false` simply routes the line through the uncached path.
pub(crate) fn cacheable(line: &str) -> bool {
    let verb = line.split_whitespace().next().unwrap_or("");
    ["QUANTILE", "WQUANTILE", "COUNT", "WCOUNT", "SERIES"]
        .iter()
        .any(|v| verb.eq_ignore_ascii_case(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Job, JobPayload, ShardState, Stats};
    use ddsketch::{SketchConfig, SketchPayload, WeightedSketchPayload};
    use proptest::prelude::*;

    fn integer_frame(config: SketchConfig, values: &[f64]) -> Vec<u8> {
        let mut s = config.build().unwrap();
        for &v in values {
            s.add(v).unwrap();
        }
        s.encode()
    }

    fn weighted_frame(config: SketchConfig, entries: &[(f64, f64)]) -> Vec<u8> {
        let mut s = AnyWeightedDDSketch::new(config).unwrap();
        for &(v, w) in entries {
            s.add_with_count(v, w).unwrap();
        }
        s.encode()
    }

    /// Drive one shard exactly like a worker would: stage, pop, absorb
    /// under the state lock, publish the epoch, complete.
    fn absorb(tenant: &Tenant, stats: &Stats, metric: &str, frame: &[u8], weighted: bool) {
        let shard = tenant.shard_for(metric).clone();
        let payload = if weighted {
            let mut p = WeightedSketchPayload::default();
            p.decode_into(frame).unwrap();
            JobPayload::Weighted(p)
        } else {
            let mut p = SketchPayload::default();
            p.decode_into(frame).unwrap();
            JobPayload::Integer(p)
        };
        shard
            .push(
                Job {
                    metric: metric.to_string(),
                    ts_secs: 0,
                    payload,
                },
                stats,
            )
            .unwrap();
        let job = shard.pop().unwrap();
        let mut state = lock(&shard.state);
        match job.payload {
            JobPayload::Integer(p) => {
                state
                    .store
                    .absorb_payload(&job.metric, job.ts_secs, &p)
                    .unwrap();
                state.agg.feed_payload(p).unwrap();
            }
            JobPayload::Weighted(p) => state.wagg.feed_payload(p).unwrap(),
        }
        shard.publish_epoch(&state);
        drop(state);
        shard.complete(JobPayload::Integer(SketchPayload::default()), job.metric);
    }

    /// The "fresh under-lock fold" reference: fold the live state and
    /// read its answers directly.
    fn fresh_fold(
        state: &mut ShardState,
        qs: &[f64],
    ) -> (u64, Vec<f64>, f64, Result<Vec<f64>, ()>) {
        state.agg.fold();
        state.wagg.fold();
        let count = state.agg.count();
        let quantiles = state.agg.quantiles(qs).unwrap_or_default();
        let wcount = state.wagg.weighted_count();
        let wq = state.wagg.quantiles(qs).map_err(|_| ());
        (count, quantiles, wcount, wq)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // Across interleaved feed/fold/query schedules, on all five
        // configs and both count planes: a snapshot-served read is
        // bit-identical to a fresh under-lock fold at the same epoch,
        // and a *held* snapshot's answers never drift as later frames
        // land (isolation).
        #[test]
        fn snapshot_reads_equal_fresh_folds(
            ops in proptest::collection::vec((0u8..4, 1u64..50, 1u64..6), 1..40),
        ) {
            let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
            for config in SketchConfig::all(0.01, 128) {
                let stats = Stats::default();
                let tenant = Tenant::new("t", config, 1, 64, 4, 10).unwrap();
                let shard = &tenant.shards[0];
                let mut held: Option<(Arc<ShardSnapshot>, Vec<f64>, u64)> = None;
                for &(kind, seed, len) in &ops {
                    match kind {
                        // Feed an integer frame.
                        0 => {
                            let values: Vec<f64> =
                                (1..=len).map(|i| (seed * i) as f64 * 0.37).collect();
                            absorb(&tenant, &stats, "m", &integer_frame(config, &values), false);
                        }
                        // Feed a weighted frame.
                        1 => {
                            let entries: Vec<(f64, f64)> = (1..=len)
                                .map(|i| ((seed * i) as f64 * 0.61, 0.5 + seed as f64))
                                .collect();
                            absorb(&tenant, &stats, "m", &weighted_frame(config, &entries), true);
                        }
                        // Explicit fold under the lock (publishes).
                        2 => {
                            let mut state = lock(&shard.state);
                            state.agg.fold();
                            state.wagg.fold();
                            shard.publish_epoch(&state);
                        }
                        // Query: snapshot vs fresh fold, bit-identical.
                        _ => {
                            let snap = shard.read_snapshot(&stats);
                            let (count, quantiles, wcount, wq) = {
                                let mut state = lock(&shard.state);
                                let r = fresh_fold(&mut state, &qs);
                                shard.publish_epoch(&state);
                                r
                            };
                            prop_assert_eq!(snap.count, count);
                            prop_assert_eq!(snap.weighted_count.to_bits(), wcount.to_bits());
                            if count > 0 {
                                prop_assert_eq!(
                                    snap.resident.quantiles(&qs).unwrap(),
                                    quantiles.clone(),
                                    "{}: snapshot quantiles must equal the fresh fold",
                                    config.name()
                                );
                            }
                            if let Ok(expected) = &wq {
                                prop_assert_eq!(
                                    &snap.weighted.quantiles(&qs).unwrap(),
                                    expected
                                );
                            }
                            // Pin the first non-empty snapshot and its
                            // answers for the isolation check below.
                            if held.is_none() && count > 0 {
                                held = Some((
                                    Arc::clone(&snap),
                                    snap.resident.quantiles(&qs).unwrap(),
                                    count,
                                ));
                            }
                        }
                    }
                    // Isolation: the held snapshot is immutable — its
                    // answers must not move no matter what landed since.
                    if let Some((snap, quantiles, count)) = &held {
                        prop_assert_eq!(&snap.resident.quantiles(&qs).unwrap(), quantiles);
                        prop_assert_eq!(snap.count, *count);
                    }
                }
            }
        }
    }

    #[test]
    fn quiesced_reads_are_exact_and_cached() {
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let stats = Stats::default();
        let tenant = Tenant::new("t", config, 1, 64, 4, 10).unwrap();
        let shard = &tenant.shards[0];
        absorb(
            &tenant,
            &stats,
            "m",
            &integer_frame(config, &[1.0, 2.0, 3.0]),
            false,
        );
        // First read rebuilds (the shard is quiesced, no snapshot yet).
        let first = shard.read_snapshot(&stats);
        assert_eq!(first.count, 3);
        assert_eq!(shard.snapshot_epoch(), shard.data_epoch());
        // Second read serves the very same Arc: zero lock holds.
        let second = shard.read_snapshot(&stats);
        assert!(Arc::ptr_eq(&first, &second));
        let rebuilds = stats
            .snapshot_rebuilds
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(rebuilds, 1);
        // New data on a quiesced shard invalidates: next read rebuilds.
        absorb(&tenant, &stats, "m", &integer_frame(config, &[4.0]), false);
        let third = shard.read_snapshot(&stats);
        assert_eq!(third.count, 4);
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn cacheable_matches_the_query_family() {
        for line in [
            "COUNT t",
            "count t",
            "WCOUNT t",
            "QUANTILE t 0.5 0.99",
            "wquantile t 0.5",
            "SERIES t m 0.9",
        ] {
            assert!(cacheable(line), "{line}");
        }
        for line in ["PING", "STATS", "SYNC", "DUMP t 0", "", "  ", "QUANT t"] {
            assert!(!cacheable(line), "{line}");
        }
    }

    #[test]
    fn cache_round_trips_and_invalidates_on_epoch_change() {
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let stats = Stats::default();
        let tenant = Arc::new(Tenant::new("t", config, 2, 64, 4, 10).unwrap());
        absorb(
            &tenant,
            &stats,
            "m",
            &integer_frame(config, &[1.0, 2.0]),
            false,
        );
        let cache = QueryCache::default();
        let mut out = Vec::new();

        // Miss on an unknown line.
        assert!(!cache.serve("COUNT t", &mut out, &stats));

        // Store an answer computed from the current snapshots.
        let epochs: Vec<u64> = tenant
            .shards
            .iter()
            .map(|s| s.read_snapshot(&stats).epoch)
            .collect();
        cache.store(
            "COUNT t",
            CacheFill {
                tenant: Arc::clone(&tenant),
                scope: CacheScope::Snapshots,
                epochs,
            },
            b"+OK 2\n",
        );
        out.clear();
        assert!(cache.serve("COUNT t", &mut out, &stats));
        assert_eq!(out, b"+OK 2\n");

        // New data on the (now quiesced) owning shard: entry goes stale.
        absorb(&tenant, &stats, "m", &integer_frame(config, &[3.0]), false);
        out.clear();
        assert!(!cache.serve("COUNT t", &mut out, &stats));
        assert!(out.is_empty());
        assert_eq!(
            stats
                .query_cache_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            stats
                .query_cache_misses
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }
}
