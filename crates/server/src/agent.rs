//! The agent half of the fleet: [`AgentSender`] ships per-window
//! sketches to a `sketchd` server, reconnecting with bounded,
//! jittered exponential backoff when the server restarts or the
//! network hiccups.
//!
//! ## Frame atomicity across reconnects
//!
//! Every frame is assembled into one contiguous buffer —
//! `varint(length) | envelope` — and sent with a **single** `write_all`.
//! If that call fails, the kernel was handed at most a strict prefix of
//! the frame, so the server sees a truncated frame, discards it, and
//! counts a disconnect; nothing half-written ever reaches tenant state.
//! The sender then reconnects and resends the *whole* frame, which
//! therefore cannot duplicate data the server already absorbed. (This
//! is at-least-once delivery with no torn frames — not exactly-once: a
//! server killed after fully reading a frame but the sender's `send`
//! still returning an error can induce a resend the operator sees as a
//! retry, and a fully-delivered frame on a connection the agent never
//! reuses is simply counted once.)
//!
//! The reconnect handshake (`INGEST <tenant>\n` plus the `DDSF` stream
//! header) is likewise one write, so a new connection is either fully
//! established or not at all.

use std::io::Write;
use std::time::Duration;

use ddsketch::codec::varint::put_varint;
use ddsketch::codec::FRAME_STREAM_VERSION;
use ddsketch::AnyDDSketch;
use rand::prelude::*;

use crate::error::ServerError;
use crate::net::{Conn, Endpoint};
use crate::protocol::{encode_envelope, valid_name};

/// Bounded-retry knobs for [`AgentSender`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per operation (first try included) before giving up
    /// with [`ServerError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential
    /// with full jitter — uniform in `(0, base·2^(attempt-1)]`, capped
    /// at `max_backoff` — so a fleet of agents reconnecting after a
    /// server restart does not stampede in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut SmallRng) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        let cap = exp.min(self.max_backoff).max(Duration::from_micros(1));
        cap.mul_f64(rng.random_range(0.0f64..1.0).max(f64::EPSILON))
    }
}

/// Client-side ingest library: connects to a [`crate::ServerHandle`]'s
/// endpoint, speaks the ingest handshake, and ships envelope frames.
#[derive(Debug)]
pub struct AgentSender {
    endpoint: Endpoint,
    tenant: String,
    policy: RetryPolicy,
    conn: Option<Conn>,
    rng: SmallRng,
    /// Scratch for the envelope body and the final framed bytes.
    envelope: Vec<u8>,
    frame: Vec<u8>,
    frames_sent: u64,
    connects: u64,
}

impl AgentSender {
    /// Connect to `endpoint` as `tenant` with the default retry policy.
    pub fn connect(endpoint: Endpoint, tenant: &str) -> Result<Self, ServerError> {
        Self::with_policy(endpoint, tenant, RetryPolicy::default())
    }

    /// Connect with an explicit retry policy.
    pub fn with_policy(
        endpoint: Endpoint,
        tenant: &str,
        policy: RetryPolicy,
    ) -> Result<Self, ServerError> {
        if !valid_name(tenant) {
            return Err(ServerError::Protocol(format!(
                "invalid tenant name {tenant:?}"
            )));
        }
        if policy.max_attempts == 0 {
            return Err(ServerError::Protocol("max_attempts must be > 0".into()));
        }
        // Jitter seed: wall clock ⊕ tenant hash — distinct per agent in
        // practice, and nothing here needs reproducibility.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ crate::state::fnv1a(tenant.as_bytes());
        let mut sender = Self {
            endpoint,
            tenant: tenant.to_string(),
            policy,
            conn: None,
            rng: SmallRng::seed_from_u64(seed),
            envelope: Vec::new(),
            frame: Vec::new(),
            frames_sent: 0,
            connects: 0,
        };
        sender.with_retries(|sender| sender.ensure_connected())?;
        Ok(sender)
    }

    /// The endpoint this sender ships to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Frames successfully written (each with a single `write_all`).
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Connections established beyond the first — how often the sender
    /// had to reconnect.
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    /// Encode `sketch` and ship it for `(metric, ts_secs)`.
    pub fn send(
        &mut self,
        metric: &str,
        ts_secs: u64,
        sketch: &AnyDDSketch,
    ) -> Result<(), ServerError> {
        let payload = sketch.encode();
        self.send_encoded(metric, ts_secs, &payload)
    }

    /// Ship an already-encoded payload (any dialect — `DDS1`/`DDS2`
    /// integer counts or `DDS3` weighted) for `(metric, ts_secs)` — the
    /// allocation-light path for agents that keep encoded bytes around
    /// (or relay frames they received). The server routes `DDS3` frames
    /// to the per-tenant weighted plane by magic.
    pub fn send_encoded(
        &mut self,
        metric: &str,
        ts_secs: u64,
        payload: &[u8],
    ) -> Result<(), ServerError> {
        if !valid_name(metric) {
            return Err(ServerError::Protocol(format!(
                "invalid metric name {metric:?}"
            )));
        }
        self.envelope.clear();
        encode_envelope(&mut self.envelope, metric, ts_secs, payload);
        self.frame.clear();
        put_varint(&mut self.frame, self.envelope.len() as u64);
        self.frame.extend_from_slice(&self.envelope);
        self.with_retries(|sender| {
            sender.ensure_connected()?;
            let conn = sender.conn.as_mut().expect("just connected");
            // One contiguous write: failure ⇒ the server holds at most
            // a strict prefix ⇒ the whole-frame resend cannot duplicate.
            match conn.write_all(&sender.frame) {
                Ok(()) => {
                    sender.frames_sent += 1;
                    Ok(())
                }
                Err(e) => {
                    sender.conn = None;
                    Err(e.into())
                }
            }
        })
    }

    /// Drop the current connection without closing it cleanly — a test
    /// hook simulating an agent crash or network cut mid-stream.
    pub fn drop_connection(&mut self) {
        self.conn = None;
    }

    /// Flush and half-close the stream so the server sees a clean
    /// end-of-stream (EOF on a frame boundary) rather than a disconnect.
    pub fn close(mut self) -> Result<(), ServerError> {
        if let Some(mut conn) = self.conn.take() {
            conn.flush()?;
            conn.shutdown_write()?;
        }
        Ok(())
    }

    /// Run `op` under the bounded retry policy with jittered
    /// exponential backoff between attempts.
    fn with_retries(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<(), ServerError>,
    ) -> Result<(), ServerError> {
        let mut last: Option<ServerError> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                let pause = self.policy.backoff(attempt, &mut self.rng);
                std::thread::sleep(pause);
            }
            match op(self) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(ServerError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last: last.map_or_else(|| "unknown".into(), |e| e.to_string()),
        })
    }

    /// Dial and handshake if not already connected. The handshake line
    /// and the `DDSF` stream header go out as one write (all-or-nothing
    /// connection establishment).
    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut conn = self.endpoint.connect()?;
        let mut hello = Vec::with_capacity(self.tenant.len() + 13);
        hello.extend_from_slice(b"INGEST ");
        hello.extend_from_slice(self.tenant.as_bytes());
        hello.push(b'\n');
        hello.extend_from_slice(b"DDSF");
        hello.push(FRAME_STREAM_VERSION);
        conn.write_all(&hello)?;
        self.connects += 1;
        self.conn = Some(conn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut saw_distinct = false;
        let mut previous = Duration::ZERO;
        for attempt in 1..20 {
            let pause = policy.backoff(attempt, &mut rng);
            assert!(pause > Duration::ZERO);
            assert!(pause <= policy.max_backoff, "attempt {attempt}: {pause:?}");
            if attempt > 1 && pause != previous {
                saw_distinct = true;
            }
            previous = pause;
        }
        assert!(saw_distinct, "jitter must vary the pauses");
    }

    #[test]
    fn invalid_names_are_rejected_before_any_io() {
        let endpoint = Endpoint::Tcp("127.0.0.1:1".parse().unwrap());
        assert!(matches!(
            AgentSender::connect(endpoint, "bad tenant"),
            Err(ServerError::Protocol(_))
        ));
    }

    #[test]
    fn retries_exhaust_against_a_dead_endpoint() {
        // Port 1 on loopback: nothing listens there.
        let endpoint = Endpoint::Tcp("127.0.0.1:1".parse().unwrap());
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        match AgentSender::with_policy(endpoint, "t", policy) {
            Err(ServerError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
