//! [`QueryClient`]: the text-protocol client for a `sketchd` server —
//! quantiles, metric listings, health/stats, checkpoint dumps.
//!
//! Floats travel as shortest-round-trip decimal text, so a value parsed
//! from a response is bit-identical to the `f64` the server computed.

use std::io::{Read, Write};

use pipeline::TimeSeriesStore;

use crate::error::ServerError;
use crate::net::{Conn, Endpoint};
use crate::protocol::LineReader;
use crate::state::{StatsSnapshot, TenantStats};

/// A connected query session.
#[derive(Debug)]
pub struct QueryClient {
    conn: Conn,
    lines: LineReader,
}

impl QueryClient {
    /// Dial `endpoint` and start a query session.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ServerError> {
        Ok(Self {
            conn: endpoint.connect()?,
            lines: LineReader::new(),
        })
    }

    fn read_line(&mut self) -> Result<String, ServerError> {
        loop {
            match self.lines.poll_line(&mut self.conn) {
                Ok(Some(line)) => return Ok(line),
                Ok(None) => {
                    return Err(ServerError::Protocol("server closed the connection".into()))
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Send one raw command line and return the response with its `+OK `
    /// / `+` marker stripped; a `-ERR` response becomes
    /// [`ServerError::Protocol`] carrying the server's message.
    pub fn command(&mut self, line: &str) -> Result<String, ServerError> {
        let mut request = String::with_capacity(line.len() + 1);
        request.push_str(line);
        request.push('\n');
        self.conn.write_all(request.as_bytes())?;
        let response = self.read_line()?;
        if let Some(message) = response.strip_prefix("-ERR ") {
            return Err(ServerError::Protocol(message.to_string()));
        }
        if let Some(rest) = response.strip_prefix("+OK") {
            return Ok(rest.trim_start().to_string());
        }
        if let Some(rest) = response.strip_prefix('+') {
            return Ok(rest.to_string());
        }
        Err(ServerError::Protocol(format!(
            "unparseable response {response:?}"
        )))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServerError> {
        let pong = self.command("PING")?;
        if pong == "PONG" {
            Ok(())
        } else {
            Err(ServerError::Protocol(format!(
                "expected PONG, got {pong:?}"
            )))
        }
    }

    /// The server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServerError> {
        let body = self.command("STATS")?;
        let mut snapshot = StatsSnapshot::default();
        for pair in body.split_ascii_whitespace() {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(ServerError::Protocol(format!("bad stats pair {pair:?}")));
            };
            // The per-shard depth vector and the per-tenant totals are
            // the non-scalar keys.
            if key == "staging_depth" {
                snapshot.staging_depth = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ServerError::Protocol(format!("bad stats value {pair:?}")))?;
                continue;
            }
            if key == "tenants" {
                // `name:frames:weight` per tenant; names may contain
                // `:` but not `,`, so fields split from the right.
                snapshot.tenants = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|entry| {
                        let mut fields = entry.rsplitn(3, ':');
                        let weight = fields.next()?.parse().ok()?;
                        let frames = fields.next()?.parse().ok()?;
                        Some(TenantStats {
                            name: fields.next()?.to_string(),
                            frames_absorbed: frames,
                            weighted_total: weight,
                        })
                    })
                    .collect::<Option<_>>()
                    .ok_or_else(|| ServerError::Protocol(format!("bad stats value {pair:?}")))?;
                continue;
            }
            let value: u64 = value
                .parse()
                .map_err(|_| ServerError::Protocol(format!("bad stats value {pair:?}")))?;
            match key {
                "frames_ingested" => snapshot.frames_ingested = value,
                "frames_rejected" => snapshot.frames_rejected = value,
                "bytes_ingested" => snapshot.bytes_ingested = value,
                "connections_total" => snapshot.connections_total = value,
                "connections_rejected" => snapshot.connections_rejected = value,
                "open_connections" => snapshot.open_connections = value,
                "ingest_disconnects" => snapshot.ingest_disconnects = value,
                "queries_served" => snapshot.queries_served = value,
                "backpressure_waits" => snapshot.backpressure_waits = value,
                "ingest_suspensions" => snapshot.ingest_suspensions = value,
                "reactor_wakeups" => snapshot.reactor_wakeups = value,
                "reactor_events" => snapshot.reactor_events = value,
                "checkpoints_completed" => snapshot.checkpoints_completed = value,
                "query_cache_hits" => snapshot.query_cache_hits = value,
                "query_cache_misses" => snapshot.query_cache_misses = value,
                "snapshot_rebuilds" => snapshot.snapshot_rebuilds = value,
                "snapshot_staleness_max" => snapshot.snapshot_staleness_max = value,
                "evicted_cells" => snapshot.evicted_cells = value,
                _ => {}
            }
        }
        Ok(snapshot)
    }

    /// All tenant names, sorted.
    pub fn tenants(&mut self) -> Result<Vec<String>, ServerError> {
        Ok(self
            .command("TENANTS")?
            .split_ascii_whitespace()
            .map(str::to_string)
            .collect())
    }

    /// All metric names of a tenant, sorted.
    pub fn metrics(&mut self, tenant: &str) -> Result<Vec<String>, ServerError> {
        Ok(self
            .command(&format!("METRICS {tenant}"))?
            .split_ascii_whitespace()
            .map(str::to_string)
            .collect())
    }

    /// Total observation count across a tenant (absorbed frames only;
    /// `SYNC` first for a barrier against in-flight ingest).
    pub fn count(&mut self, tenant: &str) -> Result<u64, ServerError> {
        let body = self.command(&format!("COUNT {tenant}"))?;
        body.trim()
            .parse()
            .map_err(|_| ServerError::Protocol(format!("bad count {body:?}")))
    }

    /// Total resident observation weight across a tenant — integer
    /// counts at weight 1 plus `DDS3` frame weights (`SYNC` first for a
    /// barrier against in-flight ingest).
    pub fn weighted_count(&mut self, tenant: &str) -> Result<f64, ServerError> {
        let body = self.command(&format!("WCOUNT {tenant}"))?;
        body.trim()
            .parse()
            .map_err(|_| ServerError::Protocol(format!("bad weighted count {body:?}")))
    }

    /// Tenant-wide quantile estimates — exact over everything absorbed,
    /// bit-identical to a from-scratch union sketch.
    pub fn quantiles(&mut self, tenant: &str, qs: &[f64]) -> Result<Vec<f64>, ServerError> {
        self.quantiles_command("QUANTILE", tenant, qs)
    }

    /// Tenant-wide **weighted** quantile estimates over both count
    /// planes: integer frames enter at weight 1, `DDS3` frames at their
    /// `f64` weights.
    pub fn weighted_quantiles(
        &mut self,
        tenant: &str,
        qs: &[f64],
    ) -> Result<Vec<f64>, ServerError> {
        self.quantiles_command("WQUANTILE", tenant, qs)
    }

    fn quantiles_command(
        &mut self,
        verb: &str,
        tenant: &str,
        qs: &[f64],
    ) -> Result<Vec<f64>, ServerError> {
        let mut line = format!("{verb} {tenant}");
        for q in qs {
            line.push_str(&format!(" {q:?}"));
        }
        let body = self.command(&line)?;
        let values: Vec<f64> = body
            .split_ascii_whitespace()
            .map(|tok| {
                tok.parse::<f64>()
                    .map_err(|_| ServerError::Protocol(format!("bad quantile {tok:?}")))
            })
            .collect::<Result<_, _>>()?;
        if values.len() != qs.len() {
            return Err(ServerError::Protocol(format!(
                "asked {} quantiles, got {}",
                qs.len(),
                values.len()
            )));
        }
        Ok(values)
    }

    /// Convenience: one tenant-wide quantile.
    pub fn quantile(&mut self, tenant: &str, q: f64) -> Result<f64, ServerError> {
        Ok(self.quantiles(tenant, std::slice::from_ref(&q))?[0])
    }

    /// Convenience: one tenant-wide weighted quantile.
    pub fn weighted_quantile(&mut self, tenant: &str, q: f64) -> Result<f64, ServerError> {
        Ok(self.weighted_quantiles(tenant, std::slice::from_ref(&q))?[0])
    }

    /// The per-window quantile series of one metric:
    /// `(window_start, estimate)` pairs.
    pub fn series(
        &mut self,
        tenant: &str,
        metric: &str,
        q: f64,
    ) -> Result<Vec<(u64, f64)>, ServerError> {
        let body = self.command(&format!("SERIES {tenant} {metric} {q:?}"))?;
        body.split_ascii_whitespace()
            .map(|pair| {
                let (window, value) = pair
                    .split_once('=')
                    .ok_or_else(|| ServerError::Protocol(format!("bad series pair {pair:?}")))?;
                Ok((
                    window.parse().map_err(|_| {
                        ServerError::Protocol(format!("bad series window {pair:?}"))
                    })?,
                    value
                        .parse()
                        .map_err(|_| ServerError::Protocol(format!("bad series value {pair:?}")))?,
                ))
            })
            .collect()
    }

    /// Per-shard staging depth as `(current, high watermark)` pairs.
    pub fn shards(&mut self, tenant: &str) -> Result<Vec<(usize, usize)>, ServerError> {
        let body = self.command(&format!("SHARDS {tenant}"))?;
        let mut parts = body.split_ascii_whitespace();
        let declared: usize = parts
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ServerError::Protocol(format!("bad shard count in {body:?}")))?;
        let depths: Vec<(usize, usize)> = parts
            .map(|pair| {
                let (depth, high) = pair
                    .split_once(':')
                    .ok_or_else(|| ServerError::Protocol(format!("bad shard pair {pair:?}")))?;
                Ok((
                    depth
                        .parse()
                        .map_err(|_| ServerError::Protocol(format!("bad shard depth {pair:?}")))?,
                    high.parse()
                        .map_err(|_| ServerError::Protocol(format!("bad shard high {pair:?}")))?,
                ))
            })
            .collect::<Result<_, ServerError>>()?;
        if depths.len() != declared {
            return Err(ServerError::Protocol(format!(
                "shard count mismatch in {body:?}"
            )));
        }
        Ok(depths)
    }

    /// Barrier: returns once every frame staged before the call has been
    /// absorbed into tenant state.
    pub fn sync(&mut self) -> Result<(), ServerError> {
        self.command("SYNC").map(|_| ())
    }

    /// Trigger an on-demand checkpoint sweep; returns the file count.
    pub fn checkpoint(&mut self) -> Result<usize, ServerError> {
        let body = self.command("CHECKPOINT")?;
        body.trim()
            .parse()
            .map_err(|_| ServerError::Protocol(format!("bad checkpoint count {body:?}")))
    }

    /// Fetch one shard's raw checkpoint stream (`+DUMP <len>` followed
    /// by exactly `len` binary bytes).
    pub fn dump(&mut self, tenant: &str, shard: usize) -> Result<Vec<u8>, ServerError> {
        let mut request = format!("DUMP {tenant} {shard}");
        request.push('\n');
        self.conn.write_all(request.as_bytes())?;
        let response = self.read_line()?;
        if let Some(message) = response.strip_prefix("-ERR ") {
            return Err(ServerError::Protocol(message.to_string()));
        }
        let len: usize = response
            .strip_prefix("+DUMP ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| ServerError::Protocol(format!("bad dump response {response:?}")))?;
        let mut bytes = vec![0u8; len];
        self.conn.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Fetch one shard's store as a restored [`TimeSeriesStore`] — the
    /// length-delimited dump composes with the until-EOF `restore` via
    /// an exact-length read.
    pub fn fetch_store(
        &mut self,
        tenant: &str,
        shard: usize,
    ) -> Result<TimeSeriesStore, ServerError> {
        let bytes = self.dump(tenant, shard)?;
        Ok(TimeSeriesStore::restore(bytes.as_slice())?)
    }

    /// Request server shutdown (the owning process completes it via
    /// [`crate::ServerHandle::shutdown`]).
    pub fn shutdown_server(&mut self) -> Result<(), ServerError> {
        self.command("SHUTDOWN").map(|_| ())
    }

    /// End the session cleanly.
    pub fn quit(mut self) -> Result<(), ServerError> {
        self.command("QUIT").map(|_| ())
    }
}
