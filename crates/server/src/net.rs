//! Transport plumbing: one listener/stream abstraction over TCP and
//! Unix-domain sockets, so every other module is transport-agnostic.
//!
//! `std::net` + `std::os::unix::net` only — the server works fully
//! offline on loopback, which is exactly how the soak harness and CI
//! drive it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where to bind a server.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address string, e.g. `"127.0.0.1:0"` (port 0 picks a free
    /// port; the actual one is in the returned [`Endpoint`]).
    Tcp(String),
    /// A Unix-domain socket path. An existing socket file at the path is
    /// removed before binding (the conventional daemon behaviour).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A connectable address — what a bound listener actually listens on,
/// and what [`crate::AgentSender`]/[`crate::QueryClient`] dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A resolved TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

impl Endpoint {
    /// Dial the endpoint, returning a connected stream.
    pub(crate) fn connect(&self) -> io::Result<Conn> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A bound listening socket of either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Accept-backlog requested at bind time. `std` hardcodes 128, which a
/// fleet of agents reconnecting at once (or a connection-scaling bench)
/// overflows — and on Linux a listen-queue overflow activates SYN
/// cookies, under which a connection's tail segments can be silently
/// dropped. The kernel clamps this to `net.core.somaxconn`.
const LISTEN_BACKLOG: i32 = 4096;

#[cfg(unix)]
extern "C" {
    fn listen(fd: i32, backlog: i32) -> i32;
}

/// Grow the accept backlog of an already-listening socket: POSIX allows
/// a second `listen(2)` on a listening fd to re-specify the queue
/// length. Best-effort — the socket already works with the default.
#[cfg(unix)]
fn widen_backlog(fd: std::os::fd::RawFd) {
    // SAFETY: `fd` is a valid listening socket owned by the caller;
    // `listen` does not retain it.
    let _ = unsafe { listen(fd, LISTEN_BACKLOG) };
}

#[cfg(not(unix))]
fn widen_backlog(_fd: i32) {}

impl Listener {
    /// Bind `bind`, returning the listener and the concrete endpoint
    /// (with the OS-assigned port resolved for `Tcp(":0")` binds).
    pub(crate) fn bind(bind: &Bind) -> io::Result<(Self, Endpoint)> {
        match bind {
            Bind::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                #[cfg(unix)]
                widen_backlog(std::os::fd::AsRawFd::as_raw_fd(&listener));
                let endpoint = Endpoint::Tcp(listener.local_addr()?);
                Ok((Listener::Tcp(listener), endpoint))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // Stale socket files from a previous run would make bind
                // fail with AddrInUse even though nothing is listening.
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                let listener = UnixListener::bind(path)?;
                widen_backlog(std::os::fd::AsRawFd::as_raw_fd(&listener));
                Ok((Listener::Unix(listener), Endpoint::Unix(path.clone())))
            }
        }
    }

    /// Accept one connection (blocking unless the listener is in
    /// nonblocking mode, in which case `WouldBlock` means "no pending
    /// connection right now").
    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }

    /// Switch the listener between blocking and nonblocking accepts —
    /// the reactor registers the listener for readiness instead of
    /// dedicating an accept thread.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }
}

#[cfg(unix)]
impl std::os::fd::AsRawFd for Listener {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

/// A connected stream of either transport. `Read`/`Write` delegate to
/// the inner socket, so [`ddsketch::codec::FrameReader`] and the line
/// protocol run over both transports unchanged.
#[derive(Debug)]
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Set (or clear) the read timeout. With a timeout set, stalled
    /// reads raise `WouldBlock`/`TimedOut`, which the frame reader
    /// surfaces as the retryable [`ddsketch::SketchError::WouldBlock`] —
    /// the tick that lets server threads poll their shutdown flag.
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Half-close the write side, signalling clean end-of-stream to the
    /// peer while keeping the read side open.
    pub(crate) fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Switch between blocking and nonblocking I/O. In nonblocking mode
    /// stalled reads/writes raise `WouldBlock` immediately — the mode
    /// every reactor-owned socket runs in.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

#[cfg(unix)]
impl std::os::fd::AsRawFd for Conn {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}
