//! The `sketchd` wire protocol: the ingest envelope and the line-based
//! query dialect.
//!
//! ## Connection handshake
//!
//! Every connection opens with one text line. `INGEST <tenant>` switches
//! the connection to the binary ingest stream; anything else is treated
//! as the first command of a query session.
//!
//! ## Ingest stream (binary)
//!
//! After the handshake line the agent writes a standard `DDSF` frame
//! stream ([`ddsketch::codec::FrameWriter`] layout). Each frame body is
//! a routing envelope around one encoded sketch payload:
//!
//! | field    | encoding                                       |
//! |----------|------------------------------------------------|
//! | metric   | varint length + UTF-8 bytes                    |
//! | ts_secs  | varint                                         |
//! | payload  | `DDS1`/`DDS2`/`DDS3` sketch bytes to frame end |
//!
//! Integer (`DDS1`/`DDS2`) payloads feed the exact `u64` plane: the
//! shard's aggregator and its windowed time-series store. Weighted
//! (`DDS3`) payloads feed the shard's weighted-plane aggregator.
//!
//! The ingest direction is fire-and-forget: the server never writes on
//! an ingest connection, so an agent's send path is a single
//! `write_all` per frame — which is also what makes reconnect-and-resend
//! atomic (a failed `write_all` means the server saw at most a strict
//! prefix of the frame, which it discards as a truncated frame).
//!
//! ## Query session (text lines, one binary escape)
//!
//! Requests are space-separated lines; responses are a single line
//! starting `+` on success or `-ERR <message>` on failure. Floats are
//! rendered with Rust's shortest-round-trip formatting, so a parsed
//! response is bit-identical to the server's `f64`. `DUMP` alone
//! follows its response line with raw binary: `+DUMP <n>` and then
//! exactly `n` bytes of [`pipeline::TimeSeriesStore::checkpoint`]
//! stream.

use std::io::{self, Read};

use ddsketch::codec::varint::{get_varint, put_varint};
use ddsketch::SketchError;

/// Ceiling on one protocol line (handshake or query), bytes including
/// nothing — the terminating `\n` is not stored. Longer lines are a
/// protocol error; the connection is closed.
pub const MAX_LINE: usize = 8192;

/// Ceiling on a metric or tenant name, in bytes.
pub const MAX_NAME: usize = 256;

/// Whether `name` is a valid tenant or metric name: 1..=[`MAX_NAME`]
/// bytes of `[A-Za-z0-9._:-]`. The charset deliberately excludes
/// whitespace (names travel on space-separated lines), `@` (used as the
/// tenant/shard separator in checkpoint filenames), and path
/// separators.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

/// Append one ingest envelope (metric, timestamp, payload) to `out`.
pub(crate) fn encode_envelope(out: &mut Vec<u8>, metric: &str, ts_secs: u64, payload: &[u8]) {
    put_varint(out, metric.len() as u64);
    out.extend_from_slice(metric.as_bytes());
    put_varint(out, ts_secs);
    out.extend_from_slice(payload);
}

/// Decode an ingest envelope into `(metric, ts_secs, payload_bytes)`.
pub(crate) fn decode_envelope(frame: &[u8]) -> Result<(&str, u64, &[u8]), SketchError> {
    let mut buf = frame;
    let len = usize::try_from(get_varint(&mut buf)?)
        .ok()
        .filter(|&len| len <= MAX_NAME && len <= buf.len())
        .ok_or_else(|| SketchError::Malformed("envelope metric length out of range".into()))?;
    let (name, rest) = buf.split_at(len);
    let metric = std::str::from_utf8(name)
        .map_err(|_| SketchError::Malformed("envelope metric is not UTF-8".into()))?;
    if !valid_name(metric) {
        return Err(SketchError::Malformed(format!(
            "invalid metric name {metric:?}"
        )));
    }
    let mut buf = rest;
    let ts_secs = get_varint(&mut buf)?;
    Ok((metric, ts_secs, buf))
}

/// Byte-at-a-time line reader that is resumable across
/// `WouldBlock`/`TimedOut`: a stalled read keeps the partial line and
/// the next [`LineReader::poll_line`] call continues it. `Interrupted`
/// is retried internally. Reading one byte at a time means the reader
/// never consumes bytes past the `\n` — essential on ingest
/// connections, where binary frames follow the handshake line.
#[derive(Debug, Default)]
pub(crate) struct LineReader {
    partial: Vec<u8>,
}

impl LineReader {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Read up to the next `\n`. `Ok(Some(line))` strips the newline
    /// (and one optional preceding `\r`); `Ok(None)` is clean EOF before
    /// any byte of a new line; EOF mid-line, an over-long line, or
    /// non-UTF-8 bytes are `InvalidData`; `WouldBlock`/`TimedOut`
    /// surface with the partial line retained.
    pub(crate) fn poll_line(&mut self, source: &mut impl Read) -> io::Result<Option<String>> {
        let mut byte = [0u8; 1];
        loop {
            match source.read(&mut byte) {
                Ok(0) => {
                    return if self.partial.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "EOF in the middle of a protocol line",
                        ))
                    };
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        let mut line = std::mem::take(&mut self.partial);
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        return String::from_utf8(line).map(Some).map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "protocol line is not UTF-8")
                        });
                    }
                    if self.partial.len() >= MAX_LINE {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "protocol line exceeds the length ceiling",
                        ));
                    }
                    self.partial.push(byte[0]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A parsed query command.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Command {
    Ping,
    Stats,
    Tenants,
    Shards(String),
    Metrics(String),
    Count(String),
    WCount(String),
    Quantile(String, Vec<f64>),
    WQuantile(String, Vec<f64>),
    Series {
        tenant: String,
        metric: String,
        q: f64,
    },
    Dump {
        tenant: String,
        shard: usize,
    },
    Sync,
    Checkpoint,
    Shutdown,
    Quit,
}

/// Parse one query line. Errors carry the message to send as `-ERR`.
pub(crate) fn parse_command(line: &str) -> Result<Command, String> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().ok_or("empty command")?;
    let mut name_arg = |what: &str| -> Result<String, String> {
        let name = parts.next().ok_or_else(|| format!("missing {what}"))?;
        if !valid_name(name) {
            return Err(format!("invalid {what} {name:?}"));
        }
        Ok(name.to_string())
    };
    let command = match verb.to_ascii_uppercase().as_str() {
        "PING" => Command::Ping,
        "STATS" => Command::Stats,
        "TENANTS" => Command::Tenants,
        "SHARDS" => Command::Shards(name_arg("tenant")?),
        "METRICS" => Command::Metrics(name_arg("tenant")?),
        "COUNT" => Command::Count(name_arg("tenant")?),
        "WCOUNT" => Command::WCount(name_arg("tenant")?),
        "QUANTILE" | "WQUANTILE" => {
            let tenant = name_arg("tenant")?;
            let qs: Vec<f64> = parts
                .by_ref()
                .map(|tok| {
                    tok.parse::<f64>()
                        .map_err(|_| format!("bad quantile {tok:?}"))
                })
                .collect::<Result<_, _>>()?;
            if qs.is_empty() {
                return Err(format!(
                    "{} needs at least one q",
                    verb.to_ascii_uppercase()
                ));
            }
            if verb.eq_ignore_ascii_case("WQUANTILE") {
                Command::WQuantile(tenant, qs)
            } else {
                Command::Quantile(tenant, qs)
            }
        }
        "SERIES" => {
            let tenant = name_arg("tenant")?;
            let metric = name_arg("metric")?;
            let q = parts
                .next()
                .ok_or("missing q")?
                .parse::<f64>()
                .map_err(|_| "bad q".to_string())?;
            Command::Series { tenant, metric, q }
        }
        "DUMP" => {
            let tenant = name_arg("tenant")?;
            let shard = parts
                .next()
                .ok_or("missing shard index")?
                .parse::<usize>()
                .map_err(|_| "bad shard index".to_string())?;
            Command::Dump { tenant, shard }
        }
        "SYNC" => Command::Sync,
        "CHECKPOINT" => Command::Checkpoint,
        "SHUTDOWN" => Command::Shutdown,
        "QUIT" => Command::Quit,
        other => return Err(format!("unknown command {other:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing arguments after {verb}"));
    }
    Ok(command)
}

/// Render an `f64` so that parsing the text back yields the identical
/// bits (Rust's `{:?}` is shortest-round-trip).
pub(crate) fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_validated() {
        assert!(valid_name("api.latency-p99_v2:prod"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("has@at"));
        assert!(!valid_name("has/slash"));
        assert!(!valid_name(&"x".repeat(MAX_NAME + 1)));
    }

    #[test]
    fn envelope_roundtrip() {
        let mut frame = Vec::new();
        encode_envelope(&mut frame, "api.latency", 1234, b"payload-bytes");
        let (metric, ts, payload) = decode_envelope(&frame).unwrap();
        assert_eq!(metric, "api.latency");
        assert_eq!(ts, 1234);
        assert_eq!(payload, b"payload-bytes");

        // Hostile envelopes: truncation and oversized claimed lengths.
        assert!(decode_envelope(&frame[..3]).is_err());
        assert!(decode_envelope(b"").is_err());
        let mut hostile = Vec::new();
        put_varint(&mut hostile, u64::MAX);
        assert!(decode_envelope(&hostile).is_err());
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(
            parse_command("quantile acme 0.5 0.99").unwrap(),
            Command::Quantile("acme".into(), vec![0.5, 0.99])
        );
        assert_eq!(
            parse_command("SERIES acme api.latency 0.99").unwrap(),
            Command::Series {
                tenant: "acme".into(),
                metric: "api.latency".into(),
                q: 0.99
            }
        );
        assert_eq!(
            parse_command("DUMP acme 3").unwrap(),
            Command::Dump {
                tenant: "acme".into(),
                shard: 3
            }
        );
        assert_eq!(
            parse_command("WCOUNT acme").unwrap(),
            Command::WCount("acme".into())
        );
        assert_eq!(
            parse_command("wquantile acme 0.5 0.99").unwrap(),
            Command::WQuantile("acme".into(), vec![0.5, 0.99])
        );
        assert!(parse_command("").is_err());
        assert!(parse_command("QUANTILE acme").is_err());
        assert!(parse_command("QUANTILE acme zero.five").is_err());
        assert!(parse_command("WQUANTILE acme").is_err());
        assert!(parse_command("WCOUNT").is_err());
        assert!(parse_command("BOGUS").is_err());
        assert!(parse_command("PING extra").is_err());
        assert!(parse_command("COUNT bad name").is_err());
    }

    #[test]
    fn f64_text_roundtrip_is_bit_identical() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -42.42,
        ] {
            let parsed: f64 = fmt_f64(v).parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn line_reader_handles_fragmented_and_stalled_sources() {
        struct OneByte<'a>(&'a [u8], usize, bool);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.2 = !self.2;
                if self.2 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
                }
                if self.1 == self.0.len() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut source = OneByte(b"INGEST acme\r\nsecond line\n", 0, false);
        let mut reader = LineReader::new();
        let mut lines = Vec::new();
        loop {
            match reader.poll_line(&mut source) {
                Ok(Some(line)) => lines.push(line),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(lines, ["INGEST acme", "second line"]);
    }
}
