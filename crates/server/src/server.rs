//! The `sketchd` server proper: accept loop, ingest and query
//! connection handlers, shard workers, the checkpointer, and graceful
//! shutdown.
//!
//! ## Thread model
//!
//! * **accept thread** — blocks in `accept`, spawns one connection
//!   thread per peer.
//! * **connection threads** — read the handshake line, then either pump
//!   an ingest frame stream (decode → route → stage) or answer query
//!   commands. All reads run with a short timeout; the resulting
//!   `WouldBlock` ticks are where the thread polls the shutdown flag,
//!   riding the frame reader's lossless-resume guarantee.
//! * **shard workers** — one per (tenant, shard): pop staged jobs and
//!   absorb them into the shard's aggregator + time-series store under
//!   the shard's state lock.
//! * **checkpointer** — optional: periodically snapshots every shard's
//!   store to `{tenant}@{shard}.ddts` (tmp + rename, so a crash
//!   mid-write never clobbers the previous good checkpoint).
//!
//! Shutdown ([`ServerHandle::shutdown`]) is ordered so that no accepted
//! frame is lost: stop accepting → connection threads exit at their
//! next tick → staging queues close and workers drain the backlog →
//! one final checkpoint sweep.

use std::fs;
use std::io::{self, ErrorKind, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ddsketch::codec::{FrameReader, SketchView, DEFAULT_MAX_FRAME_LEN};
use ddsketch::{
    AnyDDSketch, AnyWeightedDDSketch, SketchConfig, SketchError, SketchPayload,
    WeightedSketchPayload,
};
use pipeline::TimeSeriesStore;

use crate::error::ServerError;
use crate::net::{Bind, Conn, Endpoint, Listener};
use crate::protocol::{decode_envelope, fmt_f64, parse_command, valid_name, Command, LineReader};
use crate::readplane::{cacheable, CacheFill, CacheScope, QueryCache, ShardSnapshot};
use crate::state::{
    lock, Job, JobPayload, Registry, Shard, ShardState, Stats, StatsSnapshot, Tenant, TenantStats,
};

/// Which I/O plane serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One OS thread per connection, blocking reads with a poll-tick
    /// timeout. Simple, portable, and competitive at small fleets.
    Threaded,
    /// A readiness-driven event loop (epoll on Linux, `poll(2)` on
    /// other POSIX) multiplexing every socket over
    /// [`ServerConfig::reactor_threads`] threads. No per-connection
    /// threads, no timeout churn — the fleet-scale default on Linux.
    Reactor,
}

impl Default for IoModel {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoModel::Reactor
        } else {
            IoModel::Threaded
        }
    }
}

/// How queries read tenant state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPlane {
    /// Serve from per-shard epoch-labelled read snapshots and the
    /// answer cache: steady-state queries never take a shard state
    /// lock, and answers are bit-identical to a fresh fold at the
    /// epoch they carry (see the crate-level "Read plane" section).
    #[default]
    EpochCached,
    /// Fold per-shard state under the shard locks on every query — the
    /// pre-snapshot behaviour, kept as the measured baseline for the
    /// query-latency bench.
    LockedFold,
}

/// Knobs for a [`ServerHandle::spawn`]ed server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sketch configuration every tenant runs. Frames whose payload
    /// disagrees on mapping, store family, or α are rejected.
    pub sketch: SketchConfig,
    /// Time-series window width, seconds.
    pub window_secs: u64,
    /// Aggregator fold threshold (pending payloads per shard before a
    /// fold into the resident sketch).
    pub fold_threshold: usize,
    /// Shards per tenant; each metric is owned by exactly one shard.
    pub shards_per_tenant: usize,
    /// Staging-queue bound per shard — the backpressure knob. A full
    /// queue blocks the pushing connection thread, which stops reading
    /// its socket, which throttles the agent via TCP.
    pub staging_bound: usize,
    /// Read timeout on every server-side socket: the poll tick at which
    /// blocked reads recheck the shutdown flag.
    pub read_timeout: Duration,
    /// Hostile-length clamp for inbound frames.
    pub max_frame_len: usize,
    /// Where checkpoints live. `None` disables checkpointing (the
    /// `CHECKPOINT` command then answers `-ERR`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Interval between periodic checkpoint sweeps; `None` means only
    /// on-demand (`CHECKPOINT`) and final (shutdown) sweeps run.
    pub checkpoint_interval: Option<Duration>,
    /// Which I/O plane serves connections (see [`IoModel`]).
    pub io_model: IoModel,
    /// Cap on simultaneously open connections. Arrivals past the cap
    /// get a best-effort `-ERR server at connection capacity` line and
    /// are dropped, under both I/O models.
    pub max_connections: usize,
    /// Event-loop threads under [`IoModel::Reactor`] (clamped to ≥ 1).
    /// One loop comfortably saturates the shard workers; raise it only
    /// when profiles show the I/O plane itself is the bottleneck.
    pub reactor_threads: usize,
    /// How queries read tenant state (see [`ReadPlane`]).
    pub read_plane: ReadPlane,
    /// TTL retention: windowed-store cells whose window ended more than
    /// this far before the newest ingested window are evicted by a
    /// periodic sweep (`STATS` counts them as `evicted_cells`). `None`
    /// retains everything — the pre-retention behaviour.
    pub retention: Option<Duration>,
    /// Under [`ReadPlane::EpochCached`], how many frames a shard worker
    /// absorbs between snapshot republishes while its queue stays busy
    /// (it always republishes when the queue drains). This bounds how
    /// far a served answer can trail ingest during a sustained burst.
    pub snapshot_refresh: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            sketch: SketchConfig::dense_collapsing(0.01, 2048),
            window_secs: 10,
            fold_threshold: 32,
            shards_per_tenant: 4,
            staging_bound: 256,
            read_timeout: Duration::from_millis(50),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            checkpoint_dir: None,
            checkpoint_interval: None,
            io_model: IoModel::default(),
            max_connections: 1024,
            reactor_threads: 1,
            read_plane: ReadPlane::default(),
            retention: None,
            snapshot_refresh: 64,
        }
    }
}

pub(crate) struct ServerInner {
    pub(crate) config: ServerConfig,
    pub(crate) registry: Registry,
    pub(crate) stats: Stats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) endpoint: Endpoint,
    pub(crate) shard_workers: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Wakes the periodic sweepers (checkpointer, retention) out of
    /// their interval waits — on demand (`CHECKPOINT`) and at shutdown.
    pub(crate) sweep_wake: (Mutex<()>, Condvar),
    pub(crate) query_cache: QueryCache,
}

impl ServerInner {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Full stats snapshot: the atomic counters plus the live per-shard
    /// staging depth (shard index summed across tenants).
    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        snapshot.staging_depth = vec![0u64; self.config.shards_per_tenant];
        for tenant in self.registry.all() {
            for (index, shard) in tenant.shards.iter().enumerate() {
                let (depth, _) = shard.depth();
                snapshot.staging_depth[index] += depth as u64;
            }
            snapshot.tenants.push(TenantStats {
                name: tenant.name.clone(),
                frames_absorbed: tenant.frames_absorbed.load(Ordering::Relaxed),
                weighted_total: tenant.weighted_total(),
            });
        }
        snapshot
    }
}

/// A running `sketchd` server. Dropping the handle shuts the server
/// down gracefully (prefer calling [`ServerHandle::shutdown`] to
/// observe errors and the final stats).
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    #[cfg(unix)]
    reactor: Mutex<Option<crate::reactor::ReactorHandle>>,
    checkpoint_thread: Mutex<Option<JoinHandle<()>>>,
    retention_thread: Mutex<Option<JoinHandle<()>>>,
    done: AtomicBool,
}

impl ServerHandle {
    /// Bind `bind`, restore any checkpoints found in the configured
    /// checkpoint directory, and start serving.
    pub fn spawn(bind: &Bind, config: ServerConfig) -> Result<Self, ServerError> {
        if config.shards_per_tenant == 0 {
            return Err(ServerError::Protocol(
                "shards_per_tenant must be > 0".into(),
            ));
        }
        config.sketch.validate().map_err(ServerError::Sketch)?;
        let (listener, endpoint) = Listener::bind(bind)?;
        let inner = Arc::new(ServerInner {
            config,
            registry: Registry::default(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            endpoint,
            shard_workers: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            sweep_wake: (Mutex::new(()), Condvar::new()),
            query_cache: QueryCache::default(),
        });
        restore_checkpoints(&inner)?;
        let mut accept = None;
        #[cfg(unix)]
        let mut reactor = None;
        match inner.config.io_model {
            IoModel::Threaded => {
                let inner = inner.clone();
                accept = Some(std::thread::spawn(move || accept_loop(&inner, &listener)));
            }
            IoModel::Reactor => {
                #[cfg(unix)]
                {
                    reactor = Some(crate::reactor::spawn(&inner, listener)?);
                }
                #[cfg(not(unix))]
                {
                    return Err(ServerError::Protocol(
                        "io_model: Reactor requires a POSIX platform".into(),
                    ));
                }
            }
        }
        let checkpointer = inner.config.checkpoint_interval.map(|interval| {
            let inner = inner.clone();
            std::thread::spawn(move || checkpoint_loop(&inner, interval))
        });
        let retainer = inner.config.retention.map(|width| {
            let inner = inner.clone();
            std::thread::spawn(move || retention_loop(&inner, width))
        });
        Ok(Self {
            inner,
            accept_thread: Mutex::new(accept),
            #[cfg(unix)]
            reactor: Mutex::new(reactor),
            checkpoint_thread: Mutex::new(checkpointer),
            retention_thread: Mutex::new(retainer),
            done: AtomicBool::new(false),
        })
    }

    /// The concrete endpoint the server listens on (with an
    /// OS-assigned port resolved for `tcp://…:0` binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.inner.endpoint
    }

    /// A point-in-time copy of the server's counters, including the
    /// live per-shard staging depths.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// Whether shutdown has been requested (via this handle or a
    /// `SHUTDOWN` command). The owner should then call
    /// [`ServerHandle::shutdown`] to complete it.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutting_down()
    }

    /// Gracefully shut the server down: stop accepting, let connection
    /// threads exit, drain every staging queue, run one final
    /// checkpoint sweep, and join every thread. Idempotent; returns
    /// the final stats.
    pub fn shutdown(&self) -> Result<StatsSnapshot, ServerError> {
        if self.done.swap(true, Ordering::AcqRel) {
            return Ok(self.inner.stats_snapshot());
        }
        self.inner.shutdown.store(true, Ordering::Release);
        // Reactor loops observe the flag as soon as their waker fires.
        #[cfg(unix)]
        if let Some(reactor) = lock(&self.reactor).take() {
            reactor.join();
        }
        // Unblock a threaded accept loop with a throwaway connection;
        // it checks the flag on every wakeup.
        if let Some(handle) = lock(&self.accept_thread).take() {
            let _ = self.inner.endpoint.connect();
            let _ = handle.join();
        }
        // Connection threads notice the flag at their next read tick.
        for handle in lock(&self.inner.conn_threads).drain(..) {
            let _ = handle.join();
        }
        // Close staging: workers drain the remaining backlog, then exit
        // — accepted frames are never dropped.
        for tenant in self.inner.registry.all() {
            for shard in &tenant.shards {
                shard.close();
            }
        }
        for handle in lock(&self.inner.shard_workers).drain(..) {
            let _ = handle.join();
        }
        // Wake and join the periodic sweepers, then take the final
        // checkpoint sweep ourselves (after the drain, so it includes
        // every frame).
        self.inner.sweep_wake.1.notify_all();
        if let Some(handle) = lock(&self.checkpoint_thread).take() {
            let _ = handle.join();
        }
        if let Some(handle) = lock(&self.retention_thread).take() {
            let _ = handle.join();
        }
        checkpoint_all(&self.inner)?;
        Ok(self.inner.stats_snapshot())
    }

    /// Run one query command in process, exactly as a socket client
    /// would: the response line(s) are appended to `out`, and the
    /// answer cache / read snapshots serve it under the configured
    /// [`ReadPlane`]. Returns `false` for commands that would close the
    /// connection (`SHUTDOWN`, `QUIT`).
    pub fn execute(&self, line: &str, out: &mut Vec<u8>) -> bool {
        execute_line(&self.inner, line, out)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Look a tenant up, creating it (and spawning its shard workers) on
/// first sight.
pub(crate) fn tenant(inner: &Arc<ServerInner>, name: &str) -> Result<Arc<Tenant>, SketchError> {
    let cfg = &inner.config;
    let (tenant, created) = inner.registry.get_or_create(name, || {
        Tenant::new(
            name,
            cfg.sketch,
            cfg.shards_per_tenant,
            cfg.staging_bound,
            cfg.fold_threshold,
            cfg.window_secs,
        )
    })?;
    if created {
        let mut workers = lock(&inner.shard_workers);
        for shard in &tenant.shards {
            let shard = shard.clone();
            let inner = inner.clone();
            let tenant = tenant.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&inner, &tenant, &shard)
            }));
        }
    }
    Ok(tenant)
}

/// One shard worker: absorb staged jobs until the shard closes and its
/// backlog drains. Under [`ReadPlane::EpochCached`] the worker also
/// owns snapshot publishing: it republishes the shard's read snapshot
/// every [`ServerConfig::snapshot_refresh`] absorbed frames while the
/// queue stays busy, and whenever the queue drains — so queries under
/// sustained ingest serve boundedly-stale snapshots without ever
/// contending on the state lock, and a drained shard always serves
/// exact answers.
fn worker_loop(inner: &ServerInner, tenant: &Tenant, shard: &Shard) {
    let refresh_every = inner.config.snapshot_refresh.max(1);
    let mut since_refresh = 0usize;
    while let Some(Job {
        metric,
        ts_secs,
        payload,
    }) = shard.pop()
    {
        let weight = payload.total_weight();
        let mut state = lock(&shard.state);
        let spare = match payload {
            // Integer frames feed both exact-plane sinks from the one
            // decode. Both run the same admission predicate as the
            // connection thread's pre-check, so neither can fail here —
            // but a failure must still leave agg and store consistent:
            // skip both.
            JobPayload::Integer(payload) => {
                match state.store.absorb_payload(&metric, ts_secs, &payload) {
                    Ok(()) => match state.agg.feed_payload(payload) {
                        Ok(()) => {
                            Stats::add(&inner.stats.frames_ingested, 1);
                            Stats::add(&tenant.frames_absorbed, 1);
                            tenant.add_weight(weight);
                            JobPayload::Integer(state.agg.take_spare())
                        }
                        Err(_) => {
                            Stats::add(&inner.stats.frames_rejected, 1);
                            JobPayload::Integer(state.agg.take_spare())
                        }
                    },
                    Err(_) => {
                        Stats::add(&inner.stats.frames_rejected, 1);
                        JobPayload::Integer(payload)
                    }
                }
            }
            // `DDS3` frames land on the weighted plane only (the
            // windowed store's rollups stay on exact integer counts).
            JobPayload::Weighted(payload) => match state.wagg.feed_payload(payload) {
                Ok(()) => {
                    Stats::add(&inner.stats.frames_ingested, 1);
                    Stats::add(&tenant.frames_absorbed, 1);
                    tenant.add_weight(weight);
                    JobPayload::Weighted(state.wagg.take_spare())
                }
                Err(_) => {
                    Stats::add(&inner.stats.frames_rejected, 1);
                    JobPayload::Weighted(state.wagg.take_spare())
                }
            },
        };
        shard.publish_epoch(&state);
        drop(state);
        shard.complete(spare, metric);
        if inner.config.read_plane == ReadPlane::EpochCached {
            since_refresh += 1;
            if since_refresh >= refresh_every || shard.live_depth() == 0 {
                since_refresh = 0;
                shard.refresh_snapshot(&inner.stats);
            }
        }
    }
}

fn accept_loop(inner: &Arc<ServerInner>, listener: &Listener) {
    loop {
        match listener.accept() {
            Ok(mut conn) => {
                if inner.shutting_down() {
                    return;
                }
                let open = inner.stats.open_connections.load(Ordering::Relaxed);
                if open >= inner.config.max_connections as u64 {
                    // Protocol-level reject instead of an unbounded
                    // thread spawn; best-effort so a dead peer can't
                    // stall the accept loop.
                    let _ = conn.write_all(b"-ERR server at connection capacity\n");
                    let _ = conn.shutdown_write();
                    Stats::add(&inner.stats.connections_rejected, 1);
                    continue;
                }
                Stats::add(&inner.stats.connections_total, 1);
                Stats::add(&inner.stats.open_connections, 1);
                let inner2 = inner.clone();
                let handle = std::thread::spawn(move || handle_conn(&inner2, conn));
                lock(&inner.conn_threads).push(handle);
            }
            Err(_) if inner.shutting_down() => return,
            Err(_) => continue,
        }
    }
}

/// Decrements `open_connections` even if the handler panics.
struct ActiveGuard<'a>(&'a Stats);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

pub(crate) fn is_retryable(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn handle_conn(inner: &Arc<ServerInner>, mut conn: Conn) {
    // `open_connections` was counted by the accept loop (it enforces
    // `max_connections` before spawning); the guard pairs with that.
    let _guard = ActiveGuard(&inner.stats);
    if conn
        .set_read_timeout(Some(inner.config.read_timeout))
        .is_err()
    {
        return;
    }
    let mut lines = LineReader::new();
    let first = loop {
        match lines.poll_line(&mut conn) {
            Ok(Some(line)) => break line,
            Ok(None) => return,
            Err(e) if is_retryable(&e) => {
                if inner.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    if let Some(tenant_name) = first.strip_prefix("INGEST ") {
        handle_ingest(inner, conn, tenant_name.trim());
    } else {
        handle_query(inner, conn, first);
    }
}

/// Pump one agent's frame stream into its tenant's shards.
fn handle_ingest(inner: &Arc<ServerInner>, conn: Conn, tenant_name: &str) {
    if !valid_name(tenant_name) {
        Stats::add(&inner.stats.ingest_disconnects, 1);
        return;
    }
    let Ok(tenant) = tenant(inner, tenant_name) else {
        Stats::add(&inner.stats.ingest_disconnects, 1);
        return;
    };
    let mut reader = FrameReader::lazy_with_max_frame_len(conn, inner.config.max_frame_len);
    let mut frame = Vec::new();
    let mut spare_payload = SketchPayload::default();
    let mut spare_weighted = WeightedSketchPayload::default();
    let mut spare_metric = String::new();
    let clean = loop {
        match reader.read_frame(&mut frame) {
            Ok(Some(_)) => {}
            // Clean `DDSF` end-of-stream terminator.
            Ok(None) => break true,
            Err(SketchError::WouldBlock) => {
                if inner.shutting_down() {
                    break false;
                }
                continue;
            }
            // Framing is unrecoverable after a corrupt length or a cut
            // connection: drop the stream; the agent reconnects.
            Err(_) => {
                Stats::add(&inner.stats.frames_rejected, 1);
                break false;
            }
        }
        match decode_envelope(&frame) {
            Ok((metric, ts_secs, payload_bytes)) => {
                // Reject corrupt or incompatible payloads here, before
                // staging — a bad frame never reaches tenant state, and
                // the (intact) framing lets the stream continue. The
                // magic routes the payload to its count plane.
                let payload = decode_admitted(
                    inner,
                    payload_bytes,
                    &mut spare_payload,
                    &mut spare_weighted,
                );
                if let Some(payload) = payload {
                    spare_metric.clear();
                    spare_metric.push_str(metric);
                    Stats::add(&inner.stats.bytes_ingested, frame.len() as u64);
                    let shard = tenant.shard_for(&spare_metric).clone();
                    let job = Job {
                        metric: std::mem::take(&mut spare_metric),
                        ts_secs,
                        payload,
                    };
                    match shard.push(job, &inner.stats) {
                        Ok((payload, metric)) => {
                            match payload {
                                JobPayload::Integer(p) => spare_payload = p,
                                JobPayload::Weighted(p) => spare_weighted = p,
                            }
                            spare_metric = metric;
                        }
                        // The shard closed under us: server shutdown.
                        Err(()) => break false,
                    }
                } else {
                    Stats::add(&inner.stats.frames_rejected, 1);
                }
            }
            Err(_) => Stats::add(&inner.stats.frames_rejected, 1),
        }
    };
    if !clean {
        Stats::add(&inner.stats.ingest_disconnects, 1);
    }
}

/// Decode one envelope payload into the spare buffer of its count plane
/// (routed by the payload magic) and run the admission predicate.
/// Returns the staged payload (the spare is `mem::take`n) or `None` if
/// the frame must be rejected; shared by the threaded handler and the
/// reactor's ingest machines.
pub(crate) fn decode_admitted(
    inner: &ServerInner,
    payload_bytes: &[u8],
    spare_payload: &mut SketchPayload,
    spare_weighted: &mut WeightedSketchPayload,
) -> Option<JobPayload> {
    if payload_bytes.get(..4) == Some(b"DDS3") {
        (spare_weighted.decode_into(payload_bytes).is_ok()
            && spare_weighted.matches_config(&inner.config.sketch))
        .then(|| JobPayload::Weighted(std::mem::take(spare_weighted)))
    } else {
        (spare_payload.decode_into(payload_bytes).is_ok()
            && spare_payload.matches_config(&inner.config.sketch))
        .then(|| JobPayload::Integer(std::mem::take(spare_payload)))
    }
}

fn handle_query(inner: &Arc<ServerInner>, mut conn: Conn, first: String) {
    let mut lines = LineReader::new();
    let mut pending = Some(first);
    let mut out = Vec::new();
    loop {
        let line = match pending.take() {
            Some(line) => line,
            None => match lines.poll_line(&mut conn) {
                Ok(Some(line)) => line,
                Ok(None) => return,
                Err(e) if is_retryable(&e) => {
                    if inner.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            },
        };
        out.clear();
        let keep_going = execute_line(inner, &line, &mut out);
        if conn.write_all(&out).is_err() || !keep_going {
            return;
        }
    }
}

fn respond(out: &mut Vec<u8>, line: &str) {
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

/// Serve one query line, appending the response bytes to `out` (which
/// may already hold earlier responses — the reactor batches). Shared by
/// the threaded handler, the reactor's query machines, and
/// [`ServerHandle::execute`]. Under [`ReadPlane::EpochCached`] the
/// answer cache is probed *before* parsing — a hit is served straight
/// from the entry's rendered bytes, with zero locks held and zero
/// allocations — and successful answers to cacheable commands are
/// stored back with the epoch vector they were computed from. Returns
/// `false` when the connection should close after the flush.
pub(crate) fn execute_line(inner: &Arc<ServerInner>, line: &str, out: &mut Vec<u8>) -> bool {
    Stats::add(&inner.stats.queries_served, 1);
    let cached = inner.config.read_plane == ReadPlane::EpochCached && cacheable(line);
    if cached && inner.query_cache.serve(line, out, &inner.stats) {
        return true;
    }
    match parse_command(line) {
        Ok(command) => {
            let start = out.len();
            let mut fill = None;
            let keep_going = execute_into(inner, command, out, &mut fill);
            if let Some(fill) = fill {
                if cached && out[start..].starts_with(b"+OK") {
                    inner.query_cache.store(line, fill, &out[start..]);
                }
            }
            keep_going
        }
        Err(message) => {
            out.extend_from_slice(format!("-ERR {message}\n").as_bytes());
            true
        }
    }
}

/// Run one parsed query command, appending the response bytes to `out`.
/// Commands the answer cache may serve record a [`CacheFill`] (their
/// freshness scope and epoch vector) in `fill`; everything else leaves
/// it `None`. Returns `false` when the connection should close after
/// the response is flushed.
fn execute_into(
    inner: &Arc<ServerInner>,
    command: Command,
    out: &mut Vec<u8>,
    fill: &mut Option<CacheFill>,
) -> bool {
    match command {
        Command::Ping => respond(out, "+PONG"),
        Command::Stats => {
            let s = inner.stats_snapshot();
            let depths: Vec<String> = s.staging_depth.iter().map(u64::to_string).collect();
            // `name:frames:weight` per tenant — names may contain `:`
            // but not `,`, so readers split tenants on `,` and fields
            // from the right.
            let tenants: Vec<String> = s
                .tenants
                .iter()
                .map(|t| {
                    format!(
                        "{}:{}:{}",
                        t.name,
                        t.frames_absorbed,
                        fmt_f64(t.weighted_total)
                    )
                })
                .collect();
            respond(
                out,
                &format!(
                    "+OK frames_ingested={} frames_rejected={} bytes_ingested={} \
                     connections_total={} connections_rejected={} open_connections={} \
                     ingest_disconnects={} queries_served={} backpressure_waits={} \
                     ingest_suspensions={} reactor_wakeups={} reactor_events={} \
                     checkpoints_completed={} query_cache_hits={} query_cache_misses={} \
                     snapshot_rebuilds={} snapshot_staleness_max={} evicted_cells={} \
                     staging_depth={} tenants={}",
                    s.frames_ingested,
                    s.frames_rejected,
                    s.bytes_ingested,
                    s.connections_total,
                    s.connections_rejected,
                    s.open_connections,
                    s.ingest_disconnects,
                    s.queries_served,
                    s.backpressure_waits,
                    s.ingest_suspensions,
                    s.reactor_wakeups,
                    s.reactor_events,
                    s.checkpoints_completed,
                    s.query_cache_hits,
                    s.query_cache_misses,
                    s.snapshot_rebuilds,
                    s.snapshot_staleness_max,
                    s.evicted_cells,
                    depths.join(","),
                    tenants.join(",")
                ),
            );
        }
        Command::Tenants => {
            let names: Vec<String> = inner
                .registry
                .all()
                .iter()
                .map(|t| t.name.clone())
                .collect();
            respond(out, &format!("+OK {}", names.join(" ")));
        }
        Command::Shards(name) => match inner.registry.get(&name) {
            Some(tenant) => {
                let mut line = format!("+OK {}", tenant.shards.len());
                for shard in &tenant.shards {
                    let (depth, high) = shard.depth();
                    line.push_str(&format!(" {depth}:{high}"));
                }
                respond(out, &line);
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Metrics(name) => match inner.registry.get(&name) {
            Some(tenant) => {
                let mut metrics: Vec<String> = Vec::new();
                for shard in &tenant.shards {
                    let state = lock(&shard.state);
                    metrics.extend(state.store.metrics().map(|(_, m)| m.to_string()));
                }
                metrics.sort();
                metrics.dedup();
                respond(out, &format!("+OK {}", metrics.join(" ")));
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Count(name) => match inner.registry.get(&name) {
            Some(tenant) => match inner.config.read_plane {
                ReadPlane::EpochCached => {
                    let (snaps, cache_fill) = tenant_snapshots(inner, &tenant);
                    let total: u64 = snaps.iter().map(|s| s.count).sum();
                    *fill = Some(cache_fill);
                    respond(out, &format!("+OK {total}"));
                }
                ReadPlane::LockedFold => {
                    let total: u64 = tenant
                        .shards
                        .iter()
                        .map(|shard| lock(&shard.state).agg.count())
                        .sum();
                    respond(out, &format!("+OK {total}"));
                }
            },
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::WCount(name) => match inner.registry.get(&name) {
            Some(tenant) => {
                // Total resident weight across both planes: integer
                // counts enter at weight 1, `DDS3` frames at their
                // `f64` weights. The summation order is identical under
                // both read planes, so the `f64` totals are
                // bit-identical.
                let total: f64 = match inner.config.read_plane {
                    ReadPlane::EpochCached => {
                        let (snaps, cache_fill) = tenant_snapshots(inner, &tenant);
                        *fill = Some(cache_fill);
                        snaps
                            .iter()
                            .map(|s| s.count as f64 + s.weighted_count)
                            .sum()
                    }
                    ReadPlane::LockedFold => tenant
                        .shards
                        .iter()
                        .map(|shard| {
                            let state = lock(&shard.state);
                            state.agg.count() as f64 + state.wagg.weighted_count()
                        })
                        .sum(),
                };
                respond(out, &format!("+OK {}", fmt_f64(total)));
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Quantile(name, qs) => match inner.registry.get(&name) {
            Some(tenant) => {
                // One resident copy per shard, answered with a k-way
                // merged walk outside all locks — exact by full
                // mergeability, so the result is bit-identical to a
                // single union sketch. The copies come from the read
                // snapshots (zero lock holds at steady state) or, under
                // the locked baseline, from a fold under each shard's
                // lock.
                let snaps;
                let residents: Vec<AnyDDSketch>;
                let refs: Vec<&AnyDDSketch> = match inner.config.read_plane {
                    ReadPlane::EpochCached => {
                        let (s, cache_fill) = tenant_snapshots(inner, &tenant);
                        snaps = s;
                        *fill = Some(cache_fill);
                        snaps.iter().map(|s| &s.resident).collect()
                    }
                    ReadPlane::LockedFold => {
                        residents = tenant
                            .shards
                            .iter()
                            .map(|shard| {
                                let mut state = lock(&shard.state);
                                state.agg.fold();
                                state.agg.resident().clone()
                            })
                            .collect();
                        residents.iter().collect()
                    }
                };
                match AnyDDSketch::merged_quantiles(&refs, &qs) {
                    Ok(values) => {
                        let rendered: Vec<String> = values.iter().map(|&v| fmt_f64(v)).collect();
                        respond(out, &format!("+OK {}", rendered.join(" ")));
                    }
                    Err(e) => respond(out, &format!("-ERR {e}")),
                }
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::WQuantile(name, qs) => match inner.registry.get(&name) {
            Some(tenant) => {
                let union = match inner.config.read_plane {
                    ReadPlane::EpochCached => {
                        let (snaps, cache_fill) = tenant_snapshots(inner, &tenant);
                        *fill = Some(cache_fill);
                        weighted_union_snapshots(&snaps, inner)
                    }
                    ReadPlane::LockedFold => weighted_union(&tenant, inner),
                };
                match union {
                    Ok(union) => match union.quantiles(&qs) {
                        Ok(values) => {
                            let rendered: Vec<String> =
                                values.iter().map(|&v| fmt_f64(v)).collect();
                            respond(out, &format!("+OK {}", rendered.join(" ")));
                        }
                        Err(e) => respond(out, &format!("-ERR {e}")),
                    },
                    Err(e) => respond(out, &format!("-ERR {e}")),
                }
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Series {
            tenant: name,
            metric,
            q,
        } => match inner.registry.get(&name) {
            Some(tenant) => {
                // The windowed store is not snapshotted (its cells are
                // absorbed in place), so SERIES keeps the short
                // state-lock hold — but the rendered answer is cached
                // against the owning shard's data epoch, so repeated
                // dashboard pulls of a quiet metric stay lock-free.
                let index = tenant.shard_index_for(&metric);
                let shard = &tenant.shards[index];
                let state = lock(&shard.state);
                let series = state.store.quantile_series(&metric, q);
                if inner.config.read_plane == ReadPlane::EpochCached {
                    shard.publish_epoch(&state);
                    *fill = Some(CacheFill {
                        tenant: Arc::clone(&tenant),
                        scope: CacheScope::Shard(index),
                        epochs: vec![shard.data_epoch()],
                    });
                }
                drop(state);
                let rendered: Vec<String> = series
                    .iter()
                    .map(|&(window, v)| format!("{window}={}", fmt_f64(v)))
                    .collect();
                respond(out, &format!("+OK {}", rendered.join(" ")));
            }
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Dump {
            tenant: name,
            shard,
        } => match inner.registry.get(&name) {
            Some(tenant) if shard < tenant.shards.len() => {
                let state = lock(&tenant.shards[shard].state);
                let bytes = state.store.checkpoint(Vec::new());
                drop(state);
                match bytes {
                    Ok(bytes) => {
                        respond(out, &format!("+DUMP {}", bytes.len()));
                        out.extend_from_slice(&bytes);
                    }
                    Err(e) => respond(out, &format!("-ERR {e}")),
                }
            }
            Some(_) => respond(out, "-ERR shard index out of range"),
            None => respond(out, "-ERR unknown tenant"),
        },
        Command::Sync => {
            for tenant in inner.registry.all() {
                for shard in &tenant.shards {
                    shard.sync();
                }
            }
            respond(out, "+OK");
        }
        Command::Checkpoint => {
            if inner.config.checkpoint_dir.is_none() {
                respond(out, "-ERR no checkpoint directory configured");
            } else {
                match checkpoint_all(inner) {
                    Ok(files) => respond(out, &format!("+OK {files}")),
                    Err(e) => respond(out, &format!("-ERR {e}")),
                }
            }
        }
        Command::Shutdown => {
            inner.shutdown.store(true, Ordering::Release);
            inner.sweep_wake.1.notify_all();
            respond(out, "+OK");
            return false;
        }
        Command::Quit => {
            respond(out, "+OK");
            return false;
        }
    }
    true
}

/// Tenant-wide weighted union: every shard's weighted resident plus its
/// integer resident lifted onto the weighted plane (each integer count
/// enters at weight 1), merged outside the shard locks. There is no
/// mixed-plane k-way rank walk, so the union is materialized — exact by
/// full mergeability, allocation is per-query.
fn weighted_union(
    tenant: &Tenant,
    inner: &ServerInner,
) -> Result<AnyWeightedDDSketch, SketchError> {
    let mut union = AnyWeightedDDSketch::new(inner.config.sketch)?;
    for shard in &tenant.shards {
        let mut state = lock(&shard.state);
        state.agg.fold();
        state.wagg.fold();
        let weighted = state.wagg.resident().clone();
        let integer = state.agg.resident().encode();
        drop(state);
        union.merge_from(&weighted)?;
        union.merge_view(&SketchView::parse(&integer)?)?;
    }
    Ok(union)
}

/// [`weighted_union`] over read snapshots instead of locked state: the
/// same per-shard merge order (weighted resident, then the integer
/// resident lifted to weight 1), so the union — and every quantile read
/// from it — is bit-identical to the locked fold at the same epochs.
fn weighted_union_snapshots(
    snaps: &[Arc<ShardSnapshot>],
    inner: &ServerInner,
) -> Result<AnyWeightedDDSketch, SketchError> {
    let mut union = AnyWeightedDDSketch::new(inner.config.sketch)?;
    for snap in snaps {
        union.merge_from(&snap.weighted)?;
        union.merge_view(&SketchView::parse(&snap.resident.encode())?)?;
    }
    Ok(union)
}

/// Every shard's read snapshot plus the [`CacheFill`] recording the
/// epoch vector they carry — the building block of every tenant-wide
/// snapshot-served answer.
fn tenant_snapshots(
    inner: &ServerInner,
    tenant: &Arc<Tenant>,
) -> (Vec<Arc<ShardSnapshot>>, CacheFill) {
    let snaps: Vec<Arc<ShardSnapshot>> = tenant
        .shards
        .iter()
        .map(|shard| shard.read_snapshot(&inner.stats))
        .collect();
    let fill = CacheFill {
        tenant: Arc::clone(tenant),
        scope: CacheScope::Snapshots,
        epochs: snaps.iter().map(|s| s.epoch).collect(),
    };
    (snaps, fill)
}

/// A bare `ServerInner` with no I/O threads attached — lets reactor
/// unit tests drive connection machines and event loops directly
/// against real registry/stats state.
#[cfg(test)]
pub(crate) fn test_inner(config: ServerConfig) -> Arc<ServerInner> {
    Arc::new(ServerInner {
        config,
        registry: Registry::default(),
        stats: Stats::default(),
        shutdown: AtomicBool::new(false),
        endpoint: Endpoint::Tcp("127.0.0.1:9".parse().unwrap()),
        shard_workers: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
        sweep_wake: (Mutex::new(()), Condvar::new()),
        query_cache: QueryCache::default(),
    })
}

/// TTL retention: periodically evict windowed-store cells that fell out
/// of the trailing retention width. The sweep interval tracks the width
/// (clamped to a sane range) — eviction granularity is whole windows,
/// so sweeping much faster than the width buys nothing.
fn retention_loop(inner: &Arc<ServerInner>, width: Duration) {
    let interval = (width / 2).clamp(Duration::from_millis(10), Duration::from_millis(500));
    let (mutex, condvar) = &inner.sweep_wake;
    loop {
        let guard = mutex.lock().unwrap_or_else(|p| p.into_inner());
        let _unused = condvar
            .wait_timeout(guard, interval)
            .unwrap_or_else(|p| p.into_inner());
        if inner.shutting_down() {
            return;
        }
        retention_sweep(inner, width);
    }
}

/// One retention pass over every shard. Runs under each shard's state
/// lock (eviction mutates the store), publishing the shard's epoch when
/// anything was evicted so cached answers over evicted data invalidate.
fn retention_sweep(inner: &ServerInner, width: Duration) {
    let width_secs = width.as_secs().max(1);
    for tenant in inner.registry.all() {
        for shard in &tenant.shards {
            let mut state = lock(&shard.state);
            let evicted = state.store.retain_recent(width_secs);
            if evicted > 0 {
                shard.publish_epoch(&state);
                Stats::add(&inner.stats.evicted_cells, evicted as u64);
            }
        }
    }
}

fn checkpoint_loop(inner: &Arc<ServerInner>, interval: Duration) {
    let (mutex, condvar) = &inner.sweep_wake;
    loop {
        let guard = mutex.lock().unwrap_or_else(|p| p.into_inner());
        let _unused = condvar
            .wait_timeout(guard, interval)
            .unwrap_or_else(|p| p.into_inner());
        if inner.shutting_down() {
            // The final sweep belongs to `shutdown`, after the drain.
            return;
        }
        let _ = checkpoint_all(inner);
    }
}

/// Snapshot every shard's store to `{tenant}@{shard}.ddts` and its
/// weighted-plane resident to `{tenant}@{shard}.ddsw` (a bare `DDS3`
/// payload) under the configured directory (tmp + rename). The `.ddsw`
/// file is written only once the shard has absorbed weighted frames,
/// and then on every sweep — so a stale snapshot is always overwritten,
/// never left to double-restore. Returns the file count.
fn checkpoint_all(inner: &ServerInner) -> Result<usize, ServerError> {
    let Some(dir) = &inner.config.checkpoint_dir else {
        return Ok(0);
    };
    fs::create_dir_all(dir)?;
    let mut files = 0;
    for tenant in inner.registry.all() {
        for (index, shard) in tenant.shards.iter().enumerate() {
            let mut state = lock(&shard.state);
            let bytes = state.store.checkpoint(Vec::new())?;
            state.wagg.fold();
            let weighted = (!state.wagg.is_empty()).then(|| state.wagg.resident().encode());
            drop(state);
            let tmp = dir.join(format!("{}@{index}.ddts.tmp", tenant.name));
            let path = dir.join(format!("{}@{index}.ddts", tenant.name));
            fs::write(&tmp, &bytes)?;
            fs::rename(&tmp, &path)?;
            files += 1;
            if let Some(weighted) = weighted {
                let tmp = dir.join(format!("{}@{index}.ddsw.tmp", tenant.name));
                let path = dir.join(format!("{}@{index}.ddsw", tenant.name));
                fs::write(&tmp, &weighted)?;
                fs::rename(&tmp, &path)?;
                files += 1;
            }
        }
    }
    Stats::add(&inner.stats.checkpoints_completed, 1);
    Ok(files)
}

/// Boot-time restore: load every `{tenant}@{shard}.ddts` under the
/// checkpoint directory back into tenant state, rebuilding each shard's
/// resident aggregator from the restored cells.
fn restore_checkpoints(inner: &Arc<ServerInner>) -> Result<(), ServerError> {
    let Some(dir) = &inner.config.checkpoint_dir else {
        return Ok(());
    };
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let (stem, weighted) = if let Some(stem) = file_name.strip_suffix(".ddts") {
            (stem, false)
        } else if let Some(stem) = file_name.strip_suffix(".ddsw") {
            (stem, true)
        } else {
            continue;
        };
        let Some((tenant_name, index)) = stem.rsplit_once('@') else {
            return Err(ServerError::Protocol(format!(
                "checkpoint file {} is not named tenant@shard.{}",
                path.display(),
                if weighted { "ddsw" } else { "ddts" }
            )));
        };
        let index: usize = index
            .parse()
            .map_err(|_| ServerError::Protocol(format!("bad shard index in {}", path.display())))?;
        if !valid_name(tenant_name) || index >= inner.config.shards_per_tenant {
            return Err(ServerError::Protocol(format!(
                "checkpoint file {} does not fit this server's layout",
                path.display()
            )));
        }
        if weighted {
            // A `.ddsw` snapshot is one bare `DDS3` payload; `feed`
            // re-runs the admission predicate, so a snapshot from a
            // differently-configured server is rejected here.
            let bytes = fs::read(&path)?;
            let tenant = tenant(inner, tenant_name)?;
            let mut state = lock(&tenant.shards[index].state);
            state.wagg.feed(&bytes).map_err(ServerError::Sketch)?;
            state.wagg.fold();
            tenant.shards[index].publish_epoch(&state);
            continue;
        }
        let file = fs::File::open(&path)?;
        let store = TimeSeriesStore::restore(io::BufReader::new(file))?;
        if store.config() != inner.config.sketch || store.window_secs() != inner.config.window_secs
        {
            return Err(ServerError::Protocol(format!(
                "checkpoint {} was taken under a different configuration",
                path.display()
            )));
        }
        let tenant = tenant(inner, tenant_name)?;
        let mut state = lock(&tenant.shards[index].state);
        let ShardState {
            agg, store: slot, ..
        } = &mut *state;
        *slot = store;
        for (_, _, cell) in slot.cells() {
            agg.feed(&cell.encode())?;
        }
        agg.fold();
        tenant.shards[index].publish_epoch(&state);
    }
    Ok(())
}
