//! The event-driven I/O plane: N event-loop threads (default 1) own
//! every agent and query socket, replacing thread-per-connection with
//! readiness dispatch over a [`sys::ReadinessSource`] (epoll on Linux,
//! `poll(2)` elsewhere).
//!
//! ## Anatomy of a loop
//!
//! * **Token 0** — the self-waker: the read end of a nonblocking
//!   `UnixStream` pair. Other threads (shard workers via
//!   [`state::ShardWaker`], peer loops handing off accepted sockets,
//!   [`crate::ServerHandle::shutdown`]) write one byte to interrupt
//!   the wait.
//! * **Token 1** — the listener (loop 0 only): accepted connections
//!   are admitted against `max_connections`, then round-robined across
//!   loops; remote loops receive them via a mailbox + wake.
//! * **Tokens ≥ 2** — connection slots in a slab, each holding a
//!   [`machine::ConnMachine`] plus its registered interest.
//!
//! ## The ready-backlog
//!
//! Level-triggered sources only report *kernel* readiness, but each
//! machine reads through a 16 KiB `BufReader` — after a budget-bounded
//! dispatch, complete frames may still sit in user space where epoll
//! cannot see them. Any machine that yields (budget) or resumes
//! (shard space freed) goes on the backlog, and while the backlog is
//! non-empty the loop polls with a zero timeout — so buffered work is
//! drained promptly without busy-spinning when truly idle.
//!
//! ## Backpressure without blocking
//!
//! A full staging queue suspends the connection: its fd is fully
//! deregistered (a level-triggered source would otherwise hot-loop on
//! the readable socket) and the shard holds the connection's waker.
//! The next worker pop wakes the loop, which re-registers the fd and
//! backlogs the machine to retry its bounced job. Registering the
//! waker *before* one retry closes the lost-wakeup race.

mod machine;
mod sys;

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use machine::{ConnMachine, Step};
use sys::{Event, ReadinessSource, READABLE, WRITABLE};

use crate::net::{Conn, Listener};
use crate::server::{is_retryable, ServerInner};
use crate::state::{lock, ShardWaker, Stats};

const TOKEN_WAKER: usize = 0;
const TOKEN_LISTENER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Idle wait tick: the cadence at which a loop with no events rechecks
/// the shutdown flag (wakes normally arrive via the waker long before
/// this fires).
const TICK_MS: i32 = 100;

/// Cross-thread face of one event loop: the waker plus the mailbox of
/// handed-off connections and resumable tokens.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    wake_tx: UnixStream,
    inbox: Mutex<Vec<Conn>>,
    resumed: Mutex<Vec<usize>>,
}

impl ReactorShared {
    /// Interrupt the loop's wait. Nonblocking and lossy by design: if
    /// the pipe is full the loop is already overdue to wake.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn hand_off(&self, conn: Conn) {
        lock(&self.inbox).push(conn);
        self.wake();
    }
}

/// Per-connection shard waker: records *which* machine to resume, then
/// pokes the loop.
#[derive(Debug)]
struct ConnWaker {
    shared: Arc<ReactorShared>,
    token: usize,
}

impl ShardWaker for ConnWaker {
    fn wake(&self) {
        lock(&self.shared.resumed).push(self.token);
        self.shared.wake();
    }
}

struct ConnEntry {
    machine: ConnMachine<Conn>,
    fd: RawFd,
    /// Currently registered interest bits; 0 = not registered (the
    /// suspended state, or a fresh connection before first dispatch).
    interest: u32,
    suspended: bool,
}

pub(crate) struct EventLoop {
    inner: Arc<ServerInner>,
    poller: Box<dyn ReadinessSource>,
    shared: Arc<ReactorShared>,
    wake_rx: UnixStream,
    listener: Option<Listener>,
    entries: Vec<Option<ConnEntry>>,
    free: Vec<usize>,
    backlog: VecDeque<usize>,
    /// All loops (self included) for round-robin accept hand-off.
    peers: Vec<Arc<ReactorShared>>,
    index: usize,
    next_peer: usize,
    /// Last time `sweep_suspended` ran — kept on a timer rather than
    /// tied to idle turns, so steady query traffic can't postpone the
    /// sweep indefinitely.
    last_sweep: Instant,
}

impl EventLoop {
    pub(crate) fn new(
        inner: Arc<ServerInner>,
        mut poller: Box<dyn ReadinessSource>,
        shared: Arc<ReactorShared>,
        wake_rx: UnixStream,
        listener: Option<Listener>,
        peers: Vec<Arc<ReactorShared>>,
        index: usize,
    ) -> io::Result<Self> {
        wake_rx.set_nonblocking(true)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKER, READABLE)?;
        if let Some(listener) = &listener {
            listener.set_nonblocking(true)?;
            poller.register(listener.as_raw_fd(), TOKEN_LISTENER, READABLE)?;
        }
        Ok(Self {
            inner,
            poller,
            shared,
            wake_rx,
            listener,
            entries: Vec::new(),
            free: Vec::new(),
            backlog: VecDeque::new(),
            peers,
            index,
            next_peer: index,
            last_sweep: Instant::now(),
        })
    }

    pub(crate) fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while let Ok(true) = self.turn(&mut events) {}
        self.teardown();
    }

    /// One wait + dispatch round. Returns `Ok(false)` once shutdown is
    /// observed.
    pub(crate) fn turn(&mut self, events: &mut Vec<Event>) -> io::Result<bool> {
        if self.inner.shutting_down() {
            return Ok(false);
        }
        let timeout = if self.backlog.is_empty() { TICK_MS } else { 0 };
        self.poller.wait(events, timeout)?;
        Stats::add(&self.inner.stats.reactor_wakeups, 1);
        Stats::add(&self.inner.stats.reactor_events, events.len() as u64);
        if self.last_sweep.elapsed() >= Duration::from_millis(TICK_MS as u64) {
            // Periodically sweep suspended connections back through
            // the staging queues. Pops wake one waiter per freed
            // slot, so a wake consumed by a connection that had
            // already staged its job (stale registration) could
            // otherwise leave a peer parked forever with space free;
            // the sweep bounds that to one tick.
            self.last_sweep = Instant::now();
            self.sweep_suspended();
        }
        for slot in 0..events.len() {
            let event = events[slot];
            match event.token {
                TOKEN_WAKER => self.drain_waker(),
                TOKEN_LISTENER => self.accept_ready(),
                token => self.dispatch(token),
            }
        }
        // Mailboxes are drained every turn, not only on waker events:
        // wake bytes coalesce, and a missed handoff would otherwise
        // wait out a full tick.
        self.drain_mailboxes();
        let scheduled: Vec<usize> = self.backlog.drain(..).collect();
        for token in scheduled {
            self.dispatch(token);
        }
        Ok(!self.inner.shutting_down())
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_mailboxes(&mut self) {
        let inbox = { std::mem::take(&mut *lock(&self.shared.inbox)) };
        for conn in inbox {
            if self.insert_conn(conn).is_err() {
                self.inner
                    .stats
                    .open_connections
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
        let resumed = { std::mem::take(&mut *lock(&self.shared.resumed)) };
        for token in resumed {
            self.resume(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok(conn) => {
                    if self.inner.shutting_down() {
                        return;
                    }
                    let open = self.inner.stats.open_connections.load(Ordering::Relaxed);
                    if open >= self.inner.config.max_connections as u64 {
                        reject(conn);
                        Stats::add(&self.inner.stats.connections_rejected, 1);
                        continue;
                    }
                    Stats::add(&self.inner.stats.connections_total, 1);
                    Stats::add(&self.inner.stats.open_connections, 1);
                    let target = self.next_peer;
                    self.next_peer = (self.next_peer + 1) % self.peers.len();
                    if target == self.index {
                        if self.insert_conn(conn).is_err() {
                            self.inner
                                .stats
                                .open_connections
                                .fetch_sub(1, Ordering::Relaxed);
                        }
                    } else {
                        self.peers[target].hand_off(conn);
                    }
                }
                Err(e) if is_retryable(&e) => return,
                // Transient accept errors (ECONNABORTED etc.): move on.
                Err(_) => return,
            }
        }
    }

    /// Adopt a connection into the slab. The caller has already
    /// counted it in `open_connections`; the first dispatch (via the
    /// backlog) registers its read interest.
    pub(crate) fn insert_conn(&mut self, conn: Conn) -> io::Result<()> {
        conn.set_nonblocking(true)?;
        let fd = conn.as_raw_fd();
        let slot = self.free.pop().unwrap_or_else(|| {
            self.entries.push(None);
            self.entries.len() - 1
        });
        let token = slot + TOKEN_BASE;
        let waker: Arc<dyn ShardWaker> = Arc::new(ConnWaker {
            shared: self.shared.clone(),
            token,
        });
        self.entries[slot] = Some(ConnEntry {
            machine: ConnMachine::new(conn, waker),
            fd,
            interest: 0,
            suspended: false,
        });
        // Dispatch immediately: the peer may have written its
        // handshake before we registered anything.
        self.backlog.push_back(token);
        Ok(())
    }

    fn entry_mut(&mut self, token: usize) -> Option<&mut ConnEntry> {
        self.entries
            .get_mut(token.checked_sub(TOKEN_BASE)?)?
            .as_mut()
    }

    fn dispatch(&mut self, token: usize) {
        let inner = self.inner.clone();
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        if entry.suspended {
            return;
        }
        match entry.machine.on_ready(&inner) {
            Step::Closed => self.remove(token),
            Step::Yield => {
                self.backlog.push_back(token);
                self.update_interest(token);
            }
            Step::Idle => self.update_interest(token),
            Step::Suspended => {
                let Some(entry) = self.entry_mut(token) else {
                    return;
                };
                entry.suspended = true;
                let (fd, registered) = (entry.fd, entry.interest != 0);
                if registered {
                    let _ = self.poller.deregister(fd);
                }
                if let Some(entry) = self.entry_mut(token) {
                    entry.interest = 0;
                }
            }
        }
    }

    /// Reconcile the machine's desired readiness with what's
    /// registered at the source.
    fn update_interest(&mut self, token: usize) {
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        let mut want = 0u32;
        if entry.machine.wants_read() {
            want |= READABLE;
        }
        if entry.machine.wants_write() {
            want |= WRITABLE;
        }
        let (fd, have) = (entry.fd, entry.interest);
        if want == have {
            return;
        }
        let result = if have == 0 {
            self.poller.register(fd, token, want)
        } else if want == 0 {
            self.poller.deregister(fd)
        } else {
            self.poller.modify(fd, token, want)
        };
        match result {
            Ok(()) => {
                if let Some(entry) = self.entry_mut(token) {
                    entry.interest = want;
                }
            }
            // Registration failure means we can never hear from this
            // fd again — drop the connection rather than leak it.
            Err(_) => self.remove(token),
        }
    }

    /// Re-schedule every suspended connection. Harmless if the queues
    /// are still full (each retries once and re-suspends); essential if
    /// a one-shot wake was lost to a stale waiter registration.
    fn sweep_suspended(&mut self) {
        for slot in 0..self.entries.len() {
            if let Some(entry) = &self.entries[slot] {
                if entry.suspended {
                    self.resume(slot + TOKEN_BASE);
                }
            }
        }
    }

    fn resume(&mut self, token: usize) {
        let Some(entry) = self.entry_mut(token) else {
            return;
        };
        if !entry.suspended {
            return;
        }
        entry.suspended = false;
        self.backlog.push_back(token);
    }

    fn remove(&mut self, token: usize) {
        let Some(slot) = token.checked_sub(TOKEN_BASE) else {
            return;
        };
        if let Some(entry) = self.entries.get_mut(slot).and_then(Option::take) {
            if entry.interest != 0 {
                let _ = self.poller.deregister(entry.fd);
            }
            self.inner
                .stats
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            self.free.push(slot);
        }
    }

    /// Shutdown teardown: flush what we can, account force-closed
    /// ingest streams as unclean disconnects (threaded parity), and
    /// release every slot.
    fn teardown(&mut self) {
        for slot in 0..self.entries.len() {
            let Some(entry) = self.entries[slot].as_mut() else {
                continue;
            };
            entry.machine.shutdown_flush();
            if entry.machine.is_ingest() {
                Stats::add(&self.inner.stats.ingest_disconnects, 1);
            }
            self.remove(slot + TOKEN_BASE);
        }
    }
}

/// Best-effort capacity reject: tell the peer why before dropping.
fn reject(mut conn: Conn) {
    let _ = conn.set_nonblocking(true);
    let _ = conn.write_all(b"-ERR server at connection capacity\n");
    let _ = conn.shutdown_write();
}

/// The running reactor: join handles plus each loop's waker.
pub(crate) struct ReactorHandle {
    threads: Vec<JoinHandle<()>>,
    shareds: Vec<Arc<ReactorShared>>,
}

impl ReactorHandle {
    /// Wake every loop (they observe the shutdown flag on wake).
    pub(crate) fn wake_all(&self) {
        for shared in &self.shareds {
            shared.wake();
        }
    }

    pub(crate) fn join(mut self) {
        self.wake_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn `config.reactor_threads` event loops; loop 0 owns the
/// listener and deals accepted connections round-robin.
pub(crate) fn spawn(inner: &Arc<ServerInner>, listener: Listener) -> io::Result<ReactorHandle> {
    let n = inner.config.reactor_threads.max(1);
    let mut shareds = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        shareds.push(Arc::new(ReactorShared {
            wake_tx: tx,
            inbox: Mutex::new(Vec::new()),
            resumed: Mutex::new(Vec::new()),
        }));
        rxs.push(rx);
    }
    let mut listener = Some(listener);
    let mut threads = Vec::with_capacity(n);
    for (index, rx) in rxs.into_iter().enumerate() {
        let mut event_loop = EventLoop::new(
            inner.clone(),
            sys::default_source()?,
            shareds[index].clone(),
            rx,
            if index == 0 { listener.take() } else { None },
            shareds.clone(),
            index,
        )?;
        threads.push(
            std::thread::Builder::new()
                .name(format!("sketchd-reactor-{index}"))
                .spawn(move || event_loop.run())?,
        );
    }
    Ok(ReactorHandle { threads, shareds })
}

#[cfg(test)]
mod tests;
