//! Deterministic reactor tests: a scripted in-memory socket drives
//! [`ConnMachine`] through byte-at-a-time reads, mid-frame stalls,
//! queue-full suspension, and half-open disconnects — and a scripted
//! [`ReadinessSource`] drives a full [`EventLoop`] turn by turn without
//! depending on kernel readiness timing.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;

use ddsketch::codec::varint::put_varint;
use ddsketch::codec::FRAME_STREAM_VERSION;
use ddsketch::SketchConfig;

use super::machine::{ConnMachine, Step, FRAME_BUDGET};
use super::*;
use crate::protocol::encode_envelope;
use crate::server::{test_inner, ServerConfig};
use crate::state::Tenant;

// ------------------------------------------------------- scripted socket

/// One scripted read outcome.
enum Op {
    Data(Vec<u8>),
    WouldBlock,
}

#[derive(Default)]
struct FakeSockInner {
    input: VecDeque<Op>,
    /// After the script drains: `true` = EOF (`Ok(0)`), `false` = more
    /// bytes may come later (`WouldBlock`).
    eof: bool,
    written: Vec<u8>,
    write_blocked: bool,
}

/// A scripted `Read + Write` socket; the test keeps a clone to feed
/// input and inspect output while the machine owns the other handle.
#[derive(Clone, Default)]
struct FakeSock(Rc<RefCell<FakeSockInner>>);

impl FakeSock {
    fn push(&self, bytes: &[u8]) {
        self.0
            .borrow_mut()
            .input
            .push_back(Op::Data(bytes.to_vec()));
    }

    fn push_stall(&self) {
        self.0.borrow_mut().input.push_back(Op::WouldBlock);
    }

    fn set_eof(&self) {
        self.0.borrow_mut().eof = true;
    }

    fn set_write_blocked(&self, blocked: bool) {
        self.0.borrow_mut().write_blocked = blocked;
    }

    fn script_len(&self) -> usize {
        self.0.borrow().input.len()
    }

    fn written(&self) -> Vec<u8> {
        self.0.borrow().written.clone()
    }
}

impl Read for FakeSock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut inner = self.0.borrow_mut();
        match inner.input.pop_front() {
            Some(Op::Data(mut bytes)) => {
                let n = bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&bytes[..n]);
                if n < bytes.len() {
                    bytes.drain(..n);
                    inner.input.push_front(Op::Data(bytes));
                }
                Ok(n)
            }
            Some(Op::WouldBlock) => Err(io::ErrorKind::WouldBlock.into()),
            None if inner.eof => Ok(0),
            None => Err(io::ErrorKind::WouldBlock.into()),
        }
    }
}

impl Write for FakeSock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.borrow_mut();
        if inner.write_blocked {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        inner.written.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A waker that only counts — machine tests assert on wake delivery
/// without a real event loop behind it.
#[derive(Debug, Default)]
struct CountingWaker(AtomicU64);

impl ShardWaker for CountingWaker {
    fn wake(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

// ------------------------------------------------------------- fixtures

fn sketch_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 256)
}

fn config(staging_bound: usize) -> ServerConfig {
    ServerConfig {
        sketch: sketch_config(),
        staging_bound,
        ..ServerConfig::default()
    }
}

/// Create the tenant through the registry directly so `created` is
/// already false when the machine's handshake looks it up — no shard
/// worker threads spawn, and staged jobs stay observable in the queues.
fn pre_tenant(inner: &Arc<ServerInner>, name: &str) -> Arc<Tenant> {
    let cfg = &inner.config;
    inner
        .registry
        .get_or_create(name, || {
            Tenant::new(
                name,
                cfg.sketch,
                cfg.shards_per_tenant,
                cfg.staging_bound,
                cfg.fold_threshold,
                cfg.window_secs,
            )
        })
        .unwrap()
        .0
}

fn handshake(tenant: &str) -> Vec<u8> {
    let mut bytes = format!("INGEST {tenant}\n").into_bytes();
    bytes.extend_from_slice(b"DDSF");
    bytes.push(FRAME_STREAM_VERSION);
    bytes
}

fn payload_bytes(value: f64) -> Vec<u8> {
    let mut sketch = sketch_config().build().unwrap();
    sketch.add(value).unwrap();
    sketch.encode()
}

fn frame(metric: &str, ts_secs: u64, payload: &[u8]) -> Vec<u8> {
    let mut envelope = Vec::new();
    encode_envelope(&mut envelope, metric, ts_secs, payload);
    let mut framed = Vec::new();
    put_varint(&mut framed, envelope.len() as u64);
    framed.extend_from_slice(&envelope);
    framed
}

fn staging_total(tenant: &Tenant) -> usize {
    tenant.shards.iter().map(|s| s.depth().0).sum()
}

fn machine(sock: &FakeSock) -> (ConnMachine<FakeSock>, Arc<CountingWaker>) {
    let waker = Arc::new(CountingWaker::default());
    let as_waker: Arc<dyn ShardWaker> = waker.clone();
    (ConnMachine::new(sock.clone(), as_waker), waker)
}

// -------------------------------------------------------- machine tests

#[test]
fn query_roundtrip_then_half_close() {
    let inner = test_inner(config(4));
    let sock = FakeSock::default();
    sock.push(b"PING\nPING\n");
    sock.set_eof();
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Closed);
    assert_eq!(sock.written(), b"+PONG\n+PONG\n");
    assert_eq!(inner.stats_snapshot().queries_served, 2);
}

#[test]
fn ingest_byte_at_a_time_with_stalls_then_clean_eof() {
    let inner = test_inner(config(4));
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    stream.extend_from_slice(&frame("api.latency", 100, &payload_bytes(42.0)));
    // Worst-case fragmentation: every byte arrives alone, with a
    // spurious wakeup (WouldBlock) between each.
    for &b in &stream {
        sock.push(&[b]);
        sock.push_stall();
    }
    let (mut m, _) = machine(&sock);
    let mut spins = 0;
    while sock.script_len() > 0 {
        assert_eq!(m.on_ready(&inner), Step::Idle);
        spins += 1;
        assert!(spins < 10_000, "no progress draining the byte script");
    }
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert!(m.is_ingest());
    assert_eq!(staging_total(&tenant), 1, "frame staged despite stalls");
    let stats = inner.stats_snapshot();
    assert_eq!(stats.frames_rejected, 0);
    assert!(stats.bytes_ingested > 0);
    // EOF lands exactly on a frame boundary: a clean end-of-stream.
    sock.set_eof();
    assert_eq!(m.on_ready(&inner), Step::Closed);
    assert_eq!(inner.stats_snapshot().ingest_disconnects, 0);
}

#[test]
fn mid_frame_eof_is_an_unclean_disconnect() {
    let inner = test_inner(config(4));
    pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    let full = frame("api.latency", 100, &payload_bytes(1.0));
    stream.extend_from_slice(&full[..full.len() / 2]);
    sock.push(&stream);
    sock.set_eof();
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Closed);
    assert_eq!(inner.stats_snapshot().ingest_disconnects, 1);
}

#[test]
fn corrupt_envelope_is_rejected_and_the_stream_continues() {
    let inner = test_inner(config(4));
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    // Framing is intact (honest varint length) but the envelope bytes
    // are garbage — rejected per frame, stream keeps going.
    let mut bad = Vec::new();
    put_varint(&mut bad, 3);
    bad.extend_from_slice(&[0xff, 0xff, 0xff]);
    stream.extend_from_slice(&bad);
    stream.extend_from_slice(&frame("api.latency", 100, &payload_bytes(7.0)));
    sock.push(&stream);
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert!(m.is_ingest());
    assert_eq!(inner.stats_snapshot().frames_rejected, 1);
    assert_eq!(staging_total(&tenant), 1, "good frame staged after bad");
}

#[test]
fn invalid_ingest_tenant_closes_unclean() {
    let inner = test_inner(config(4));
    let sock = FakeSock::default();
    sock.push(b"INGEST not a valid name!\n");
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Closed);
    assert_eq!(inner.stats_snapshot().ingest_disconnects, 1);
}

#[test]
fn queue_full_suspends_and_waker_driven_resume_stages_the_job() {
    let inner = test_inner(config(1));
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    stream.extend_from_slice(&frame("api.latency", 100, &payload_bytes(1.0)));
    stream.extend_from_slice(&frame("api.latency", 101, &payload_bytes(2.0)));
    sock.push(&stream);
    let (mut m, waker) = machine(&sock);
    // Frame 1 fills the bound-1 queue; frame 2 bounces and suspends.
    assert_eq!(m.on_ready(&inner), Step::Suspended);
    let shard = tenant.shard_for("api.latency").clone();
    assert_eq!(shard.depth().0, 1);
    let stats = inner.stats_snapshot();
    assert_eq!(stats.ingest_suspensions, 1);
    assert_eq!(stats.backpressure_waits, 1);
    assert_eq!(waker.0.load(Ordering::SeqCst), 0, "no space yet, no wake");
    // A shard worker pops → the registered waker fires.
    let job = shard.pop().unwrap();
    assert_eq!(waker.0.load(Ordering::SeqCst), 1);
    shard.complete(job.payload, job.metric);
    // The resumed machine retries its bounced job before reading on.
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert_eq!(shard.depth().0, 1);
    assert_eq!(inner.stats_snapshot().ingest_suspensions, 1);
}

#[test]
fn suspended_machine_never_reorders_frames() {
    let inner = test_inner(config(1));
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    for ts in 0..3u64 {
        stream.extend_from_slice(&frame("api.latency", ts, &payload_bytes(ts as f64 + 1.0)));
    }
    sock.push(&stream);
    let (mut m, _) = machine(&sock);
    let shard = tenant.shard_for("api.latency").clone();
    let mut seen = Vec::new();
    // Pop-one / resume-one: each round frees exactly one slot, so the
    // machine stages exactly one bounced-or-new frame per resume.
    for _ in 0..3 {
        let step = m.on_ready(&inner);
        assert!(matches!(step, Step::Suspended | Step::Idle));
        let job = shard.pop().unwrap();
        seen.push(job.ts_secs);
        shard.complete(job.payload, job.metric);
    }
    assert_eq!(seen, vec![0, 1, 2], "frames absorbed in wire order");
}

#[test]
fn shard_close_during_suspension_drops_the_connection() {
    let inner = test_inner(config(1));
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    stream.extend_from_slice(&frame("api.latency", 100, &payload_bytes(1.0)));
    stream.extend_from_slice(&frame("api.latency", 101, &payload_bytes(2.0)));
    sock.push(&stream);
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Suspended);
    tenant.shard_for("api.latency").close();
    assert_eq!(m.on_ready(&inner), Step::Closed);
    assert_eq!(inner.stats_snapshot().ingest_disconnects, 1);
}

#[test]
fn blocked_writes_buffer_and_drain_on_writable() {
    let inner = test_inner(config(4));
    let sock = FakeSock::default();
    sock.set_write_blocked(true);
    sock.push(b"PING\n");
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert!(m.wants_write(), "response parked in the out buffer");
    assert!(sock.written().is_empty());
    sock.set_write_blocked(false);
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert!(!m.wants_write());
    assert_eq!(sock.written(), b"+PONG\n");
}

#[test]
fn frame_budget_yields_with_input_still_buffered() {
    let mut cfg = config(2 * FRAME_BUDGET);
    cfg.fold_threshold = 4 * FRAME_BUDGET;
    let inner = test_inner(cfg);
    let tenant = pre_tenant(&inner, "acme");
    let sock = FakeSock::default();
    let mut stream = handshake("acme");
    let payload = payload_bytes(1.0);
    for ts in 0..(FRAME_BUDGET as u64 + 1) {
        stream.extend_from_slice(&frame("api.latency", ts, &payload));
    }
    sock.push(&stream);
    let (mut m, _) = machine(&sock);
    assert_eq!(m.on_ready(&inner), Step::Yield, "budget hit, must yield");
    assert_eq!(staging_total(&tenant), FRAME_BUDGET);
    assert_eq!(m.on_ready(&inner), Step::Idle);
    assert_eq!(staging_total(&tenant), FRAME_BUDGET + 1);
}

// ----------------------------------------------------- scripted source

#[derive(Debug, Default)]
struct FakeSourceInner {
    registered: Vec<(RawFd, usize, u32)>,
    script: VecDeque<Vec<Event>>,
}

/// A scripted [`ReadinessSource`]: `wait` replays pre-programmed event
/// batches; the interest registry is real and inspectable, so tests
/// assert exactly when the loop registers, modifies, and deregisters.
#[derive(Clone, Debug, Default)]
struct FakeSource(Arc<Mutex<FakeSourceInner>>);

impl FakeSource {
    fn interest_for(&self, fd: RawFd) -> Option<u32> {
        lock(&self.0)
            .registered
            .iter()
            .find(|&&(f, _, _)| f == fd)
            .map(|&(_, _, i)| i)
    }

    fn token_for(&self, fd: RawFd) -> Option<usize> {
        lock(&self.0)
            .registered
            .iter()
            .find(|&&(f, _, _)| f == fd)
            .map(|&(_, t, _)| t)
    }

    fn enqueue(&self, events: Vec<Event>) {
        lock(&self.0).script.push_back(events);
    }
}

impl ReadinessSource for FakeSource {
    fn register(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
        let mut inner = lock(&self.0);
        if inner.registered.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::ErrorKind::AlreadyExists.into());
        }
        inner.registered.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
        let mut inner = lock(&self.0);
        let slot = inner
            .registered
            .iter()
            .position(|&(f, _, _)| f == fd)
            .ok_or(io::ErrorKind::NotFound)?;
        inner.registered[slot] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let mut inner = lock(&self.0);
        let slot = inner
            .registered
            .iter()
            .position(|&(f, _, _)| f == fd)
            .ok_or(io::ErrorKind::NotFound)?;
        inner.registered.swap_remove(slot);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
        events.clear();
        if let Some(batch) = lock(&self.0).script.pop_front() {
            events.extend(batch);
        }
        Ok(())
    }
}

/// An [`EventLoop`] over a [`FakeSource`] plus the peer side of one
/// adopted Unix-socket connection.
struct LoopFixture {
    event_loop: EventLoop,
    source: FakeSource,
    inner: Arc<ServerInner>,
    peer: UnixStream,
    conn_fd: RawFd,
}

fn loop_fixture(cfg: ServerConfig) -> LoopFixture {
    let inner = test_inner(cfg);
    let source = FakeSource::default();
    let (wake_tx, wake_rx) = UnixStream::pair().unwrap();
    wake_tx.set_nonblocking(true).unwrap();
    let shared = Arc::new(ReactorShared {
        wake_tx,
        inbox: Mutex::new(Vec::new()),
        resumed: Mutex::new(Vec::new()),
    });
    let mut event_loop = EventLoop::new(
        inner.clone(),
        Box::new(source.clone()),
        shared.clone(),
        wake_rx,
        None,
        vec![shared],
        0,
    )
    .unwrap();
    let (local, peer) = UnixStream::pair().unwrap();
    let conn = Conn::Unix(local);
    let conn_fd = conn.as_raw_fd();
    // Mirror the accept path's accounting before adoption.
    Stats::add(&inner.stats.open_connections, 1);
    event_loop.insert_conn(conn).unwrap();
    LoopFixture {
        event_loop,
        source,
        inner,
        peer,
        conn_fd,
    }
}

fn read_available(peer: &mut UnixStream) -> Vec<u8> {
    peer.set_nonblocking(true).unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match peer.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => panic!("peer read failed: {e}"),
        }
    }
    out
}

// ----------------------------------------------------- event-loop tests

#[test]
fn loop_answers_queries_and_tracks_interest() {
    let mut fx = loop_fixture(config(4));
    fx.peer.write_all(b"PING\n").unwrap();
    let mut events = Vec::new();
    // Turn 1: the freshly adopted connection is on the backlog — it
    // reads the command, answers, and registers read interest.
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), Some(READABLE));
    assert_eq!(read_available(&mut fx.peer), b"+PONG\n");
    // Turn 2: readiness fires for a second command.
    fx.peer.write_all(b"PING\n").unwrap();
    let token = fx.source.token_for(fx.conn_fd).unwrap();
    fx.source.enqueue(vec![Event {
        token,
        readable: true,
        writable: false,
        hangup: false,
    }]);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(read_available(&mut fx.peer), b"+PONG\n");
    // Half-close: the loop flushes and retires the slot.
    fx.peer.shutdown(std::net::Shutdown::Write).unwrap();
    fx.source.enqueue(vec![Event {
        token,
        readable: true,
        writable: false,
        hangup: true,
    }]);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), None);
    assert_eq!(fx.inner.stats_snapshot().open_connections, 0);
}

#[test]
fn loop_suspension_deregisters_fd_until_worker_pop_resumes_it() {
    let mut fx = loop_fixture(config(1));
    let tenant = pre_tenant(&fx.inner, "acme");
    let mut stream = handshake("acme");
    stream.extend_from_slice(&frame("api.latency", 100, &payload_bytes(1.0)));
    fx.peer.write_all(&stream).unwrap();
    let mut events = Vec::new();
    // Turn 1: handshake + frame 1 staged; read interest registered.
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), Some(READABLE));
    let token = fx.source.token_for(fx.conn_fd).unwrap();
    // Frame 2 bounces off the bound-1 queue: the fd is deregistered
    // outright, so a level-triggered source cannot busy-loop on it.
    fx.peer
        .write_all(&frame("api.latency", 101, &payload_bytes(2.0)))
        .unwrap();
    fx.source.enqueue(vec![Event {
        token,
        readable: true,
        writable: false,
        hangup: false,
    }]);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), None, "fd deregistered");
    assert_eq!(fx.inner.stats_snapshot().ingest_suspensions, 1);
    // A worker pop wakes the loop through the ConnWaker; the machine
    // resumes from the mailbox, stages its bounced job, re-registers.
    let shard = tenant.shard_for("api.latency").clone();
    let job = shard.pop().unwrap();
    shard.complete(job.payload, job.metric);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), Some(READABLE));
    assert_eq!(shard.depth().0, 1, "bounced frame staged after resume");
    // A stale wake for a machine that already resumed is a no-op.
    lock(&fx.event_loop.shared.resumed).push(token);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.source.interest_for(fx.conn_fd), Some(READABLE));
}

#[test]
fn loop_ignores_stale_tokens_and_spurious_readiness() {
    let mut fx = loop_fixture(config(4));
    let mut events = Vec::new();
    assert!(fx.event_loop.turn(&mut events).unwrap());
    // A token no entry owns (e.g. an fd retired mid-batch) is skipped.
    fx.source.enqueue(vec![Event {
        token: 99,
        readable: true,
        writable: false,
        hangup: false,
    }]);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    // Spurious readiness on a live idle connection is also harmless.
    let token = fx.source.token_for(fx.conn_fd).unwrap();
    fx.source.enqueue(vec![Event {
        token,
        readable: true,
        writable: false,
        hangup: false,
    }]);
    assert!(fx.event_loop.turn(&mut events).unwrap());
    assert_eq!(fx.inner.stats_snapshot().open_connections, 1);
}

#[test]
fn loop_teardown_flushes_and_counts_open_ingest_streams() {
    let mut fx = loop_fixture(config(4));
    pre_tenant(&fx.inner, "acme");
    fx.peer.write_all(&handshake("acme")).unwrap();
    let mut events = Vec::new();
    assert!(fx.event_loop.turn(&mut events).unwrap());
    // Shutdown: the next turn observes the flag; run() tears down —
    // mid-stream ingest counts as unclean, threaded parity.
    fx.inner.shutdown.store(true, Ordering::SeqCst);
    fx.event_loop.run();
    let stats = fx.inner.stats_snapshot();
    assert_eq!(stats.open_connections, 0);
    assert_eq!(stats.ingest_disconnects, 1);
    assert_eq!(fx.source.interest_for(fx.conn_fd), None);
}
