//! Readiness-source abstraction: epoll on Linux, `poll(2)` on other
//! POSIX, both via direct `extern "C"` declarations against the libc
//! std already links — no new dependencies.
//!
//! Both backends are **level-triggered**: an fd with unread input (or
//! writable space, when write interest is registered) is reported on
//! every wait until the condition clears. The event loop leans on that
//! — it never has to remember "there might still be data" at the
//! kernel level, only for bytes it has already pulled into user-space
//! buffers (see the ready-backlog in `mod.rs`).
//!
//! The trait is object-safe and tiny so tests can substitute a
//! deterministic scripted source and drive the loop event by event.

use std::io;
use std::os::fd::RawFd;

/// Bitmask interest: the loop wants to know when the fd is readable.
pub(crate) const READABLE: u32 = 0b01;
/// Bitmask interest: the loop wants to know when the fd is writable.
pub(crate) const WRITABLE: u32 = 0b10;

/// One readiness report for a registered fd, keyed by the caller's
/// token (never the raw fd — tokens survive fd reuse races).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup (peer closed). The dispatcher treats this as
    /// readable — the next read observes the EOF/error directly.
    pub hangup: bool,
}

/// What the event loop needs from the OS (or from a test fake): an
/// interest registry plus a blocking wait.
pub(crate) trait ReadinessSource: Send {
    fn register(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()>;
    fn modify(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()>;
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Fill `events` (cleared first) with ready fds, waiting at most
    /// `timeout_ms` (0 = poll and return). A signal-interrupted wait
    /// returns `Ok` with no events.
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
}

/// The default backend for the current platform.
pub(crate) fn default_source() -> io::Result<Box<dyn ReadinessSource>> {
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(Epoll::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(Poll::new()))
    }
}

const EINTR: i32 = 4;

// ---------------------------------------------------------------- poll

// On Linux this backend is exercised only by tests (epoll is the
// default), so dead-code analysis of the non-test build is silenced.
#[cfg_attr(target_os = "linux", allow(dead_code))]
mod poll_backend {
    use super::*;

    #[cfg(target_os = "linux")]
    type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    type Nfds = u32;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;
    const POLLNVAL: i16 = 0x20;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// `poll(2)` backend: a linear interest list rebuilt into a `pollfd`
    /// array per wait. O(n) per call, but portable to every POSIX — and
    /// compiled (and tested) on Linux too, so the fallback never rots.
    #[derive(Default)]
    pub(crate) struct Poll {
        interest: Vec<(RawFd, usize, u32)>,
        scratch: Vec<PollFd>,
    }

    impl Poll {
        pub(crate) fn new() -> Self {
            Self::default()
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.interest.iter().position(|&(f, _, _)| f == fd)
        }
    }

    impl ReadinessSource for Poll {
        fn register(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.interest.push((fd, token, interest));
            Ok(())
        }

        fn modify(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            let slot = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.interest[slot] = (fd, token, interest);
            Ok(())
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let slot = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.interest.swap_remove(slot);
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            self.scratch.clear();
            for &(fd, _, interest) in &self.interest {
                let mut mask = 0i16;
                if interest & READABLE != 0 {
                    mask |= POLLIN;
                }
                if interest & WRITABLE != 0 {
                    mask |= POLLOUT;
                }
                self.scratch.push(PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
            }
            let rc = unsafe {
                poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as Nfds,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, pfd) in self.scratch.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                let hangup = pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                events.push(Event {
                    token: self.interest[slot].1,
                    readable: pfd.revents & POLLIN != 0 || hangup,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }
}

#[cfg_attr(target_os = "linux", allow(unused_imports))]
pub(crate) use poll_backend::Poll;

// --------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::*;

    // x86-64 packs epoll_event to 12 bytes (a quirk the kernel ABI
    // inherited from 32-bit compatibility); other architectures use
    // natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const MAX_EVENTS: usize = 256;

    /// Linux epoll backend: O(ready) waits regardless of how many
    /// connections are registered — the backend the 512-agent soak
    /// runs on.
    pub(crate) struct Epoll {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interest & READABLE != 0 {
                mask |= EPOLLIN;
            }
            if interest & WRITABLE != 0 {
                mask |= EPOLLOUT;
            }
            let mut event = EpollEvent {
                events: mask,
                data: token as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    impl ReadinessSource for Epoll {
        fn register(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn modify(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // The event argument must be non-null for portability with
            // pre-2.6.9 kernels; contents are ignored.
            let mut event = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in &self.buf[..rc as usize] {
                let (mask, data) = (raw.events, raw.data);
                let hangup = mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    token: data as usize,
                    readable: mask & EPOLLIN != 0 || hangup,
                    writable: mask & EPOLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) use epoll_backend::Epoll;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    /// Both backends must agree on the readiness contract: readable
    /// only once data arrives, level-triggered until drained, writable
    /// on request, hangup on peer close.
    fn exercise(source: &mut dyn ReadinessSource) {
        let (mut a, b) = pair();
        let mut events = Vec::new();

        source.register(a.as_raw_fd(), 7, READABLE).unwrap();
        source.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no data, no readiness");

        (&b).write_all(b"x").unwrap();
        source.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].writable);

        // Level-triggered: still readable until the byte is consumed.
        source.wait(&mut events, 0).unwrap();
        assert_eq!(events.len(), 1, "level-triggered re-report");
        let mut byte = [0u8; 8];
        let n = a.read(&mut byte).unwrap();
        assert_eq!(n, 1);
        source.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained fd goes quiet");

        // Write interest on an idle socket fires immediately.
        source
            .modify(a.as_raw_fd(), 7, READABLE | WRITABLE)
            .unwrap();
        source.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        source.modify(a.as_raw_fd(), 7, READABLE).unwrap();

        // Peer close surfaces as hangup/readable; a read then sees EOF.
        drop(b);
        source.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        assert!(events[0].hangup);
        assert_eq!(a.read(&mut byte).unwrap(), 0);

        source.deregister(a.as_raw_fd()).unwrap();
        source.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deregistered fd reports nothing");
    }

    #[test]
    fn poll_backend_contract() {
        exercise(&mut Poll::new());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_contract() {
        exercise(&mut Epoll::new().unwrap());
    }

    #[test]
    fn poll_rejects_double_register_and_unknown_fds() {
        let mut source = Poll::new();
        let (a, _b) = pair();
        source.register(a.as_raw_fd(), 1, READABLE).unwrap();
        assert!(source.register(a.as_raw_fd(), 2, READABLE).is_err());
        assert!(source.modify(999, 1, READABLE).is_err());
        assert!(source.deregister(999).is_err());
    }
}
