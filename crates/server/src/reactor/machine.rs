//! Per-connection state machines for the reactor: the nonblocking
//! re-expression of `handle_conn`/`handle_ingest`/`handle_query`.
//!
//! A machine owns its socket (read side wrapped in a [`BufReader`] so
//! varint-by-varint decoding costs one syscall per ~16 KiB, not one
//! per byte) and makes as much progress as the socket allows on each
//! [`ConnMachine::on_ready`] call, then reports how it stopped:
//!
//! * [`Step::Idle`] — out of bytes (or write-blocked with nothing else
//!   to do); wait for the next readiness event.
//! * [`Step::Yield`] — hit its fairness budget with input possibly
//!   still buffered in user space; the loop must reschedule it without
//!   waiting, because a level-triggered source only reports *kernel*
//!   buffers.
//! * [`Step::Suspended`] — an ingest frame bounced off a full shard
//!   queue; the loop deregisters the fd entirely (reading stops → TCP
//!   backpressure reaches the agent) until the shard's waker fires.
//! * [`Step::Closed`] — the connection is finished, cleanly or not.
//!
//! The suspension handshake avoids the lost-wakeup race: on `Full`,
//! the machine registers its waker with the shard and retries once —
//! so either the retry lands (a pop raced in between) or the waker is
//! guaranteed to be registered before anyone sleeps.

use std::io::{BufReader, ErrorKind, Read, Write};
use std::sync::Arc;

use ddsketch::codec::FrameDecoder;
use ddsketch::{SketchError, SketchPayload, WeightedSketchPayload};

use crate::protocol::{decode_envelope, valid_name, LineReader};
use crate::server::{decode_admitted, execute_line, is_retryable, tenant, ServerInner};
use crate::state::{Job, JobPayload, Shard, ShardWaker, Stats, Tenant, TryPush};

/// Frames an ingest machine may decode per `on_ready` before yielding.
pub(crate) const FRAME_BUDGET: usize = 256;
/// Lines a query machine may answer per `on_ready` before yielding.
pub(crate) const LINE_BUDGET: usize = 64;
/// Pending-output ceiling past which a query machine stops reading new
/// commands until the peer drains responses (anti-livelock: a client
/// that sends `DUMP` forever but never reads can't balloon the buffer).
pub(crate) const OUT_HIGH_WATER: usize = 1 << 20;
/// Read-side buffer: amortizes the byte-at-a-time varint/line reads.
const READ_BUF: usize = 16 * 1024;

/// How a machine stopped making progress (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    Idle,
    Yield,
    Suspended,
    Closed,
}

struct IngestPhase {
    tenant: Arc<Tenant>,
    decoder: FrameDecoder,
    frame: Vec<u8>,
    spare_payload: SketchPayload,
    spare_weighted: WeightedSketchPayload,
    spare_metric: String,
    /// A job bounced by a full staging queue, retried before any new
    /// frame is decoded — frames are never reordered or dropped.
    pending: Option<(Arc<Shard>, Job)>,
}

impl IngestPhase {
    /// Return a recycled payload to the spare slot of its count plane.
    fn store_spare(&mut self, payload: JobPayload) {
        match payload {
            JobPayload::Integer(p) => self.spare_payload = p,
            JobPayload::Weighted(p) => self.spare_weighted = p,
        }
    }
}

enum Phase {
    Handshake { lines: LineReader },
    Ingest(Box<IngestPhase>),
    Query { lines: LineReader },
    Closed,
}

enum Control {
    /// Made progress; loop again (budget permitting).
    Continue,
    /// Bubble a step result up to the event loop.
    Step(Step),
}

enum Flush {
    Drained,
    Blocked,
    Broken,
}

enum Stage {
    Stored((JobPayload, String)),
    Suspend(Job),
    Closed,
}

/// One connection owned by the reactor. Generic over the socket so
/// tests can drive it with a scripted in-memory stream.
pub(crate) struct ConnMachine<S: Read + Write> {
    sock: BufReader<S>,
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    close_after_flush: bool,
    waker: Arc<dyn ShardWaker>,
}

impl<S: Read + Write> ConnMachine<S> {
    pub(crate) fn new(sock: S, waker: Arc<dyn ShardWaker>) -> Self {
        Self {
            sock: BufReader::with_capacity(READ_BUF, sock),
            out: Vec::new(),
            out_pos: 0,
            phase: Phase::Handshake {
                lines: LineReader::new(),
            },
            close_after_flush: false,
            waker,
        }
    }

    /// Whether the machine is mid-ingest — used at loop teardown to
    /// count force-closed agent streams as unclean disconnects, like
    /// the threaded model's shutdown tick does.
    pub(crate) fn is_ingest(&self) -> bool {
        matches!(self.phase, Phase::Ingest(_))
    }

    /// Unflushed response bytes are pending.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The machine would consume more input if it arrived.
    pub(crate) fn wants_read(&self) -> bool {
        !self.close_after_flush
            && !matches!(self.phase, Phase::Closed)
            && self.buffered_out() < OUT_HIGH_WATER
    }

    /// Best-effort final flush at loop teardown.
    pub(crate) fn shutdown_flush(&mut self) {
        let _ = self.flush_out();
    }

    fn buffered_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn flush_out(&mut self) -> Flush {
        while self.out_pos < self.out.len() {
            match self.sock.get_mut().write(&self.out[self.out_pos..]) {
                Ok(0) => return Flush::Broken,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if is_retryable(&e) => return Flush::Blocked,
                Err(_) => return Flush::Broken,
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Flush::Drained
    }

    fn close(&mut self, inner: &ServerInner, unclean_ingest: bool) -> Step {
        if unclean_ingest {
            Stats::add(&inner.stats.ingest_disconnects, 1);
        }
        self.phase = Phase::Closed;
        Step::Closed
    }

    /// Drive the machine as far as the socket, the budgets, and the
    /// staging queues allow. Safe to call on spurious wakeups: a
    /// machine with nothing to do reports [`Step::Idle`] untouched.
    pub(crate) fn on_ready(&mut self, inner: &Arc<ServerInner>) -> Step {
        let mut frames = 0usize;
        let mut lines_done = 0usize;
        loop {
            if let Flush::Broken = self.flush_out() {
                let unclean = self.is_ingest();
                return self.close(inner, unclean);
            }
            if self.close_after_flush {
                if self.buffered_out() == 0 {
                    self.phase = Phase::Closed;
                    return Step::Closed;
                }
                // Wait for writable readiness to finish the flush.
                return Step::Idle;
            }
            if self.buffered_out() >= OUT_HIGH_WATER {
                return Step::Idle;
            }
            match self.step(inner, &mut frames, &mut lines_done) {
                Control::Step(step) => return step,
                Control::Continue => {
                    if frames >= FRAME_BUDGET || lines_done >= LINE_BUDGET {
                        return Step::Yield;
                    }
                }
            }
        }
    }

    fn step(&mut self, inner: &Arc<ServerInner>, frames: &mut usize, lines: &mut usize) -> Control {
        match std::mem::replace(&mut self.phase, Phase::Closed) {
            Phase::Handshake { lines: mut reader } => match reader.poll_line(&mut self.sock) {
                Ok(Some(line)) => {
                    if let Some(name) = line.strip_prefix("INGEST ") {
                        self.begin_ingest(inner, name.trim())
                    } else {
                        // The handshake line *is* the first query
                        // command; the same LineReader carries any
                        // partial next line into the query phase.
                        let control = self.run_query_line(inner, &line, lines);
                        self.phase = Phase::Query { lines: reader };
                        control
                    }
                }
                Ok(None) => Control::Step(self.close(inner, false)),
                Err(e) if is_retryable(&e) => {
                    self.phase = Phase::Handshake { lines: reader };
                    Control::Step(Step::Idle)
                }
                Err(_) => Control::Step(self.close(inner, false)),
            },
            Phase::Query { lines: mut reader } => match reader.poll_line(&mut self.sock) {
                Ok(Some(line)) => {
                    let control = self.run_query_line(inner, &line, lines);
                    self.phase = Phase::Query { lines: reader };
                    control
                }
                Ok(None) => {
                    // Peer half-closed: flush what we owe, then close.
                    self.close_after_flush = true;
                    self.phase = Phase::Query { lines: reader };
                    Control::Continue
                }
                Err(e) if is_retryable(&e) => {
                    self.phase = Phase::Query { lines: reader };
                    Control::Step(Step::Idle)
                }
                Err(_) => Control::Step(self.close(inner, false)),
            },
            Phase::Ingest(mut ing) => {
                if let Some((shard, job)) = ing.pending.take() {
                    match stage_once(inner, &shard, job, &self.waker) {
                        Stage::Stored((payload, metric)) => {
                            // This machine just came back from
                            // suspension. If the idle sweep (rather
                            // than a pop) resumed it, its waiter is
                            // still registered and would silently eat
                            // a one-shot wake some other suspended
                            // connection needs — drop it.
                            shard.remove_waiter(&self.waker);
                            ing.store_spare(payload);
                            ing.spare_metric = metric;
                        }
                        Stage::Suspend(job) => {
                            ing.pending = Some((shard, job));
                            self.phase = Phase::Ingest(ing);
                            return Control::Step(Step::Suspended);
                        }
                        Stage::Closed => return Control::Step(self.close(inner, true)),
                    }
                }
                match ing.decoder.read_frame(&mut self.sock, &mut ing.frame) {
                    Ok(Some(_)) => {
                        *frames += 1;
                        match self.ingest_frame(inner, &mut ing) {
                            IngestOutcome::Ok => {
                                self.phase = Phase::Ingest(ing);
                                Control::Continue
                            }
                            IngestOutcome::Suspend => {
                                self.phase = Phase::Ingest(ing);
                                Control::Step(Step::Suspended)
                            }
                            IngestOutcome::ShardClosed => Control::Step(self.close(inner, true)),
                        }
                    }
                    // Clean `DDSF` end-of-stream terminator.
                    Ok(None) => Control::Step(self.close(inner, false)),
                    Err(SketchError::WouldBlock) => {
                        self.phase = Phase::Ingest(ing);
                        Control::Step(Step::Idle)
                    }
                    // Corrupt framing or a torn stream: unrecoverable.
                    Err(_) => {
                        Stats::add(&inner.stats.frames_rejected, 1);
                        Control::Step(self.close(inner, true))
                    }
                }
            }
            Phase::Closed => Control::Step(Step::Closed),
        }
    }

    fn begin_ingest(&mut self, inner: &Arc<ServerInner>, name: &str) -> Control {
        if !valid_name(name) {
            return Control::Step(self.close(inner, true));
        }
        let Ok(tenant) = tenant(inner, name) else {
            return Control::Step(self.close(inner, true));
        };
        self.phase = Phase::Ingest(Box::new(IngestPhase {
            tenant,
            decoder: FrameDecoder::with_max_frame_len(inner.config.max_frame_len),
            frame: Vec::new(),
            spare_payload: SketchPayload::default(),
            spare_weighted: WeightedSketchPayload::default(),
            spare_metric: String::new(),
            pending: None,
        }));
        Control::Continue
    }

    fn run_query_line(
        &mut self,
        inner: &Arc<ServerInner>,
        line: &str,
        lines: &mut usize,
    ) -> Control {
        *lines += 1;
        // `execute_line` routes through the answer cache and the read
        // snapshots exactly as the threaded handler does; `self.out` may
        // hold earlier batched responses, which it appends after.
        if !execute_line(inner, line, &mut self.out) {
            self.close_after_flush = true;
        }
        Control::Continue
    }

    /// Envelope decode + admission for one newly read frame, mirroring
    /// the threaded `handle_ingest` body (reject corrupt/incompatible
    /// payloads before staging; intact framing lets the stream go on).
    fn ingest_frame(&self, inner: &ServerInner, ing: &mut IngestPhase) -> IngestOutcome {
        match decode_envelope(&ing.frame) {
            Ok((metric, ts_secs, payload_bytes)) => {
                let payload = decode_admitted(
                    inner,
                    payload_bytes,
                    &mut ing.spare_payload,
                    &mut ing.spare_weighted,
                );
                if let Some(payload) = payload {
                    ing.spare_metric.clear();
                    ing.spare_metric.push_str(metric);
                    Stats::add(&inner.stats.bytes_ingested, ing.frame.len() as u64);
                    let shard = ing.tenant.shard_for(&ing.spare_metric).clone();
                    let job = Job {
                        metric: std::mem::take(&mut ing.spare_metric),
                        ts_secs,
                        payload,
                    };
                    match stage_once(inner, &shard, job, &self.waker) {
                        Stage::Stored((payload, metric)) => {
                            ing.store_spare(payload);
                            ing.spare_metric = metric;
                            IngestOutcome::Ok
                        }
                        Stage::Suspend(job) => {
                            ing.pending = Some((shard, job));
                            IngestOutcome::Suspend
                        }
                        Stage::Closed => IngestOutcome::ShardClosed,
                    }
                } else {
                    Stats::add(&inner.stats.frames_rejected, 1);
                    IngestOutcome::Ok
                }
            }
            Err(_) => {
                Stats::add(&inner.stats.frames_rejected, 1);
                IngestOutcome::Ok
            }
        }
    }
}

enum IngestOutcome {
    Ok,
    Suspend,
    ShardClosed,
}

/// Stage with the lost-wakeup-free suspension protocol.
fn stage_once(
    inner: &ServerInner,
    shard: &Arc<Shard>,
    job: Job,
    waker: &Arc<dyn ShardWaker>,
) -> Stage {
    match shard.try_push(job) {
        TryPush::Stored(spare) => Stage::Stored(spare),
        TryPush::Closed => Stage::Closed,
        TryPush::Full(job) => {
            // Register the waker *before* the retry: either the retry
            // lands (a pop raced in between) or a future pop is
            // guaranteed to see the waker. A stale wake is harmless.
            shard.add_waiter(waker);
            match shard.try_push(job) {
                TryPush::Stored(spare) => {
                    // The retry landed, so this connection no longer
                    // needs its registration — leaving it would let a
                    // later one-shot wake land here instead of on a
                    // connection that is actually suspended.
                    shard.remove_waiter(waker);
                    Stage::Stored(spare)
                }
                TryPush::Closed => Stage::Closed,
                TryPush::Full(job) => {
                    Stats::add(&inner.stats.backpressure_waits, 1);
                    Stats::add(&inner.stats.ingest_suspensions, 1);
                    Stage::Suspend(job)
                }
            }
        }
    }
}
