//! `sketchd` — a socket-based agent → aggregator fleet server for
//! DDSketch frame streams.
//!
//! This crate is the deployment story of the paper's Figure 1 run end
//! to end over real sockets: a fleet of agents each builds per-window
//! sketches locally, ships them as `DDSF` frames, and a central server
//! folds every tenant's stream into mergeable state it can answer
//! quantile queries from at any moment — *exactly*, because DDSketch's
//! full mergeability makes the server's folded state bit-identical to a
//! sketch built from the union of every agent's raw data.
//!
//! Everything runs on `std::net` (TCP) and `std::os::unix::net` (Unix
//! domain sockets): fully offline, loopback-friendly, no runtime
//! dependencies.
//!
//! ## Architecture
//!
//! ```text
//!  agents (AgentSender)                  sketchd (ServerHandle)
//!  ┌────────────────────┐   DDSF    ┌─────────────────────────────────┐
//!  │ sketch → envelope  │──frames──▶│ I/O plane: decode → route       │
//!  │ single write_all   │           │      │ bounded staging queue    │
//!  │ retry + backoff    │           │      ▼ (backpressure)           │
//!  └────────────────────┘           │ shard worker: absorb into       │
//!  ┌────────────────────┐   text    │   Aggregator + TimeSeriesStore  │
//!  │ QueryClient        │◀─lines───▶│ query handling: fold + k-way    │
//!  └────────────────────┘           │   merged quantiles              │
//!                                   │ checkpointer: {tenant}@{n}.ddts │
//!                                   └─────────────────────────────────┘
//! ```
//!
//! * Each tenant's metrics are sharded by FNV-1a hash; one worker owns
//!   each shard's state, so absorption is lock-cheap and a tenant-wide
//!   quantile is a k-way merge over one resident sketch per shard.
//! * Staging queues are bounded: a full queue stalls that connection's
//!   reading, which throttles the agent through TCP flow control —
//!   load sheds as backpressure, not OOM.
//! * Corrupt payloads are rejected per frame (framing intact, stream
//!   continues); corrupt framing or a cut connection drops only that
//!   agent's connection. Neither touches tenant state.
//! * [`ServerConfig::max_connections`] caps concurrent connections in
//!   both I/O models; over-cap accepts get a protocol-level
//!   `-ERR server at connection capacity` line before the close.
//!
//! ## Concurrency model: the I/O plane
//!
//! Shard workers, checkpointing, and shutdown are identical in both
//! models; [`ServerConfig::io_model`] selects only how sockets are
//! driven:
//!
//! * [`IoModel::Threaded`] — one blocking thread per connection. Reads
//!   run with a short timeout, and the frame reader's lossless
//!   `WouldBlock` resume lets every thread poll the shutdown flag
//!   between bytes without tearing a frame. A full staging queue parks
//!   the connection thread on a condvar. Simple, debuggable, and the
//!   only model on non-Unix targets — but each idle agent pins a
//!   thread stack.
//! * [`IoModel::Reactor`] (default on Unix) — a readiness event loop
//!   (`epoll` on Linux, `poll(2)` elsewhere; no external crates) owns
//!   every agent and query socket on one thread
//!   ([`ServerConfig::reactor_threads`] can raise that; accepted
//!   connections are handed off round-robin). Each connection is an
//!   explicit resumable state machine (handshake → ingest | query)
//!   that advances exactly as far as its socket allows, with fairness
//!   budgets so one hot socket cannot starve the rest. No thread ever
//!   parks on a socket: a full staging queue *suspends* the connection
//!   — its fd is deregistered until the shard worker's pop wakes it
//!   back up (one waiter per freed slot, with a periodic sweep as the
//!   lost-wakeup backstop) — so backpressure still reaches agents
//!   through TCP while the loop keeps serving everyone else.
//!
//! `STATS` exposes the difference: `open_connections`, per-shard
//! `staging_depth`, `ingest_suspensions`, and reactor wakeup/event
//! counters ([`StatsSnapshot`]).
//!
//! ## Read plane
//!
//! Queries never pay for ingest. Under the default
//! [`ReadPlane::EpochCached`] every served answer comes from
//! epoch-versioned state that is read entirely outside the shard locks:
//!
//! * **Epochs.** Each shard's aggregators and windowed store carry a
//!   monotonic epoch — a relaxed atomic bumped on every accepted feed,
//!   fold, and eviction. The shard publishes the combined epoch under
//!   its state lock after each mutation, so "has anything changed?" is
//!   one atomic load, never a lock.
//! * **Snapshots.** Each shard double-buffers an immutable
//!   `ShardSnapshot` (folded resident sketch, weighted plane, exact
//!   counts) behind an `Arc`. A query serves the cached snapshot when
//!   its epoch is current; only a genuinely stale *and* idle shard
//!   rebuilds — taking the state lock just long enough for a fold and
//!   bin copy (the short-hold pattern), then walking ranks outside all
//!   locks. Shard workers refresh snapshots in the background every
//!   [`ServerConfig::snapshot_refresh`] absorbs and on queue drain.
//! * **Bounded staleness, exact answers.** While a shard has staged or
//!   in-flight frames, queries serve the latest published snapshot
//!   rather than racing the workers — bounded by the refresh cadence,
//!   and *bit-identical* to a fresh under-lock fold of the same epoch's
//!   data (full mergeability: fold order cannot change the state).
//!   A quiesced server always serves the exact current state.
//! * **Answer cache.** Rendered `+OK` responses are memoized keyed on
//!   the raw query line and the epoch vector they were computed from;
//!   a hot repeated query is a key probe plus one `memcpy` — zero
//!   allocations at steady state. [`StatsSnapshot`] reports
//!   `query_cache_hits` / `query_cache_misses`, `snapshot_rebuilds`,
//!   and `snapshot_staleness_max` (worst epoch gap ever closed by a
//!   query-path rebuild).
//!
//! [`ReadPlane::LockedFold`] keeps the original fold-under-the-shard-
//! lock path as a benchmarking baseline (`cargo bench --bench server --
//! --query` measures both planes under sustained ingest).
//!
//! ## Wire protocol (ingest)
//!
//! | step      | bytes                                                  |
//! |-----------|--------------------------------------------------------|
//! | handshake | `INGEST <tenant>\n` then `DDSF` + version (one write)  |
//! | frame     | `varint len` + envelope, one per shipped sketch        |
//! | envelope  | `varint metric_len` + metric + `varint ts_secs` + payload |
//! | end       | clean socket close / write-half shutdown at a boundary |
//!
//! The envelope payload is any sketch dialect: integer `DDS1`/`DDS2`
//! payloads feed each shard's exact `u64` plane (aggregator + windowed
//! store), weighted `DDS3` payloads its `f64` weighted-plane
//! aggregator — pre-aggregated client submissions ship their weights
//! end to end, and `STATS` reports each tenant's absorbed payload
//! count and weighted value total.
//!
//! ## Query protocol (text lines)
//!
//! | command                        | response                            |
//! |--------------------------------|-------------------------------------|
//! | `PING`                         | `+PONG`                             |
//! | `STATS`                        | `+OK key=value …` counters          |
//! | `TENANTS`                      | `+OK name …`                        |
//! | `SHARDS <tenant>`              | `+OK n depth:high …`                |
//! | `METRICS <tenant>`             | `+OK metric …`                      |
//! | `COUNT <tenant>`               | `+OK n`                             |
//! | `WCOUNT <tenant>`              | `+OK w` (f64, both count planes)    |
//! | `QUANTILE <tenant> <q> …`      | `+OK v …` (shortest-round-trip f64) |
//! | `WQUANTILE <tenant> <q> …`     | `+OK v …` over both count planes    |
//! | `SERIES <tenant> <metric> <q>` | `+OK window=v …`                    |
//! | `DUMP <tenant> <shard>`        | `+DUMP <len>` + `len` binary bytes  |
//! | `SYNC`                         | `+OK` once staged frames absorbed   |
//! | `CHECKPOINT`                   | `+OK <files>`                       |
//! | `SHUTDOWN` / `QUIT`            | `+OK`, connection closes            |
//!
//! Errors answer `-ERR <message>` on one line; the connection stays
//! usable. Floats render via Rust's `{:?}` (shortest round-trip), so
//! parsed responses are bit-identical to the server's values.
//!
//! ## Quick start (loopback)
//!
//! ```no_run
//! use sketchd::{AgentSender, Bind, QueryClient, ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::spawn(
//!     &Bind::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! // An agent ships one per-window sketch.
//! let mut sketch = ddsketch::SketchConfig::dense_collapsing(0.01, 2048)
//!     .build().unwrap();
//! sketch.add(42.0).unwrap();
//! let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
//! agent.send("api.latency", 1700000000, &sketch).unwrap();
//! agent.close().unwrap();
//!
//! // A dashboard asks for the fleet p99.
//! let mut client = QueryClient::connect(server.endpoint()).unwrap();
//! client.sync().unwrap();
//! let p99 = client.quantile("acme", 0.99).unwrap();
//! println!("fleet p99 = {p99}");
//! server.shutdown().unwrap();
//! ```

mod agent;
mod client;
mod error;
mod net;
mod protocol;
#[cfg(unix)]
mod reactor;
mod readplane;
mod server;
mod state;

pub use agent::{AgentSender, RetryPolicy};
pub use client::QueryClient;
pub use error::ServerError;
pub use net::{Bind, Endpoint};
pub use protocol::{valid_name, MAX_LINE, MAX_NAME};
pub use server::{IoModel, ReadPlane, ServerConfig, ServerHandle};
pub use state::{StatsSnapshot, TenantStats};
