//! `sketchd` — a socket-based agent → aggregator fleet server for
//! DDSketch frame streams.
//!
//! This crate is the deployment story of the paper's Figure 1 run end
//! to end over real sockets: a fleet of agents each builds per-window
//! sketches locally, ships them as `DDSF` frames, and a central server
//! folds every tenant's stream into mergeable state it can answer
//! quantile queries from at any moment — *exactly*, because DDSketch's
//! full mergeability makes the server's folded state bit-identical to a
//! sketch built from the union of every agent's raw data.
//!
//! Everything runs on `std::net` (TCP) and `std::os::unix::net` (Unix
//! domain sockets): fully offline, loopback-friendly, no runtime
//! dependencies.
//!
//! ## Architecture
//!
//! ```text
//!  agents (AgentSender)                  sketchd (ServerHandle)
//!  ┌────────────────────┐   DDSF    ┌─────────────────────────────────┐
//!  │ sketch → envelope  │──frames──▶│ conn thread: decode → route     │
//!  │ single write_all   │           │      │ bounded staging queue    │
//!  │ retry + backoff    │           │      ▼ (backpressure)           │
//!  └────────────────────┘           │ shard worker: absorb into       │
//!  ┌────────────────────┐   text    │   Aggregator + TimeSeriesStore  │
//!  │ QueryClient        │◀─lines───▶│ query threads: fold + k-way     │
//!  └────────────────────┘           │   merged quantiles              │
//!                                   │ checkpointer: {tenant}@{n}.ddts │
//!                                   └─────────────────────────────────┘
//! ```
//!
//! * Each tenant's metrics are sharded by FNV-1a hash; one worker owns
//!   each shard's state, so absorption is lock-cheap and a tenant-wide
//!   quantile is a k-way merge over one resident sketch per shard.
//! * Staging queues are bounded: a full queue blocks the connection
//!   thread, which stops reading its socket, which throttles the agent
//!   through TCP flow control — load sheds as backpressure, not OOM.
//! * All server reads run with a short timeout; the frame reader's
//!   lossless `WouldBlock` resume lets every thread poll the shutdown
//!   flag between bytes without ever tearing a frame.
//! * Corrupt payloads are rejected per frame (framing intact, stream
//!   continues); corrupt framing or a cut connection drops only that
//!   agent's connection. Neither touches tenant state.
//!
//! ## Wire protocol (ingest)
//!
//! | step      | bytes                                                  |
//! |-----------|--------------------------------------------------------|
//! | handshake | `INGEST <tenant>\n` then `DDSF` + version (one write)  |
//! | frame     | `varint len` + envelope, one per shipped sketch        |
//! | envelope  | `varint metric_len` + metric + `varint ts_secs` + DDS2 |
//! | end       | clean socket close / write-half shutdown at a boundary |
//!
//! ## Query protocol (text lines)
//!
//! | command                        | response                            |
//! |--------------------------------|-------------------------------------|
//! | `PING`                         | `+PONG`                             |
//! | `STATS`                        | `+OK key=value …` counters          |
//! | `TENANTS`                      | `+OK name …`                        |
//! | `SHARDS <tenant>`              | `+OK n depth:high …`                |
//! | `METRICS <tenant>`             | `+OK metric …`                      |
//! | `COUNT <tenant>`               | `+OK n`                             |
//! | `QUANTILE <tenant> <q> …`      | `+OK v …` (shortest-round-trip f64) |
//! | `SERIES <tenant> <metric> <q>` | `+OK window=v …`                    |
//! | `DUMP <tenant> <shard>`        | `+DUMP <len>` + `len` binary bytes  |
//! | `SYNC`                         | `+OK` once staged frames absorbed   |
//! | `CHECKPOINT`                   | `+OK <files>`                       |
//! | `SHUTDOWN` / `QUIT`            | `+OK`, connection closes            |
//!
//! Errors answer `-ERR <message>` on one line; the connection stays
//! usable. Floats render via Rust's `{:?}` (shortest round-trip), so
//! parsed responses are bit-identical to the server's values.
//!
//! ## Quick start (loopback)
//!
//! ```no_run
//! use sketchd::{AgentSender, Bind, QueryClient, ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::spawn(
//!     &Bind::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! // An agent ships one per-window sketch.
//! let mut sketch = ddsketch::SketchConfig::dense_collapsing(0.01, 2048)
//!     .build().unwrap();
//! sketch.add(42.0).unwrap();
//! let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
//! agent.send("api.latency", 1700000000, &sketch).unwrap();
//! agent.close().unwrap();
//!
//! // A dashboard asks for the fleet p99.
//! let mut client = QueryClient::connect(server.endpoint()).unwrap();
//! client.sync().unwrap();
//! let p99 = client.quantile("acme", 0.99).unwrap();
//! println!("fleet p99 = {p99}");
//! server.shutdown().unwrap();
//! ```

mod agent;
mod client;
mod error;
mod net;
mod protocol;
mod server;
mod state;

pub use agent::{AgentSender, RetryPolicy};
pub use client::QueryClient;
pub use error::ServerError;
pub use net::{Bind, Endpoint};
pub use protocol::{valid_name, MAX_LINE, MAX_NAME};
pub use server::{ServerConfig, ServerHandle};
pub use state::StatsSnapshot;
