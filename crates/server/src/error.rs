//! The server-side error type: transport failures, sketch-layer errors,
//! protocol violations, and exhausted retry budgets under one roof.

use std::fmt;

use ddsketch::SketchError;

/// Errors surfaced by the `sketchd` server, the agent sender, and the
/// query client.
#[derive(Debug)]
pub enum ServerError {
    /// An underlying socket or filesystem operation failed.
    Io(std::io::Error),
    /// A sketch-layer operation failed (decode, merge, checkpoint…).
    Sketch(SketchError),
    /// The peer violated the wire protocol, or the server answered a
    /// query with `-ERR` (the carried string is the server's message).
    Protocol(String),
    /// Every connect/write attempt of a bounded retry loop failed.
    /// Carries the attempt count and the final attempt's rendered error.
    RetriesExhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last attempt's error, rendered.
        last: String,
    },
    /// The operation raced the server's shutdown and was refused.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Sketch(e) => write!(f, "sketch error: {e}"),
            ServerError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServerError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last error: {last})")
            }
            ServerError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<SketchError> for ServerError {
    fn from(e: SketchError) -> Self {
        ServerError::Sketch(e)
    }
}
