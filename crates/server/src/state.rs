//! Server-side state: global counters, per-tenant sharded sketch state,
//! and the bounded staging queues between connection threads and shard
//! workers.
//!
//! ## Sharding
//!
//! Each tenant owns `shards_per_tenant` shards; a metric is routed to
//! `fnv1a(metric) % shards`, so **every metric is owned by exactly one
//! shard** — no cross-shard merge is ever needed for a per-metric
//! query, and a tenant-wide quantile is a k-way merge over one resident
//! sketch per shard (exact, by the paper's full mergeability).
//!
//! ## Backpressure
//!
//! Every shard has a bounded staging queue. Connection threads block in
//! [`Shard::push`] when the queue is full; since an ingest connection
//! reads nothing further while blocked, the stall propagates to the
//! agent as TCP backpressure — the server throttles instead of
//! buffering unboundedly. Payload buffers and metric-name strings are
//! recycled through the queue in a ping-pong: `push` hands back a spare
//! pair for the connection's next decode, and workers return spent
//! buffers via [`Shard::complete`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use ddsketch::{SketchConfig, SketchPayload, WeightedSketchPayload};
use pipeline::{Aggregator, TimeSeriesStore, WeightedAggregator};

use crate::readplane::ShardSnapshot;

/// Lock a mutex, surviving poisoning: a connection thread that panicked
/// mid-operation must not wedge every other agent of the tenant. All
/// state mutations behind these locks are transactional (reject-before-
/// mutate), so the state a panicking thread leaves behind is consistent.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// FNV-1a over the metric name — the shard routing hash. Stable across
/// runs (checkpoint files are per-shard) and dependency-free.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Global monotonic counters, shared by every thread of a server.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub frames_ingested: AtomicU64,
    pub frames_rejected: AtomicU64,
    pub bytes_ingested: AtomicU64,
    pub connections_total: AtomicU64,
    pub connections_rejected: AtomicU64,
    pub open_connections: AtomicU64,
    pub ingest_disconnects: AtomicU64,
    pub queries_served: AtomicU64,
    pub backpressure_waits: AtomicU64,
    pub ingest_suspensions: AtomicU64,
    pub reactor_wakeups: AtomicU64,
    pub reactor_events: AtomicU64,
    pub checkpoints_completed: AtomicU64,
    pub query_cache_hits: AtomicU64,
    pub query_cache_misses: AtomicU64,
    pub snapshot_rebuilds: AtomicU64,
    pub snapshot_staleness_max: AtomicU64,
    pub evicted_cells: AtomicU64,
}

impl Stats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise a high-watermark counter to `n` if it is below it.
    pub(crate) fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// Counter-only snapshot; the server layer fills in `staging_depth`
    /// (it needs the tenant registry, which `Stats` has no view of).
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            frames_ingested: self.frames_ingested.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            bytes_ingested: self.bytes_ingested.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            ingest_disconnects: self.ingest_disconnects.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            ingest_suspensions: self.ingest_suspensions.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_events: self.reactor_events.load(Ordering::Relaxed),
            checkpoints_completed: self.checkpoints_completed.load(Ordering::Relaxed),
            query_cache_hits: self.query_cache_hits.load(Ordering::Relaxed),
            query_cache_misses: self.query_cache_misses.load(Ordering::Relaxed),
            snapshot_rebuilds: self.snapshot_rebuilds.load(Ordering::Relaxed),
            snapshot_staleness_max: self.snapshot_staleness_max.load(Ordering::Relaxed),
            evicted_cells: self.evicted_cells.load(Ordering::Relaxed),
            staging_depth: Vec::new(),
            tenants: Vec::new(),
        }
    }
}

/// A point-in-time copy of the server's counters — what `STATS` reports
/// and what [`crate::ServerHandle::stats`] returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Frames decoded, routed, and absorbed into tenant state.
    pub frames_ingested: u64,
    /// Frames rejected (corrupt bytes or incompatible configuration)
    /// without touching tenant state.
    pub frames_rejected: u64,
    /// Envelope bytes of accepted frames.
    pub bytes_ingested: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections refused at the [`crate::ServerConfig::max_connections`]
    /// cap (not counted in `connections_total`).
    pub connections_rejected: u64,
    /// Connections currently open.
    pub open_connections: u64,
    /// Ingest connections that ended without a clean `DDSF` terminator.
    pub ingest_disconnects: u64,
    /// Query commands answered (including `-ERR` answers).
    pub queries_served: u64,
    /// Times ingest stalled on a full staging queue — Condvar waits
    /// under the threaded model, suspensions under the reactor.
    pub backpressure_waits: u64,
    /// Reactor-only: ingest connections deregistered on a full staging
    /// queue until the shard worker drained space (a strict subset of
    /// `backpressure_waits` events, counted once per suspension).
    pub ingest_suspensions: u64,
    /// Reactor-only: times an event-loop thread returned from its
    /// readiness wait.
    pub reactor_wakeups: u64,
    /// Reactor-only: readiness events dispatched to connection state
    /// machines.
    pub reactor_events: u64,
    /// Checkpoint sweeps completed (periodic, on demand, and final).
    pub checkpoints_completed: u64,
    /// Queries answered straight from the answer cache — no parse, no
    /// lock, no allocation.
    pub query_cache_hits: u64,
    /// Cacheable queries that missed the answer cache (uncached line,
    /// or an entry invalidated by an epoch change).
    pub query_cache_misses: u64,
    /// Per-shard read snapshots rebuilt (a short state-lock hold each).
    pub snapshot_rebuilds: u64,
    /// Largest epoch gap any snapshot rebuild has closed — the measured
    /// bound on how far a served answer ever trailed the ingested data.
    pub snapshot_staleness_max: u64,
    /// Windowed-store cells evicted by the TTL retention sweep.
    pub evicted_cells: u64,
    /// Live staging depth (queued + in-flight jobs) per shard index,
    /// summed across tenants; length = `shards_per_tenant`.
    pub staging_depth: Vec<u64>,
    /// Per-tenant absorbed payload counts and weighted value totals,
    /// name-sorted.
    pub tenants: Vec<TenantStats>,
}

/// Per-tenant ingest totals, reported in `STATS`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    pub name: String,
    /// Payloads absorbed into this tenant's state.
    pub frames_absorbed: u64,
    /// Total observation weight absorbed — integer payloads contribute
    /// their counts, `DDS3` payloads their `f64` weights.
    pub weighted_total: f64,
}

/// A staged payload on one of the two count planes. Integer (`DDS1`/
/// `DDS2`) frames keep the exact `u64` plane; `DDS3` frames carry `f64`
/// weights. Each variant recycles through its own spare pool.
#[derive(Debug)]
pub(crate) enum JobPayload {
    Integer(SketchPayload),
    Weighted(WeightedSketchPayload),
}

impl JobPayload {
    pub(crate) fn is_weighted(&self) -> bool {
        matches!(self, JobPayload::Weighted(_))
    }

    /// Total observation weight the payload carries (zero bucket
    /// included) — what the tenant's weighted ingest total advances by.
    pub(crate) fn total_weight(&self) -> f64 {
        match self {
            JobPayload::Integer(p) => {
                let bins: u64 = p
                    .positive
                    .iter()
                    .chain(p.negative.iter())
                    .map(|&(_, c)| c)
                    .sum();
                (p.zero_count + bins) as f64
            }
            JobPayload::Weighted(p) => {
                let bins: f64 = p
                    .positive
                    .iter()
                    .chain(p.negative.iter())
                    .map(|&(_, c)| c)
                    .sum();
                p.zero_count + bins
            }
        }
    }
}

/// One routed, decoded frame awaiting absorption by a shard worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub metric: String,
    pub ts_secs: u64,
    pub payload: JobPayload,
}

/// The sketch state a shard worker owns: the tenant-shard's resident
/// aggregator (tenant-wide quantiles), its windowed time-series store
/// (per-metric series, checkpoints), and the weighted-plane aggregator
/// absorbing `DDS3` frames. Integer frames feed the first two from a
/// single decode, so they answer from the same data; weighted frames
/// feed only the weighted plane (the windowed store's rollups stay on
/// exact integer counts).
#[derive(Debug)]
pub(crate) struct ShardState {
    pub agg: Aggregator,
    pub store: TimeSeriesStore,
    pub wagg: WeightedAggregator,
}

/// Readiness callback for a connection suspended on a full staging
/// queue — the reactor's nonblocking analogue of the `not_full`
/// Condvar. Wakes must be cheap, non-blocking, and idempotent; a stale
/// wake (the connection already resumed or died) is harmless.
pub(crate) trait ShardWaker: Send + Sync + std::fmt::Debug {
    fn wake(&self);
}

/// Outcome of a nonblocking [`Shard::try_push`]: the job is either
/// stored (with recycled buffers handed back) or returned to the caller
/// untouched, so no accepted frame is ever dropped on a full queue.
#[derive(Debug)]
pub(crate) enum TryPush {
    /// Staged; here are recycled `(payload, metric string)` buffers of
    /// the same count plane as the staged job.
    Stored((JobPayload, String)),
    /// Queue at its bound — suspend and retry after a waker fires.
    Full(Job),
    /// Shard closed (server shutting down); the job will never land.
    Closed,
}

#[derive(Debug, Default)]
struct StagingInner {
    queue: VecDeque<Job>,
    /// Spent decode buffers flowing back to connection threads, one
    /// pool per count plane.
    spare_payloads: Vec<SketchPayload>,
    spare_weighted: Vec<WeightedSketchPayload>,
    spare_strings: Vec<String>,
    /// Jobs popped but not yet [`Shard::complete`]d — `sync` must wait
    /// for these too, or a drained queue could still mean an absorb in
    /// flight.
    in_flight: usize,
    high_watermark: usize,
    closed: bool,
    /// Suspended reactor connections to wake when space frees up (or
    /// the shard closes). Each pop wakes the front waiter — one freed
    /// slot, one resume — and close wakes them all; the reactor's idle
    /// sweep covers any wake consumed by a connection that had already
    /// moved on.
    waiters: Vec<Arc<dyn ShardWaker>>,
}

impl StagingInner {
    /// A recycled payload buffer of the requested count plane.
    fn take_spare(&mut self, weighted: bool) -> JobPayload {
        if weighted {
            JobPayload::Weighted(self.spare_weighted.pop().unwrap_or_default())
        } else {
            JobPayload::Integer(self.spare_payloads.pop().unwrap_or_default())
        }
    }
}

/// `snap_epoch` value meaning "no snapshot installed yet". Epochs are
/// sums of per-structure counters bumped once per frame; `u64::MAX` is
/// unreachable in any real run.
const NO_SNAPSHOT: u64 = u64::MAX;

/// One shard of a tenant: a bounded staging queue feeding a dedicated
/// worker that owns the shard's [`ShardState`], plus the epoch-cached
/// read plane that serves queries without touching the state lock.
#[derive(Debug)]
pub(crate) struct Shard {
    staging: Mutex<StagingInner>,
    not_full: Condvar,
    not_empty: Condvar,
    drained: Condvar,
    bound: usize,
    pub state: Mutex<ShardState>,
    /// Staged-plus-in-flight job count, mirrored out of `staging` so
    /// the read plane can probe quiescence without taking any lock.
    live: AtomicU64,
    /// The shard's published data epoch: the sum of the pipeline epochs
    /// ([`Aggregator`], [`TimeSeriesStore`], [`WeightedAggregator`]),
    /// stored by [`Shard::publish_epoch`] after every mutation. May
    /// momentarily trail the in-lock sum — that direction only ever
    /// causes a spurious rebuild, never a stale serve.
    epoch: AtomicU64,
    /// Epoch label of the installed [`ShardSnapshot`], [`NO_SNAPSHOT`]
    /// until the first rebuild — lets freshness probes skip the
    /// snapshot lock entirely.
    snap_epoch: AtomicU64,
    /// The installed read snapshot; the lock is held only for an
    /// `Arc` clone (serve) or pointer swap (install).
    snapshot: Mutex<Option<Arc<ShardSnapshot>>>,
}

impl Shard {
    fn new(state: ShardState, bound: usize) -> Self {
        Self {
            staging: Mutex::new(StagingInner::default()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            drained: Condvar::new(),
            bound: bound.max(1),
            state: Mutex::new(state),
            live: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            snap_epoch: AtomicU64::new(NO_SNAPSHOT),
            snapshot: Mutex::new(None),
        }
    }

    /// Jobs staged or mid-absorb right now — zero means quiesced: the
    /// published epoch is final until the next push. Lock-free.
    pub(crate) fn live_depth(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// The shard's published data epoch. Lock-free.
    pub(crate) fn data_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Epoch label of the installed read snapshot ([`NO_SNAPSHOT`]
    /// before the first rebuild). Lock-free.
    pub(crate) fn snapshot_epoch(&self) -> u64 {
        self.snap_epoch.load(Ordering::Relaxed)
    }

    /// The combined pipeline epoch of `state` — the label every
    /// publish and snapshot carries.
    fn combined_epoch(state: &ShardState) -> u64 {
        state
            .agg
            .epoch()
            .wrapping_add(state.store.epoch())
            .wrapping_add(state.wagg.epoch())
    }

    /// Publish the shard's data epoch. Callers invoke this while still
    /// holding the state lock after mutating (absorb, restore, sweep),
    /// so the published value never runs ahead of reality.
    pub(crate) fn publish_epoch(&self, state: &ShardState) {
        self.epoch
            .store(Self::combined_epoch(state), Ordering::Relaxed);
    }

    /// Serve the shard's read snapshot, rebuilding only when the shard
    /// is quiesced *and* the installed snapshot is stale (or absent).
    /// While ingest is in flight the installed snapshot serves as-is —
    /// bounded staleness, zero state-lock holds — and the shard worker
    /// republishes on its refresh cadence.
    pub(crate) fn read_snapshot(&self, stats: &Stats) -> Arc<ShardSnapshot> {
        let snap_epoch = self.snapshot_epoch();
        if snap_epoch != NO_SNAPSHOT && (self.live_depth() > 0 || snap_epoch >= self.data_epoch()) {
            if let Some(snap) = lock(&self.snapshot).clone() {
                return snap;
            }
        }
        self.rebuild_snapshot(stats)
    }

    /// Worker-side publish: rebuild the snapshot unless it already
    /// matches the published epoch. Called on the refresh cadence and
    /// when the staging queue drains.
    pub(crate) fn refresh_snapshot(&self, stats: &Stats) {
        if self.snapshot_epoch() != self.data_epoch() {
            self.rebuild_snapshot(stats);
        }
    }

    /// The PR 3 short-hold pattern: take the state lock just long
    /// enough to fold and copy the residents, then install the labelled
    /// copy outside it. Concurrent rebuilds are safe — install keeps
    /// whichever snapshot carries the newest epoch.
    fn rebuild_snapshot(&self, stats: &Stats) -> Arc<ShardSnapshot> {
        let snap = {
            let mut state = lock(&self.state);
            state.agg.fold();
            state.wagg.fold();
            self.publish_epoch(&state);
            Arc::new(ShardSnapshot {
                epoch: Self::combined_epoch(&state),
                resident: state.agg.resident().clone(),
                weighted: state.wagg.resident().clone(),
                count: state.agg.count(),
                weighted_count: state.wagg.weighted_count(),
            })
        };
        Stats::add(&stats.snapshot_rebuilds, 1);
        let mut slot = lock(&self.snapshot);
        let current = self.snap_epoch.load(Ordering::Relaxed);
        if current == NO_SNAPSHOT || snap.epoch >= current {
            if current != NO_SNAPSHOT {
                Stats::raise(&stats.snapshot_staleness_max, snap.epoch - current);
            }
            *slot = Some(Arc::clone(&snap));
            self.snap_epoch.store(snap.epoch, Ordering::Relaxed);
        }
        snap
    }

    /// Stage one job, blocking while the queue is at its bound (the
    /// backpressure path; `stats` counts the waits). Returns a recycled
    /// `(payload, metric string)` pair for the caller's next decode —
    /// or `Err(())` if the shard closed while waiting (server shutdown).
    pub(crate) fn push(&self, job: Job, stats: &Stats) -> Result<(JobPayload, String), ()> {
        let weighted = job.payload.is_weighted();
        let mut inner = lock(&self.staging);
        while inner.queue.len() >= self.bound && !inner.closed {
            Stats::add(&stats.backpressure_waits, 1);
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if inner.closed {
            return Err(());
        }
        inner.queue.push_back(job);
        inner.high_watermark = inner.high_watermark.max(inner.queue.len());
        self.live.fetch_add(1, Ordering::Relaxed);
        let spare = (
            inner.take_spare(weighted),
            inner.spare_strings.pop().unwrap_or_default(),
        );
        drop(inner);
        self.not_empty.notify_one();
        Ok(spare)
    }

    /// Nonblocking [`Shard::push`]: stage the job if the queue has room,
    /// hand it straight back otherwise. The reactor's ingest path — an
    /// event-loop thread must never park on a Condvar.
    pub(crate) fn try_push(&self, job: Job) -> TryPush {
        let weighted = job.payload.is_weighted();
        let mut inner = lock(&self.staging);
        if inner.closed {
            drop(job);
            return TryPush::Closed;
        }
        if inner.queue.len() >= self.bound {
            return TryPush::Full(job);
        }
        inner.queue.push_back(job);
        inner.high_watermark = inner.high_watermark.max(inner.queue.len());
        self.live.fetch_add(1, Ordering::Relaxed);
        let spare = (
            inner.take_spare(weighted),
            inner.spare_strings.pop().unwrap_or_default(),
        );
        drop(inner);
        self.not_empty.notify_one();
        TryPush::Stored(spare)
    }

    /// Register a waker to fire when staging space frees up. Deduped by
    /// `Arc` identity, so re-registering on the lost-wakeup-avoidance
    /// retry path (register → retry `try_push` → still full) is free.
    pub(crate) fn add_waiter(&self, waker: &Arc<dyn ShardWaker>) {
        let mut inner = lock(&self.staging);
        if !inner.waiters.iter().any(|w| Arc::ptr_eq(w, waker)) {
            inner.waiters.push(Arc::clone(waker));
        }
    }

    /// Drop a registered waker. Called when the retry `try_push` after
    /// [`Shard::add_waiter`] lands after all: with one-waiter-per-pop
    /// wakes, a stale registration would otherwise consume a wake some
    /// genuinely suspended connection needed.
    pub(crate) fn remove_waiter(&self, waker: &Arc<dyn ShardWaker>) {
        let mut inner = lock(&self.staging);
        inner.waiters.retain(|w| !Arc::ptr_eq(w, waker));
    }

    /// Worker side: take the next job, blocking while the queue is
    /// empty. `None` once the shard is closed *and* drained — the
    /// worker's signal to exit (already-staged jobs are still handed
    /// out after close, so shutdown never drops accepted frames).
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut inner = lock(&self.staging);
        loop {
            if let Some(job) = inner.queue.pop_front() {
                inner.in_flight += 1;
                // One pop frees one slot, so wake exactly one waiter
                // (FIFO). Waking the whole herd makes every freed slot
                // cost O(waiters) futile resumes. The reactor's idle
                // sweep backstops any wake that lands on a connection
                // that no longer needs it.
                let waiter = if inner.waiters.is_empty() {
                    None
                } else {
                    Some(inner.waiters.remove(0))
                };
                drop(inner);
                self.not_full.notify_one();
                if let Some(waker) = waiter {
                    waker.wake();
                }
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Worker side: mark the previously popped job absorbed and return
    /// its buffers to the recycle pools.
    pub(crate) fn complete(&self, payload: JobPayload, mut metric: String) {
        metric.clear();
        let mut inner = lock(&self.staging);
        match payload {
            JobPayload::Integer(p) => inner.spare_payloads.push(p),
            JobPayload::Weighted(p) => inner.spare_weighted.push(p),
        }
        inner.spare_strings.push(metric);
        inner.in_flight -= 1;
        // The worker has already published the epoch for this job (it
        // absorbs, publishes, then completes), so decrementing `live`
        // here can never let a query treat a pre-absorb snapshot as
        // caught-up.
        self.live.fetch_sub(1, Ordering::Relaxed);
        if inner.queue.is_empty() && inner.in_flight == 0 {
            drop(inner);
            self.drained.notify_all();
        }
    }

    /// Block until every staged job has been absorbed (queue empty and
    /// nothing in flight) — the barrier behind `SYNC` and checkpoints.
    pub(crate) fn sync(&self) {
        let mut inner = lock(&self.staging);
        while !inner.queue.is_empty() || inner.in_flight > 0 {
            inner = self
                .drained
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue: pushes start failing, and the worker exits once
    /// the backlog drains. Suspended reactor connections are woken so
    /// they observe the close instead of waiting forever.
    pub(crate) fn close(&self) {
        let waiters = {
            let mut inner = lock(&self.staging);
            inner.closed = true;
            std::mem::take(&mut inner.waiters)
        };
        self.not_full.notify_all();
        self.not_empty.notify_all();
        for waker in &waiters {
            waker.wake();
        }
    }

    /// Current staging depth and the deepest it has ever been.
    pub(crate) fn depth(&self) -> (usize, usize) {
        let inner = lock(&self.staging);
        (inner.queue.len() + inner.in_flight, inner.high_watermark)
    }
}

/// One tenant: its name, its shards, and its ingest totals.
#[derive(Debug)]
pub(crate) struct Tenant {
    pub name: String,
    pub shards: Vec<Arc<Shard>>,
    /// Payloads absorbed into this tenant's state (both planes).
    pub frames_absorbed: AtomicU64,
    /// Total observation weight absorbed, as `f64` bits — advanced with
    /// a CAS loop ([`Tenant::add_weight`]), same technique as the
    /// atomic store plane's `f64` cells.
    weighted_total_bits: AtomicU64,
}

impl Tenant {
    pub(crate) fn new(
        name: &str,
        config: SketchConfig,
        num_shards: usize,
        staging_bound: usize,
        fold_threshold: usize,
        window_secs: u64,
    ) -> Result<Self, ddsketch::SketchError> {
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            shards.push(Arc::new(Shard::new(
                ShardState {
                    agg: Aggregator::with_config(config, fold_threshold)?,
                    store: TimeSeriesStore::with_config(config, window_secs)?,
                    wagg: WeightedAggregator::with_config(config, fold_threshold)?,
                },
                staging_bound,
            )));
        }
        Ok(Self {
            name: name.to_string(),
            shards,
            frames_absorbed: AtomicU64::new(0),
            weighted_total_bits: AtomicU64::new(0.0f64.to_bits()),
        })
    }

    /// Advance the tenant's weighted ingest total by `w`.
    pub(crate) fn add_weight(&self, w: f64) {
        let mut current = self.weighted_total_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + w).to_bits();
            match self.weighted_total_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The tenant's weighted ingest total.
    pub(crate) fn weighted_total(&self) -> f64 {
        f64::from_bits(self.weighted_total_bits.load(Ordering::Relaxed))
    }

    /// The shard owning `metric`.
    pub(crate) fn shard_for(&self, metric: &str) -> &Arc<Shard> {
        &self.shards[self.shard_index_for(metric)]
    }

    /// The index of the shard owning `metric` (stable across runs — the
    /// checkpoint filenames depend on it).
    pub(crate) fn shard_index_for(&self, metric: &str) -> usize {
        (fnv1a(metric.as_bytes()) % self.shards.len() as u64) as usize
    }
}

/// The tenant registry: name → tenant, created on first ingest (or by
/// checkpoint restore at boot).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl Registry {
    pub(crate) fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        lock(&self.tenants).get(name).cloned()
    }

    /// Look up `name`, building it with `make` on first sight. Returns
    /// the tenant and whether this call created it.
    pub(crate) fn get_or_create(
        &self,
        name: &str,
        make: impl FnOnce() -> Result<Tenant, ddsketch::SketchError>,
    ) -> Result<(Arc<Tenant>, bool), ddsketch::SketchError> {
        let mut tenants = lock(&self.tenants);
        if let Some(tenant) = tenants.get(name) {
            return Ok((tenant.clone(), false));
        }
        let tenant = Arc::new(make()?);
        tenants.insert(name.to_string(), tenant.clone());
        Ok((tenant, true))
    }

    /// Every tenant, name-sorted (for `TENANTS` and checkpoint sweeps).
    pub(crate) fn all(&self) -> Vec<Arc<Tenant>> {
        let mut all: Vec<_> = lock(&self.tenants).values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn staging_queue_blocks_at_bound_and_recycles() {
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let tenant = Tenant::new("t", config, 1, 2, 4, 10).unwrap();
        let shard = tenant.shards[0].clone();
        let stats = Arc::new(Stats::default());

        let job = |i: u64| Job {
            metric: format!("m{i}"),
            ts_secs: i,
            payload: JobPayload::Integer(SketchPayload::default()),
        };
        shard.push(job(0), &stats).unwrap();
        shard.push(job(1), &stats).unwrap();
        assert_eq!(shard.depth().0, 2);

        // A third push must block until the worker side pops.
        let pusher = {
            let shard = shard.clone();
            let stats = stats.clone();
            std::thread::spawn(move || shard.push(job(2), &stats).is_ok())
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push at the bound must block");
        let popped = shard.pop().unwrap();
        assert_eq!(popped.metric, "m0");
        shard.complete(popped.payload, popped.metric);
        assert!(pusher.join().unwrap());
        assert!(stats.backpressure_waits.load(Ordering::Relaxed) >= 1);

        // Drain; sync returns once queue and in-flight are empty.
        while let Some(job) = {
            let (depth, _) = shard.depth();
            (depth > 0).then(|| shard.pop().unwrap())
        } {
            shard.complete(job.payload, job.metric);
        }
        shard.sync();
        let (_, high) = shard.depth();
        assert_eq!(high, 2, "high watermark equals the bound");

        // Closed shard: push fails, pop returns None.
        shard.close();
        assert!(shard.push(job(9), &stats).is_err());
        assert!(shard.pop().is_none());
    }

    #[derive(Debug, Default)]
    struct CountingWaker(AtomicU64);

    impl ShardWaker for CountingWaker {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn try_push_returns_full_and_wakes_on_pop() {
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let tenant = Tenant::new("t", config, 1, 2, 4, 10).unwrap();
        let shard = tenant.shards[0].clone();
        let job = |i: u64| Job {
            metric: format!("m{i}"),
            ts_secs: i,
            payload: JobPayload::Integer(SketchPayload::default()),
        };

        assert!(matches!(shard.try_push(job(0)), TryPush::Stored(_)));
        assert!(matches!(shard.try_push(job(1)), TryPush::Stored(_)));
        // At the bound: the job comes back untouched, nothing blocks.
        let bounced = match shard.try_push(job(2)) {
            TryPush::Full(job) => job,
            other => panic!("expected Full, got {other:?}"),
        };
        assert_eq!(bounced.metric, "m2");

        // Lost-wakeup protocol: register, retry once, then suspend.
        let waker = Arc::new(CountingWaker::default());
        let dyn_waker: Arc<dyn ShardWaker> = waker.clone();
        shard.add_waiter(&dyn_waker);
        shard.add_waiter(&dyn_waker); // deduped by Arc identity
        let bounced = match shard.try_push(bounced) {
            TryPush::Full(job) => job,
            other => panic!("expected Full, got {other:?}"),
        };

        // A pop frees space and fires the waker exactly once.
        let popped = shard.pop().unwrap();
        assert_eq!(waker.0.load(Ordering::Relaxed), 1);
        assert!(matches!(shard.try_push(bounced), TryPush::Stored(_)));
        shard.complete(popped.payload, popped.metric);

        // Close wakes suspended connections and bounces jobs back.
        shard.add_waiter(&dyn_waker);
        shard.close();
        assert_eq!(waker.0.load(Ordering::Relaxed), 2);
        assert!(matches!(shard.try_push(job(3)), TryPush::Closed));
    }

    #[test]
    fn metrics_route_to_stable_shards() {
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let tenant = Tenant::new("t", config, 4, 8, 4, 10).unwrap();
        for metric in ["api.latency", "db.query", "cache.hit", "queue.depth"] {
            let a = tenant.shard_index_for(metric);
            let b = tenant.shard_index_for(metric);
            assert_eq!(a, b);
            assert!(a < 4);
            assert!(Arc::ptr_eq(tenant.shard_for(metric), &tenant.shards[a]));
        }
    }

    #[test]
    fn registry_creates_once() {
        let registry = Registry::default();
        let config = SketchConfig::dense_collapsing(0.01, 128);
        let make = || Tenant::new("acme", config, 2, 8, 4, 10);
        assert!(registry.get("acme").is_none());
        let (first, created) = registry.get_or_create("acme", make).unwrap();
        assert!(created);
        let (second, created) = registry.get_or_create("acme", make).unwrap();
        assert!(!created);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(registry.all().len(), 1);
    }
}
